//! Lock-free log-bucketed histograms with percentile estimation.
//!
//! Counters answer "how many"; the service-level questions the serve daemon
//! faces — queue-wait spikes, filter-ladder latency tails, cache-probe
//! contention — need "how long, at which quantile". This module provides
//! the dependency-free percentile plane:
//!
//! * [`Histogram`] — a fixed array of atomic buckets. Recording a value is
//!   a handful of relaxed atomic adds (no locks, no allocation), so the hot
//!   paths of the pool, the op cache, and the filter ladder can record
//!   unconditionally once a registry is attached.
//! * [`HistogramSnapshot`] — the detached, mergeable, serializable copy:
//!   the unit that crosses threads, rides the telemetry stream as `hist`
//!   events, lands in the metrics journal, and renders percentile columns.
//! * [`HistogramRegistry`] — named histograms in registration order,
//!   `Send + Sync` (unlike the deliberately single-threaded
//!   [`MetricsRegistry`](crate::MetricsRegistry)), snapshotted alongside
//!   the counters.
//!
//! # Bucketing and the error bound
//!
//! Buckets are logarithmic with four sub-buckets per octave (power of two):
//! a value `v ≥ 4` lands in the bucket keyed by its two leading significant
//! bits below the top bit, so bucket width is `2^(o-2)` for the octave
//! `o = floor(log2 v)`. Values below 8 are exact (bucket width 1). Quantile
//! estimation returns the *upper bound* of the bucket holding the requested
//! rank, clamped to the observed maximum, so for any recorded distribution:
//!
//! > `true_quantile ≤ estimate ≤ true_quantile · (1 + 1/4)`
//!
//! i.e. estimates never under-report and over-report by **less than 25%**
//! (exactly 0% below 8). The property test in this module checks both sides
//! against an exact sorted reference.
//!
//! Histograms never touch the deterministic metrics or counters: enabling
//! them cannot perturb `states`/`transitions`/`cache_hits`/`guard_charges`,
//! which stay bit-for-bit identical at every `--jobs` value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave (4): two significant bits of sub-octave position.
const SUBS: usize = 1 << SUB_BITS;
/// Total buckets: `SUBS` exact low buckets (values 0..4) plus `SUBS` per
/// octave for octaves 2..=63.
pub const BUCKET_COUNT: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// The bucket index a value records into.
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS since v >= SUBS
    let sub = ((v >> (octave - SUB_BITS)) as usize) & (SUBS - 1);
    SUBS + (octave - SUB_BITS) as usize * SUBS + sub
}

/// The inclusive value range `[lo, hi]` covered by bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUBS {
        return (index as u64, index as u64);
    }
    let octave = SUB_BITS + ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo.saturating_add(width - 1))
}

/// A lock-free log-bucketed histogram of `u64` samples (typically
/// microsecond latencies).
///
/// Recording is wait-free: one relaxed `fetch_add` per bucket/count/sum and
/// one `fetch_max` for the maximum. Concurrent recorders never block each
/// other, and a snapshot taken mid-record is a valid (momentarily slightly
/// stale) histogram. See the module docs for the bucket scheme and the
/// ≤ 25% quantile error bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since `started` — the common shape
    /// at every latency call site.
    pub fn record_elapsed_us(&self, started: Instant) {
        self.record(started.elapsed().as_micros() as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds a detached snapshot into this histogram (bucket-wise), e.g. to
    /// fold a finished job's shard into the server-global registry.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for &(index, n) in &snap.buckets {
            self.buckets[index.min(BUCKET_COUNT - 1)].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A detached copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A detached, mergeable histogram state: sparse non-empty buckets (sorted
/// by index) plus the count/sum/max totals.
///
/// This is the serialized form everywhere — `hist` telemetry events, the
/// metrics journal, `rl-obs/v3` files, SLO baselines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, samples)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (exact, unlike the bucketed values).
    pub sum: u64,
    /// Largest sample observed (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges `other` into `self` (bucket-wise sum; max of maxima).
    /// Merging is commutative and associative, so shard merge order never
    /// changes the result — the property test pins this down.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, _)), Some(&&(ib, _))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => merged.push(*a.next().expect("peeked")),
                std::cmp::Ordering::Greater => merged.push(*b.next().expect("peeked")),
                std::cmp::Ordering::Equal => {
                    let (_, na) = a.next().expect("peeked");
                    let (_, nb) = b.next().expect("peeked");
                    merged.push((ia, na + nb));
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile (`0.0 < q ≤ 1.0`): the upper bound of the
    /// bucket holding rank `ceil(q · count)`, clamped to the observed
    /// maximum. `None` when empty. Never under-reports; over-reports by
    /// less than 25% (module docs).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(index);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50).unwrap_or(0)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90).unwrap_or(0)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The samples in `other` that are not (yet) in `self`, assuming `self`
    /// is an earlier cumulative snapshot of the same histogram. Returns
    /// `None` when nothing changed.
    pub fn delta_to(&self, newer: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if newer.count == self.count {
            return None;
        }
        let mut buckets = Vec::new();
        let mut old = self.buckets.iter().peekable();
        for &(index, n) in &newer.buckets {
            let prev = match old.peek() {
                Some(&&(oi, on)) if oi == index => {
                    old.next();
                    on
                }
                _ => 0,
            };
            if n > prev {
                buckets.push((index, n - prev));
            }
        }
        Some(HistogramSnapshot {
            buckets,
            count: newer.count - self.count,
            sum: newer.sum.saturating_sub(self.sum),
            max: newer.max,
        })
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        let buckets = Json::Arr(
            self.buckets
                .iter()
                .map(|&(i, n)| Json::Arr(vec![Json::Int(i as i64), Json::Int(n as i64)]))
                .collect(),
        );
        ObjBuilder::new()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("max", self.max)
            .field("buckets", buckets)
            .build()
    }
}

impl FromJson for HistogramSnapshot {
    fn from_json(value: &Json) -> Result<HistogramSnapshot, JsonError> {
        let raw = match value.field("buckets")? {
            Json::Arr(items) => items,
            _ => return Err(JsonError::custom("buckets must be an array")),
        };
        let mut buckets = Vec::with_capacity(raw.len());
        for pair in raw {
            let Json::Arr(kv) = pair else {
                return Err(JsonError::custom("bucket entries are [index, count]"));
            };
            if kv.len() != 2 {
                return Err(JsonError::custom("bucket entries are [index, count]"));
            }
            let index = usize::from_json(&kv[0])?;
            if index >= BUCKET_COUNT {
                return Err(JsonError::custom(format!(
                    "bucket index {index} out of range (< {BUCKET_COUNT})"
                )));
            }
            buckets.push((index, u64::from_json(&kv[1])?));
        }
        buckets.sort_unstable_by_key(|&(i, _)| i);
        Ok(HistogramSnapshot {
            buckets,
            count: u64::from_json(value.field("count")?)?,
            sum: u64::from_json(value.field("sum")?)?,
            max: u64::from_json(value.field("max")?)?,
        })
    }
}

/// Named histograms in registration order — the percentile-plane sibling of
/// [`MetricsRegistry`](crate::MetricsRegistry).
///
/// Cheaply clonable (all clones share state) and `Send + Sync`: the lock
/// guards only registration and snapshotting, never the record hot path —
/// call sites hold their `Arc<Histogram>` and record without touching the
/// registry again.
#[derive(Debug, Clone, Default)]
pub struct HistogramRegistry {
    inner: Arc<Mutex<Families>>,
}

/// Registered histograms in registration order.
type Families = Vec<(String, Arc<Histogram>)>;

impl HistogramRegistry {
    /// A fresh, empty registry.
    pub fn new() -> HistogramRegistry {
        HistogramRegistry::default()
    }

    /// Registers (or retrieves) the named histogram. Names are slash-paths
    /// by convention, with a unit suffix, e.g. `serve/queue_wait_us`.
    pub fn hist(&self, name: &str) -> Arc<Histogram> {
        let mut hists = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, h)) = hists.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        hists.push((name.to_owned(), Arc::clone(&h)));
        h
    }

    /// Detached snapshots of every registered histogram, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Folds a shard's snapshots into this registry by name (registering
    /// names this registry has not seen). Used when a finished serve job's
    /// per-job histograms merge into the server-global registry.
    pub fn absorb(&self, shard: &[(String, HistogramSnapshot)]) {
        for (name, snap) in shard {
            self.hist(name).absorb(snap);
        }
    }

    /// Whether any histogram has recorded a sample.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .all(|(_, h)| h.count() == 0)
    }
}

/// One `hist` JSONL event: the wire form of a named (optionally per-job)
/// cumulative snapshot, used by `rl-obs/v3` files and the serve telemetry
/// stream. The snapshot's own fields (`count`/`sum`/`max`/`buckets`) are
/// inlined, so [`HistogramSnapshot::from_json`] parses the event directly.
pub fn hist_event_json(name: &str, job: Option<u64>, snap: &HistogramSnapshot) -> Json {
    let mut b = ObjBuilder::new().field("event", "hist").field("name", name);
    if let Some(job) = job {
        b = b.field("job", job);
    }
    let Json::Obj(fields) = snap.to_json() else {
        unreachable!("snapshot serializes to an object");
    };
    for (key, value) in fields {
        b = b.field(&key, value);
    }
    b.build()
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_]` pass through,
/// everything else becomes `_`, and an `rl_` namespace prefix is added.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("rl_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders counters and histogram snapshots as Prometheus text exposition
/// (format version 0.0.4): counters as `<name>_total`, histograms as
/// cumulative `_bucket{le="…"}` series (only non-empty buckets, plus the
/// mandatory `+Inf`) with `_sum` and `_count`. Standard scrapers can attach
/// to the serve socket's `metrics` verb via socat and ingest this directly.
pub fn render_prometheus(
    counters: &[(String, u64)],
    hists: &[(String, HistogramSnapshot)],
) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for (name, value) in counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total {value}");
    }
    for (name, snap) in hists {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(index, n) in &snap.buckets {
            cumulative += n;
            let (_, hi) = bucket_bounds(index);
            let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{name}_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact_and_indexing_is_monotone() {
        for v in 0..8u64 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v), "values below 8 get exact buckets");
        }
        // Bucket index is monotone in the value and bounds contain it.
        let mut prev = 0;
        for v in 0..=10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index monotone at {v}");
            prev = idx;
        }
        for shift in 2..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let (lo, hi) = bucket_bounds(bucket_index(v));
                assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
                // The documented bound: hi ≤ 1.25 * lo for log buckets.
                assert!(
                    hi as f64 <= lo as f64 * 1.25,
                    "bucket [{lo}, {hi}] too wide"
                );
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKET_COUNT);
    }

    #[test]
    fn record_snapshot_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        let p50 = s.p50();
        assert!((50..=63).contains(&p50), "p50 estimate {p50}");
        let p99 = s.p99();
        assert!((99..=100).contains(&p99), "p99 estimate {p99}");
        assert_eq!(s.quantile(1.0), Some(100));
        assert!(HistogramSnapshot::default().quantile(0.5).is_none());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::new();
        for v in [0, 1, 7, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let text = rl_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = rl_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn registry_shares_by_name_and_absorbs_shards() {
        let reg = HistogramRegistry::new();
        assert!(reg.is_empty());
        reg.hist("a/x_us").record(10);
        reg.hist("a/x_us").record(20);
        reg.hist("b/y_us").record(5);
        assert!(!reg.is_empty());
        let snap = reg.snapshot();
        assert_eq!(snap[0].0, "a/x_us");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[1].0, "b/y_us");

        let global = HistogramRegistry::new();
        global.hist("a/x_us").record(1);
        global.absorb(&snap);
        let merged = global.snapshot();
        assert_eq!(merged[0].1.count, 3);
        assert_eq!(merged[1].1.count, 1);
    }

    #[test]
    fn delta_to_reports_only_new_samples() {
        let h = Histogram::new();
        h.record(10);
        let old = h.snapshot();
        assert!(old.delta_to(&h.snapshot()).is_none(), "no change, no delta");
        h.record(10);
        h.record(500);
        let delta = old.delta_to(&h.snapshot()).unwrap();
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 510);
        let mut rebuilt = old;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, h.snapshot());
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_well_formed() {
        let reg = HistogramRegistry::new();
        let h = reg.hist("serve/queue_wait_us");
        for v in [1u64, 1, 2, 100, 100, 100, 4_000] {
            h.record(v);
        }
        let counters = vec![("filter/hit".to_owned(), 3u64)];
        let text = render_prometheus(&counters, &reg.snapshot());
        assert!(text.contains("# TYPE rl_filter_hit_total counter"));
        assert!(text.contains("rl_filter_hit_total 3"));
        assert!(text.contains("# TYPE rl_serve_queue_wait_us histogram"));
        assert!(text.contains("rl_serve_queue_wait_us_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("rl_serve_queue_wait_us_sum 4304"));
        assert!(text.contains("rl_serve_queue_wait_us_count 7"));
        // Bucket series must be cumulative (monotone non-decreasing) with
        // strictly increasing le bounds.
        let mut last_le = -1.0f64;
        let mut last_cum = 0u64;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("rl_serve_queue_wait_us_bucket{le=\"") else {
                continue;
            };
            let (le, cum) = rest.split_once("\"} ").unwrap();
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap()
            };
            let cum: u64 = cum.parse().unwrap();
            assert!(le > last_le, "le bounds strictly increase");
            assert!(cum >= last_cum, "bucket counts are cumulative");
            last_le = le;
            last_cum = cum;
        }
        assert_eq!(last_cum, 7);
    }

    // Satellite: merge order-independence and the documented error bound,
    // against an exact sorted reference, over pseudo-random sample sets.
    #[test]
    fn property_merge_is_order_independent_and_quantiles_bounded() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            // A few shards of samples with mixed magnitudes.
            let shards: Vec<Vec<u64>> = (0..4)
                .map(|_| {
                    (0..(next() % 40 + 1))
                        .map(|_| match next() % 4 {
                            0 => next() % 8,         // exact region
                            1 => next() % 1_000,     // typical latencies
                            2 => next() % 1_000_000, // long tails
                            _ => next() % (1 << 40), // extreme outliers
                        })
                        .collect()
                })
                .collect();
            let snaps: Vec<HistogramSnapshot> = shards
                .iter()
                .map(|samples| {
                    let h = Histogram::new();
                    for &v in samples {
                        h.record(v);
                    }
                    h.snapshot()
                })
                .collect();

            // Merge in forward, reverse, and interleaved order: identical.
            let merge_all = |order: &[usize]| {
                let mut acc = HistogramSnapshot::default();
                for &i in order {
                    acc.merge(&snaps[i]);
                }
                acc
            };
            let forward = merge_all(&[0, 1, 2, 3]);
            assert_eq!(forward, merge_all(&[3, 2, 1, 0]), "round {round}");
            assert_eq!(forward, merge_all(&[2, 0, 3, 1]), "round {round}");

            // Quantile estimates vs the exact sorted reference.
            let mut all: Vec<u64> = shards.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(forward.count as usize, all.len());
            assert_eq!(forward.max, *all.last().unwrap());
            for &q in &[0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
                let exact = all[rank - 1];
                let est = forward.quantile(q).unwrap();
                assert!(est >= exact, "q{q} under-reported: {est} < {exact}");
                // Documented bound: estimate < exact * 1.25 (and never
                // above the observed max).
                assert!(
                    est as f64 <= (exact as f64) * 1.25 && est <= forward.max,
                    "q{q} over bound: {est} vs exact {exact} (round {round})"
                );
            }
        }
    }
}
