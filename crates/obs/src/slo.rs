//! SLO regression gates over committed percentile baselines.
//!
//! A baseline file (`rl-slo/v1`) commits the percentile ceilings a workload
//! is allowed to exhibit, plus a relative tolerance:
//!
//! ```json
//! {"schema": "rl-slo/v1",
//!  "tolerance_pct": 25,
//!  "families": {
//!    "serve/queue_wait_us": {"p50": 200, "p99": 5000},
//!    "filter/parikh_us":    {"p99": 1500}}}
//! ```
//!
//! `rlcheck slo <baseline.json> --dir <journal>` evaluates the journal's
//! merged histograms against the baseline: an observed percentile above
//! `ceiling · (1 + tolerance_pct/100)` is a violation and the command exits
//! nonzero — the CI regression gate. A family present in the baseline but
//! absent from the journal is also a violation (a silently-vanished metric
//! must not pass the gate); extra observed families are ignored, so adding
//! instrumentation never breaks an existing baseline.

use rl_json::{FromJson, Json, JsonError};

use crate::hist::HistogramSnapshot;

/// The schema tag baseline files must carry.
pub const SLO_SCHEMA: &str = "rl-slo/v1";

/// One family's committed ceilings (all optional, in the histogram's unit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloCeilings {
    /// Ceiling on the estimated median.
    pub p50: Option<u64>,
    /// Ceiling on the estimated 90th percentile.
    pub p90: Option<u64>,
    /// Ceiling on the estimated 99th percentile.
    pub p99: Option<u64>,
    /// Ceiling on the observed maximum.
    pub max: Option<u64>,
}

/// A parsed `rl-slo/v1` baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBaseline {
    /// Allowed relative overshoot, in percent (e.g. 25 allows 1.25×).
    pub tolerance_pct: u64,
    /// Ceilings per histogram family.
    pub families: Vec<(String, SloCeilings)>,
}

impl FromJson for SloBaseline {
    fn from_json(value: &Json) -> Result<SloBaseline, JsonError> {
        let schema = String::from_json(value.field("schema")?)?;
        if schema != SLO_SCHEMA {
            return Err(JsonError::custom(format!(
                "unsupported baseline schema {schema:?} (expected {SLO_SCHEMA:?})"
            )));
        }
        let tolerance_pct = match value.get("tolerance_pct") {
            Some(v) => u64::from_json(v)?,
            None => 0,
        };
        let Json::Obj(fields) = value.field("families")? else {
            return Err(JsonError::custom("families must be an object"));
        };
        let mut families = Vec::with_capacity(fields.len());
        for (name, ceilings) in fields {
            let mut c = SloCeilings::default();
            for (key, slot) in [
                ("p50", &mut c.p50),
                ("p90", &mut c.p90),
                ("p99", &mut c.p99),
                ("max", &mut c.max),
            ] {
                if let Some(v) = ceilings.get(key) {
                    *slot = Some(u64::from_json(v)?);
                }
            }
            families.push((name.clone(), c));
        }
        Ok(SloBaseline {
            tolerance_pct,
            families,
        })
    }
}

/// Parses a baseline file's text.
pub fn parse_baseline(text: &str) -> Result<SloBaseline, String> {
    rl_json::from_str::<SloBaseline>(text).map_err(|e| e.to_string())
}

/// Evaluates observed histograms against a baseline. Returns the violation
/// report lines — empty means the gate passes.
pub fn evaluate(baseline: &SloBaseline, observed: &[(String, HistogramSnapshot)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (family, ceilings) in &baseline.families {
        let Some((_, snap)) = observed.iter().find(|(name, _)| name == family) else {
            violations.push(format!(
                "{family}: no samples observed (family missing from the journal)"
            ));
            continue;
        };
        let checks = [
            ("p50", ceilings.p50, snap.p50()),
            ("p90", ceilings.p90, snap.p90()),
            ("p99", ceilings.p99, snap.p99()),
            ("max", ceilings.max, snap.max),
        ];
        for (what, ceiling, got) in checks {
            let Some(ceiling) = ceiling else { continue };
            let allowed = ceiling.saturating_add(ceiling * baseline.tolerance_pct / 100);
            if got > allowed {
                violations.push(format!(
                    "{family}: {what} = {got} exceeds baseline {ceiling} \
                     (+{}% tolerance → {allowed})",
                    baseline.tolerance_pct
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    const BASELINE: &str = r#"{"schema": "rl-slo/v1", "tolerance_pct": 25,
        "families": {"serve/queue_wait_us": {"p50": 100, "p99": 1000}}}"#;

    fn observed(values: &[u64]) -> Vec<(String, HistogramSnapshot)> {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        vec![("serve/queue_wait_us".to_owned(), h.snapshot())]
    }

    #[test]
    fn baseline_parses_and_passes_within_tolerance() {
        let b = parse_baseline(BASELINE).unwrap();
        assert_eq!(b.tolerance_pct, 25);
        assert_eq!(b.families.len(), 1);
        assert_eq!(b.families[0].1.p50, Some(100));
        assert_eq!(b.families[0].1.p90, None);
        // p50 = 60, p99 ≤ 1000: inside the ceilings.
        assert!(evaluate(&b, &observed(&[30, 60, 900])).is_empty());
    }

    #[test]
    fn injected_p99_regression_fails_the_gate() {
        let b = parse_baseline(BASELINE).unwrap();
        // p99 lands on the 50_000 outlier: far beyond 1000 * 1.25.
        let violations = evaluate(&b, &observed(&[10, 20, 50_000]));
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("p99"));
        assert!(violations[0].contains("exceeds baseline 1000"));
    }

    #[test]
    fn missing_family_is_a_violation_and_bad_schema_errors() {
        let b = parse_baseline(BASELINE).unwrap();
        let violations = evaluate(&b, &[]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"));
        assert!(parse_baseline(r#"{"schema": "rl-slo/v2", "families": {}}"#).is_err());
        assert!(parse_baseline("not json").is_err());
    }
}
