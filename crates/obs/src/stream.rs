//! Live streaming primitives: heartbeat serialization shared between
//! `--progress` and the serve wire protocol, plus the bounded fan-out
//! machinery (`EventRing`, `StreamBus`) that lets `rlcheck serve` publish
//! per-job telemetry to subscribers without ever blocking a job.
//!
//! # Backpressure contract
//!
//! Publishers never wait: [`EventRing::push`] is drop-**oldest** when the
//! ring is full, incrementing a `dropped` counter the subscriber can
//! observe. A slow (or wedged) subscriber therefore costs at most
//! `capacity` buffered lines and some dropped events — it can never stall
//! the publishing thread, a sibling job, or graceful drain. The consuming
//! side ([`EventRing::drain`]) swaps the buffer out under the same short
//! mutex, so the two sides only contend for the duration of a pointer swap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

/// One progress sample of a running check, read from the guard's shared
/// atomics through a `GuardProbe`.
///
/// This is the single serialization used everywhere a heartbeat surfaces:
/// the `--progress` stderr line ([`Heartbeat::render_line`]), the serve
/// wire stream (`{"event":"heartbeat",...}` via [`ToJson`]), and offline
/// re-rendering of captured streams (`rlcheck report` via [`FromJson`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// The serve job id this sample belongs to (`None` for one-shot runs).
    pub job: Option<u64>,
    /// Microseconds since the guard was armed.
    pub elapsed_us: u64,
    /// States expanded so far.
    pub states: u64,
    /// Transitions taken so far.
    pub transitions: u64,
    /// Current frontier width.
    pub frontier: u64,
    /// The `max_states` budget, when one is set.
    pub states_limit: Option<u64>,
    /// The wall-clock deadline in microseconds, when one is set.
    pub deadline_us: Option<u64>,
    /// Resident bytes of the shared op cache, when one is attached.
    pub cache_resident_bytes: Option<u64>,
    /// Lifetime evictions of the shared op cache, when one is attached.
    pub cache_evictions: Option<u64>,
    /// Lifetime hits of the shared op cache, when one is attached.
    pub cache_hits: Option<u64>,
    /// Lifetime misses of the shared op cache, when one is attached.
    pub cache_misses: Option<u64>,
}

impl Heartbeat {
    /// Cumulative throughput: states divided by elapsed seconds (zero for
    /// sub-microsecond samples).
    pub fn states_per_sec(&self) -> u64 {
        if self.elapsed_us == 0 {
            return 0;
        }
        ((self.states as f64) / (self.elapsed_us as f64 / 1e6)) as u64
    }

    /// The human `--progress` line for this sample (without the
    /// `rlcheck: [progress] ` prefix the CLI adds): elapsed, states with
    /// cumulative rate, frontier width, and a `% of` fraction for each
    /// budget limit that is actually set.
    pub fn render_line(&self) -> String {
        let secs = self.elapsed_us as f64 / 1e6;
        let mut line = format!(
            "{:.1}s elapsed, {} states ({}/s), frontier {}",
            secs,
            self.states,
            self.states_per_sec(),
            self.frontier
        );
        if let Some(max) = self.states_limit {
            let pct = 100.0 * self.states as f64 / max.max(1) as f64;
            line.push_str(&format!(", states {pct:.0}% of {max}"));
        }
        if let Some(deadline_us) = self.deadline_us {
            let limit_secs = deadline_us as f64 / 1e6;
            let pct = 100.0 * secs / limit_secs.max(f64::EPSILON);
            line.push_str(&format!(", time {pct:.0}% of {limit_secs:.0}s"));
        }
        line
    }
}

impl ToJson for Heartbeat {
    fn to_json(&self) -> Json {
        let mut b = ObjBuilder::new().field("event", "heartbeat");
        if let Some(job) = self.job {
            b = b.field("job", job);
        }
        b = b
            .field("elapsed_us", self.elapsed_us)
            .field("states", self.states)
            .field("transitions", self.transitions)
            .field("states_per_sec", self.states_per_sec())
            .field("frontier", self.frontier);
        if let Some(v) = self.states_limit {
            b = b.field("states_limit", v);
        }
        if let Some(v) = self.deadline_us {
            b = b.field("deadline_us", v);
        }
        if let Some(v) = self.cache_resident_bytes {
            b = b.field("cache_resident_bytes", v);
        }
        if let Some(v) = self.cache_evictions {
            b = b.field("cache_evictions", v);
        }
        if let Some(v) = self.cache_hits {
            b = b.field("cache_hits", v);
        }
        if let Some(v) = self.cache_misses {
            b = b.field("cache_misses", v);
        }
        b.build()
    }
}

impl FromJson for Heartbeat {
    fn from_json(value: &Json) -> Result<Heartbeat, JsonError> {
        let event = String::from_json(value.field("event")?)?;
        if event != "heartbeat" {
            return Err(JsonError::custom(format!(
                "expected a heartbeat event, got {event:?}"
            )));
        }
        let opt = |key: &str| -> Result<Option<u64>, JsonError> {
            match value.get(key) {
                Some(v) => Ok(Some(u64::from_json(v)?)),
                None => Ok(None),
            }
        };
        Ok(Heartbeat {
            job: opt("job")?,
            elapsed_us: u64::from_json(value.field("elapsed_us")?)?,
            states: u64::from_json(value.field("states")?)?,
            transitions: opt("transitions")?.unwrap_or(0),
            frontier: opt("frontier")?.unwrap_or(0),
            states_limit: opt("states_limit")?,
            deadline_us: opt("deadline_us")?,
            cache_resident_bytes: opt("cache_resident_bytes")?,
            cache_evictions: opt("cache_evictions")?,
            cache_hits: opt("cache_hits")?,
            cache_misses: opt("cache_misses")?,
        })
    }
}

/// A bounded ring of pre-serialized JSONL lines with drop-oldest
/// backpressure. The publishing side never blocks; overflow evicts the
/// oldest buffered line and bumps the [`EventRing::dropped`] counter.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    lines: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            capacity: capacity.max(1),
            lines: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a line, evicting the oldest buffered line (and counting the
    /// drop) when the ring is full. Never blocks beyond the buffer mutex.
    pub fn push(&self, line: String) {
        if let Ok(mut lines) = self.lines.lock() {
            if lines.len() >= self.capacity {
                lines.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            lines.push_back(line);
        }
    }

    /// Takes every buffered line, oldest first.
    pub fn drain(&self) -> Vec<String> {
        match self.lines.lock() {
            Ok(mut lines) => lines.drain(..).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.lines.lock().map_or(0, |l| l.len())
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of lines evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One subscriber's registration on a [`StreamBus`]: an id (for
/// unsubscribe), a job filter, and the bounded ring the bus publishes into.
#[derive(Debug)]
pub struct StreamSubscription {
    id: u64,
    filter: Option<u64>,
    ring: EventRing,
}

impl StreamSubscription {
    /// The bus-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job filter: `Some(id)` follows one job, `None` follows all
    /// (the wire `"*"`).
    pub fn filter(&self) -> Option<u64> {
        self.filter
    }

    /// Whether events for `job` are delivered to this subscription.
    pub fn matches(&self, job: u64) -> bool {
        self.filter.is_none_or(|want| want == job)
    }

    /// Takes every buffered line, oldest first.
    pub fn drain(&self) -> Vec<String> {
        self.ring.drain()
    }

    /// Lifetime count of lines this subscription lost to backpressure.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The ring capacity this subscription was created with.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// The publish side of the streaming plane: a registry of subscriptions
/// that [`StreamBus::publish`] fans pre-serialized lines out to.
///
/// Publishing is wait-free from the job's perspective — each delivery is a
/// ring push (drop-oldest on overflow), so no subscriber can slow a
/// publisher down.
#[derive(Debug, Default)]
pub struct StreamBus {
    subs: Mutex<Vec<Arc<StreamSubscription>>>,
    next_id: AtomicU64,
    retired_dropped: AtomicU64,
}

impl StreamBus {
    /// An empty bus.
    pub fn new() -> StreamBus {
        StreamBus::default()
    }

    /// Registers a subscription for `filter` (`None` = all jobs) with a
    /// ring of `capacity` lines.
    pub fn subscribe(&self, filter: Option<u64>, capacity: usize) -> Arc<StreamSubscription> {
        let sub = Arc::new(StreamSubscription {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            filter,
            ring: EventRing::new(capacity),
        });
        if let Ok(mut subs) = self.subs.lock() {
            subs.push(sub.clone());
        }
        sub
    }

    /// Removes a subscription, folding its drop count into the bus-lifetime
    /// total so `stats` keeps seeing it after the subscriber disconnects.
    pub fn unsubscribe(&self, id: u64) {
        if let Ok(mut subs) = self.subs.lock() {
            if let Some(i) = subs.iter().position(|s| s.id == id) {
                let sub = subs.swap_remove(i);
                self.retired_dropped
                    .fetch_add(sub.dropped(), Ordering::Relaxed);
            }
        }
    }

    /// Delivers one pre-serialized line to every subscription whose filter
    /// matches `job`. Never blocks beyond the registry mutex and each
    /// ring's buffer mutex.
    pub fn publish(&self, job: u64, line: &str) {
        if let Ok(subs) = self.subs.lock() {
            for sub in subs.iter().filter(|s| s.matches(job)) {
                sub.ring.push(line.to_owned());
            }
        }
    }

    /// Active subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().map_or(0, |s| s.len())
    }

    /// Lines lost to backpressure across all subscriptions, including ones
    /// that have since unsubscribed.
    pub fn dropped_events(&self) -> u64 {
        let live: u64 = self
            .subs
            .lock()
            .map_or(0, |subs| subs.iter().map(|s| s.dropped()).sum());
        self.retired_dropped.load(Ordering::Relaxed) + live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat(job: Option<u64>, states: u64, elapsed_us: u64) -> Heartbeat {
        Heartbeat {
            job,
            elapsed_us,
            states,
            transitions: states * 2,
            frontier: 7,
            states_limit: Some(200_000),
            deadline_us: Some(60_000_000),
            cache_resident_bytes: None,
            cache_evictions: None,
            cache_hits: None,
            cache_misses: None,
        }
    }

    #[test]
    fn heartbeat_round_trips_through_json() {
        for hb in [
            beat(Some(3), 81_920, 2_000_000),
            Heartbeat {
                job: None,
                elapsed_us: 0,
                states: 0,
                transitions: 0,
                frontier: 0,
                states_limit: None,
                deadline_us: None,
                cache_resident_bytes: Some(4096),
                cache_evictions: Some(2),
                cache_hits: Some(10),
                cache_misses: Some(3),
            },
        ] {
            let text = rl_json::to_string(&hb).expect("serializes");
            assert!(text.starts_with("{\"event\":\"heartbeat\""), "{text}");
            let back: Heartbeat = rl_json::from_str(&text).expect("parses");
            assert_eq!(back, hb);
        }
    }

    #[test]
    fn render_line_matches_progress_format() {
        let hb = beat(None, 81_920, 2_000_000);
        assert_eq!(
            hb.render_line(),
            "2.0s elapsed, 81920 states (40960/s), frontier 7, \
             states 41% of 200000, time 3% of 60s"
        );
        let bare = Heartbeat {
            states_limit: None,
            deadline_us: None,
            ..hb
        };
        assert_eq!(
            bare.render_line(),
            "2.0s elapsed, 81920 states (40960/s), frontier 7"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(format!("line{i}"));
        }
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.drain(), vec!["line2", "line3", "line4"]);
        assert_eq!(ring.drain(), Vec::<String>::new());
        assert_eq!(ring.dropped(), 2, "draining does not reset the counter");
    }

    #[test]
    fn bus_filters_by_job_and_tracks_drops_across_unsubscribe() {
        let bus = StreamBus::new();
        let all = bus.subscribe(None, 2);
        let one = bus.subscribe(Some(1), 16);
        bus.publish(1, "a");
        bus.publish(2, "b");
        bus.publish(1, "c");
        bus.publish(2, "d"); // overflows `all` (capacity 2)
        assert_eq!(all.drain(), vec!["c", "d"]);
        assert_eq!(one.drain(), vec!["a", "c"]);
        assert_eq!(bus.dropped_events(), 2);
        assert_eq!(bus.subscriber_count(), 2);
        bus.unsubscribe(all.id());
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(bus.dropped_events(), 2, "drops survive unsubscribe");
    }
}
