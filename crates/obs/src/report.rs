//! Offline rendering of committed `rl-obs` JSONL files.
//!
//! A `--metrics` file outlives the run that wrote it — it lands in CI
//! artifacts, bench directories, and bug reports. [`ObsReport`] parses both
//! the `rl-obs/v1` span stream and the `rl-obs/v2` event stream back into
//! structured form so `rlcheck report` can reproduce the original `--stats`
//! table byte-for-byte and summarize the recorded timeline, long after the
//! process that ran the check is gone.
//!
//! Parsing is deliberately tolerant of *truncation*: a run that panicked or
//! was killed mid-write may be missing its closing `totals` line, in which
//! case totals are reconstructed from the depth-0 span rows and
//! [`ObsReport::truncated`] is set so consumers can flag the report as
//! partial.

use std::fmt::Write as _;
use std::time::Duration;

use rl_json::{FromJson, Json, JsonError};

use crate::hist::HistogramSnapshot;
use crate::stream::Heartbeat;
use crate::trace::{track_name, TraceEvent, TracePhase};
use crate::{Metric, RegistrySnapshot, SpanRecord, METRIC_COUNT};

/// The synthetic schema tag assigned to captured subscribe streams, which
/// carry no `meta` header of their own.
pub const SCHEMA_STREAM: &str = "rl-obs/stream";

/// A parsed `rl-obs/v1`, `rl-obs/v2`, or `rl-obs/v3` JSONL file, or a
/// captured `rlcheck serve` subscribe stream ([`SCHEMA_STREAM`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// The schema tag from the `meta` line (`rl-obs/v1`..`v3`), or
    /// [`SCHEMA_STREAM`] for a headerless captured subscribe stream.
    pub schema: String,
    /// The resolved `--jobs` choice recorded in the `meta` line, if any.
    pub jobs: Option<usize>,
    /// Wall-clock lifetime of the source registry.
    pub elapsed: Duration,
    /// Completed spans, in the order they appear in the file (open order).
    pub spans: Vec<SpanRecord>,
    /// Timeline events (`rl-obs/v2` only; empty for v1 files).
    pub events: Vec<TraceEvent>,
    /// Built-in metric totals, indexed like [`Metric::ALL`].
    pub totals: [u64; METRIC_COUNT],
    /// Custom counter totals, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots (`rl-obs/v3` files and captured streams):
    /// `(job, family, snapshot)`, keyed by job and family with
    /// latest-cumulative-wins semantics — stream `hist` events repeat a
    /// job's growing snapshot, so replacing (not merging) is what yields
    /// the final state.
    pub hists: Vec<(Option<u64>, String, HistogramSnapshot)>,
    /// Heartbeat samples, in file order (captured streams; empty for
    /// ordinary v1/v2 files unless a future writer interleaves them).
    pub heartbeats: Vec<Heartbeat>,
    /// `done` records from a captured stream: `(job, exit code)` in
    /// completion order.
    pub done: Vec<(u64, u64)>,
    /// Total events a captured stream reported dropping to backpressure
    /// (the sum of its `dropped` notices).
    pub dropped_events: u64,
    /// Unknown `"event"` kinds encountered, with occurrence counts, in
    /// first-seen order. Unknown kinds are counted rather than rejected so
    /// files written by a newer `rlcheck` still render.
    pub unknown_events: Vec<(String, u64)>,
    /// Whether the closing `totals` line was missing (interrupted write).
    /// When set, `totals` holds the sum of depth-0 span rows instead and
    /// `counters` is empty.
    pub truncated: bool,
}

impl ObsReport {
    /// Parses a JSONL metrics file or captured subscribe stream.
    ///
    /// For metrics files the first non-empty line must be a `meta` event
    /// with a supported schema. A first line that is instead one of the
    /// serve wire stream kinds (`heartbeat`, `trace`, `done`, `dropped`,
    /// or an `{"ok":...}` reply ack) selects stream mode under the
    /// synthetic schema [`SCHEMA_STREAM`]. In both modes, later lines with
    /// an unknown `"event"` kind are counted in
    /// [`ObsReport::unknown_events`] rather than rejected (forward
    /// compatibility).
    pub fn parse(text: &str) -> Result<ObsReport, JsonError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| JsonError::custom("empty metrics file (no meta line)"))?;
        let head = rl_json::parse(first)?;
        let head_event = match head.get("event") {
            Some(Json::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let mut report = ObsReport {
            schema: String::new(),
            jobs: None,
            elapsed: Duration::ZERO,
            spans: Vec::new(),
            events: Vec::new(),
            totals: [0; METRIC_COUNT],
            counters: Vec::new(),
            hists: Vec::new(),
            heartbeats: Vec::new(),
            done: Vec::new(),
            dropped_events: 0,
            unknown_events: Vec::new(),
            truncated: true,
        };
        if head_event == "meta" {
            let schema = String::from_json(head.field("schema")?)?;
            if !matches!(schema.as_str(), "rl-obs/v1" | "rl-obs/v2" | "rl-obs/v3") {
                return Err(JsonError::custom(format!(
                    "unsupported schema {schema:?} (expected rl-obs/v1, v2, or v3)"
                )));
            }
            report.schema = schema;
            report.jobs = match head.get("jobs") {
                Some(v) => Some(usize::from_json(v)?),
                None => None,
            };
            report.elapsed = Duration::from_micros(u64::from_json(head.field("elapsed_us")?)?);
            for line in lines {
                // A file cut mid-record (the writer was killed mid-write)
                // truncates here: everything before the cut still renders,
                // and the missing-totals path below flags the report.
                let value = match rl_json::parse(line) {
                    Ok(v) => v,
                    Err(_) => {
                        report.truncated = true;
                        break;
                    }
                };
                report.absorb_line(&value)?;
            }
        } else if matches!(
            head_event.as_str(),
            "heartbeat" | "trace" | "done" | "dropped"
        ) || head.get("ok").is_some()
        {
            // A captured subscribe stream: no meta header, possibly
            // starting with the subscribe reply ack itself.
            report.schema = SCHEMA_STREAM.to_owned();
            report.truncated = false;
            report.absorb_line(&head)?;
            for line in lines {
                // A capture cut mid-line (the subscriber was killed) is
                // expected; flag it rather than rejecting the whole file.
                let value = match rl_json::parse(line) {
                    Ok(v) => v,
                    Err(_) => {
                        report.truncated = true;
                        break;
                    }
                };
                report.absorb_line(&value)?;
            }
            report.elapsed = Duration::from_micros(
                report
                    .heartbeats
                    .iter()
                    .map(|h| h.elapsed_us)
                    .max()
                    .unwrap_or(0),
            );
            return Ok(report);
        } else {
            return Err(JsonError::custom(
                "first line is not a meta event; not an rl-obs JSONL file",
            ));
        }
        if report.truncated {
            // Reconstruct what we can: each depth-0 row's deltas are
            // inclusive of its children, so root rows sum to the totals of
            // everything that *completed*.
            for r in report.spans.iter().filter(|r| r.depth == 0) {
                for (i, m) in Metric::ALL.iter().enumerate() {
                    report.totals[i] += r.metric(*m);
                }
            }
        }
        Ok(report)
    }

    fn absorb_line(&mut self, value: &Json) -> Result<(), JsonError> {
        let event = match value.get("event") {
            Some(Json::Str(s)) => s.as_str(),
            // Wire reply acks ({"ok":...}) and other non-event lines.
            _ => return Ok(()),
        };
        match event {
            "span" => self.spans.push(SpanRecord::from_json(value)?),
            "trace" => self.events.push(TraceEvent::from_json(value)?),
            "heartbeat" => self.heartbeats.push(Heartbeat::from_json(value)?),
            "done" => {
                let job = u64::from_json(value.field("job")?)?;
                let code = match value.get("code") {
                    Some(v) => u64::from_json(v)?,
                    None => 0,
                };
                self.done.push((job, code));
            }
            "dropped" => {
                if let Some(v) = value.get("count") {
                    self.dropped_events += u64::from_json(v)?;
                }
            }
            "hist" => {
                let name = String::from_json(value.field("name")?)?;
                let job = match value.get("job") {
                    Some(v) => Some(u64::from_json(v)?),
                    None => None,
                };
                let snap = HistogramSnapshot::from_json(value)?;
                match self
                    .hists
                    .iter_mut()
                    .find(|(j, n, _)| *j == job && *n == name)
                {
                    Some((_, _, s)) => *s = snap,
                    None => self.hists.push((job, name, snap)),
                }
            }
            "meta" => {}
            "totals" => {
                for (i, m) in Metric::ALL.iter().enumerate() {
                    self.totals[i] = u64::from_json(value.field(m.name())?)?;
                }
                if let Some(Json::Obj(fields)) = value.get("counters") {
                    self.counters = fields
                        .iter()
                        .map(|(name, v)| Ok((name.clone(), u64::from_json(v)?)))
                        .collect::<Result<_, JsonError>>()?;
                }
                self.truncated = false;
            }
            other => match self.unknown_events.iter_mut().find(|(k, _)| k == other) {
                Some((_, n)) => *n += 1,
                None => self.unknown_events.push((other.to_owned(), 1)),
            },
        }
        Ok(())
    }

    /// The recorded total of a built-in metric.
    pub fn total(&self, metric: Metric) -> u64 {
        self.totals[metric as usize]
    }

    /// The report's data as a [`RegistrySnapshot`] (the summary-rendering
    /// currency).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            records: self.spans.clone(),
            totals: self.totals,
            counters: self.counters.clone(),
            elapsed: self.elapsed,
        }
    }

    /// The human phase table for this report — byte-for-byte identical to
    /// the `--stats` output of the run that wrote the file (both render the
    /// same snapshot; durations are stored at microsecond precision, which
    /// is exactly what the table formats).
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }

    /// A per-track digest of the recorded timeline (`rl-obs/v2` only):
    /// event totals and the begin/end/instant split for each worker lane.
    /// Empty string when the report carries no events.
    pub fn event_summary(&self) -> String {
        if self.events.is_empty() {
            return String::new();
        }
        let mut tracks: Vec<usize> = self.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events across {} track(s)",
            self.events.len(),
            tracks.len()
        );
        for track in tracks {
            let (mut begins, mut ends, mut instants) = (0usize, 0usize, 0usize);
            for e in self.events.iter().filter(|e| e.track == track) {
                match e.phase {
                    TracePhase::Begin => begins += 1,
                    TracePhase::End => ends += 1,
                    TracePhase::Instant => instants += 1,
                }
            }
            let _ = writeln!(
                out,
                "  {:<10} {:>6} begin {:>6} end {:>6} instant",
                track_name(track),
                begins,
                ends,
                instants
            );
        }
        // Algorithm-level instants — the lazy pipeline's layer/prune marks
        // and the pre-filter ladder's hit/fallthrough marks — rolled up by
        // name, so a committed trace answers "how often did the antichain
        // prune?" and "which checks did the ladder settle?" at a glance.
        let mut named: Vec<(&str, usize)> = Vec::new();
        for e in &self.events {
            if e.phase != TracePhase::Instant
                || !(e.name.starts_with("lazy-") || e.name.starts_with("filter-"))
            {
                continue;
            }
            match named.iter_mut().find(|(name, _)| *name == e.name) {
                Some((_, n)) => *n += 1,
                None => named.push((e.name.as_str(), 1)),
            }
        }
        for (name, n) in named {
            let _ = writeln!(out, "  {name:<24} {n:>6} instant(s)");
        }
        out
    }

    /// A percentile table for the report's histogram families (`rl-obs/v3`
    /// files and captured streams), or the empty string when the report
    /// carries none.
    pub fn hist_summary(&self) -> String {
        if self.hists.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (job, name, snap) in &self.hists {
            let label = match job {
                Some(job) => format!("{name} (job {job})"),
                None => name.clone(),
            };
            let _ = writeln!(
                out,
                "{label:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
                snap.count,
                snap.p50(),
                snap.p90(),
                snap.p99(),
                snap.max,
            );
        }
        out
    }

    /// Whether this report was parsed from a captured subscribe stream
    /// (no `meta` header; schema [`SCHEMA_STREAM`]).
    pub fn is_stream(&self) -> bool {
        self.schema == SCHEMA_STREAM
    }

    /// A per-job digest of a captured subscribe stream: heartbeat counts,
    /// the last observed progress sample, and the recorded exit code for
    /// each job the stream touched.
    pub fn stream_summary(&self) -> String {
        let mut jobs: Vec<u64> = self
            .heartbeats
            .iter()
            .filter_map(|h| h.job)
            .chain(self.done.iter().map(|&(job, _)| job))
            .collect();
        jobs.sort_unstable();
        jobs.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stream: {} job(s), {} heartbeat(s), {} trace event(s), {} dropped",
            jobs.len(),
            self.heartbeats.len(),
            self.events.len(),
            self.dropped_events
        );
        for job in jobs {
            let beats: Vec<&Heartbeat> = self
                .heartbeats
                .iter()
                .filter(|h| h.job == Some(job))
                .collect();
            let last = beats.last();
            let status = match self.done.iter().find(|&&(j, _)| j == job) {
                Some(&(_, code)) => format!("done code {code}"),
                None => "still running".to_owned(),
            };
            let _ = writeln!(
                out,
                "  job {:<5} {:>5} heartbeat(s)   {:>12} states   {:>8.1}s   {}",
                job,
                beats.len(),
                last.map_or(0, |h| h.states),
                last.map_or(0.0, |h| h.elapsed_us as f64 / 1e6),
                status
            );
        }
        if self.truncated {
            let _ = writeln!(out, "  (capture truncated mid-line)");
        }
        out
    }

    /// A one-line notice about unknown event kinds, or the empty string
    /// when every line parsed as a known kind.
    pub fn unknown_note(&self) -> String {
        if self.unknown_events.is_empty() {
            return String::new();
        }
        let total: u64 = self.unknown_events.iter().map(|(_, n)| n).sum();
        let kinds: Vec<String> = self
            .unknown_events
            .iter()
            .map(|(k, n)| format!("{k} ({n})"))
            .collect();
        format!(
            "note: {} line(s) with unknown event kind skipped: {}",
            total,
            kinds.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render_jsonl, MetricsRegistry, Tracer};
    use std::sync::Arc;

    fn sample_registry() -> MetricsRegistry {
        let m = MetricsRegistry::new();
        {
            let _check = m.enter("check");
            m.add(Metric::States, 7);
            {
                let _det = m.enter("determinize");
                m.add(Metric::Transitions, 3);
            }
        }
        m.counter("pool/steals").add(5);
        m
    }

    #[test]
    fn v1_round_trip_reproduces_summary_byte_for_byte() {
        let m = sample_registry();
        let snap = m.snapshot();
        let jsonl = render_jsonl(&snap, Some(2), None);
        let report = ObsReport::parse(&jsonl).unwrap();
        assert_eq!(report.schema, "rl-obs/v1");
        assert_eq!(report.jobs, Some(2));
        assert!(!report.truncated);
        assert_eq!(report.total(Metric::States), 7);
        assert_eq!(report.counters, vec![("pool/steals".to_owned(), 5)]);
        assert_eq!(report.summary(), snap.summary());
        assert!(report.event_summary().is_empty());
    }

    #[test]
    fn v2_round_trip_recovers_events() {
        let m = sample_registry();
        let tracer = Arc::new(Tracer::new());
        m.set_tracer(tracer.clone());
        {
            let _more = m.enter("inclusion");
            tracer.instant("pool", "steal", Some(("victim", 1)));
        }
        let jsonl = m.to_jsonl();
        assert!(jsonl.starts_with("{\"event\":\"meta\",\"schema\":\"rl-obs/v2\""));
        let report = ObsReport::parse(&jsonl).unwrap();
        assert_eq!(report.schema, "rl-obs/v2");
        // Two span events (begin+end for "inclusion") plus the instant.
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.events, tracer.events());
        let digest = report.event_summary();
        assert!(digest.contains("3 events"));
        assert!(digest.contains("main"));
    }

    #[test]
    fn truncated_file_reconstructs_totals_from_root_spans() {
        let m = sample_registry();
        let jsonl = m.to_jsonl();
        // Drop the closing totals line, as a mid-write kill would.
        let cut = jsonl.trim_end().rfind('\n').unwrap();
        let report = ObsReport::parse(&jsonl[..cut]).unwrap();
        assert!(report.truncated);
        assert_eq!(report.total(Metric::States), 7);
        assert_eq!(report.total(Metric::Transitions), 3);
        assert!(report.counters.is_empty());
    }

    #[test]
    fn unknown_event_kinds_are_counted_not_fatal() {
        let m = sample_registry();
        let snap = m.snapshot();
        let jsonl = render_jsonl(&snap, None, None);
        // Splice two future-schema lines ahead of the totals line.
        let cut = jsonl.trim_end().rfind('\n').unwrap() + 1;
        let spliced = format!(
            "{}{}\n{}\n{}",
            &jsonl[..cut],
            "{\"event\":\"frob\",\"x\":1}",
            "{\"event\":\"frob\",\"x\":2}",
            &jsonl[cut..]
        );
        let report = ObsReport::parse(&spliced).unwrap();
        assert!(!report.truncated);
        assert_eq!(report.unknown_events, vec![("frob".to_owned(), 2)]);
        assert!(report.unknown_note().contains("frob (2)"));
        assert_eq!(
            report.summary(),
            snap.summary(),
            "unknown lines must not perturb the byte-for-byte table"
        );
        let clean = ObsReport::parse(&jsonl).unwrap();
        assert!(clean.unknown_note().is_empty());
    }

    #[test]
    fn v3_round_trip_recovers_histograms() {
        use crate::{render_jsonl_with_hists, Histogram};
        let m = sample_registry();
        let h = Histogram::new();
        for v in [10u64, 20, 3_000] {
            h.record(v);
        }
        let hists = vec![("filter/parikh_us".to_owned(), h.snapshot())];
        let snap = m.snapshot();
        let jsonl = render_jsonl_with_hists(&snap, Some(1), None, &hists);
        assert!(jsonl.starts_with("{\"event\":\"meta\",\"schema\":\"rl-obs/v3\""));
        let report = ObsReport::parse(&jsonl).unwrap();
        assert_eq!(report.schema, "rl-obs/v3");
        assert!(!report.truncated);
        assert_eq!(report.hists.len(), 1);
        assert_eq!(report.hists[0].0, None);
        assert_eq!(report.hists[0].1, "filter/parikh_us");
        assert_eq!(report.hists[0].2, hists[0].1);
        let table = report.hist_summary();
        assert!(table.contains("filter/parikh_us"), "{table}");
        assert!(table.contains("p99"), "{table}");
        // The deterministic phase table is untouched by hist lines.
        assert_eq!(report.summary(), snap.summary());
    }

    // Satellite: a metrics file cut mid-record (writer killed mid-write)
    // must degrade gracefully — render what survived, flag truncation.
    #[test]
    fn v2_file_cut_mid_record_degrades_gracefully() {
        let m = sample_registry();
        let tracer = Arc::new(Tracer::new());
        m.set_tracer(tracer.clone());
        {
            let _s = m.enter("inclusion");
        }
        let jsonl = m.to_jsonl();
        assert!(jsonl.contains("rl-obs/v2"));
        // Cut in the middle of the last record, not at a line boundary.
        let cut = jsonl.trim_end().rfind('\n').unwrap() + 10;
        let report = ObsReport::parse(&jsonl[..cut]).unwrap();
        assert!(report.truncated, "mid-record cut must flag truncation");
        assert_eq!(report.total(Metric::States), 7);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn parses_captured_subscribe_stream() {
        let text = concat!(
            "{\"ok\":true,\"subscribed\":\"*\"}\n",
            "{\"event\":\"heartbeat\",\"job\":1,\"elapsed_us\":500000,",
            "\"states\":1000,\"transitions\":2000,\"states_per_sec\":2000,",
            "\"frontier\":10}\n",
            "{\"event\":\"trace\",\"job\":1,\"ph\":\"I\",\"track\":0,",
            "\"cat\":\"kernel\",\"name\":\"determinize-layer\",\"ts_us\":42}\n",
            "{\"event\":\"dropped\",\"count\":3,\"total\":3}\n",
            "{\"event\":\"done\",\"job\":1,\"code\":0}\n",
        );
        let report = ObsReport::parse(text).unwrap();
        assert!(report.is_stream());
        assert_eq!(report.schema, SCHEMA_STREAM);
        assert!(!report.truncated);
        assert_eq!(report.heartbeats.len(), 1);
        assert_eq!(report.heartbeats[0].job, Some(1));
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.done, vec![(1, 0)]);
        assert_eq!(report.dropped_events, 3);
        let digest = report.stream_summary();
        assert!(digest.contains("1 job(s)"), "{digest}");
        assert!(digest.contains("done code 0"), "{digest}");
        assert!(!report.event_summary().is_empty());
    }

    #[test]
    fn stream_capture_cut_mid_line_is_flagged_truncated() {
        let text = concat!(
            "{\"event\":\"heartbeat\",\"job\":2,\"elapsed_us\":100,\"states\":5}\n",
            "{\"event\":\"heartbeat\",\"job\":2,\"elapsed_",
        );
        let report = ObsReport::parse(text).unwrap();
        assert!(report.is_stream());
        assert!(report.truncated);
        assert_eq!(report.heartbeats.len(), 1);
        assert!(report.stream_summary().contains("truncated"));
    }

    #[test]
    fn rejects_non_obs_input() {
        assert!(ObsReport::parse("").is_err());
        assert!(ObsReport::parse("{\"event\":\"span\"}\n").is_err());
        assert!(ObsReport::parse(
            "{\"event\":\"meta\",\"schema\":\"rl-obs/v99\",\"elapsed_us\":0}\n"
        )
        .is_err());
    }
}
