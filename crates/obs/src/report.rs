//! Offline rendering of committed `rl-obs` JSONL files.
//!
//! A `--metrics` file outlives the run that wrote it — it lands in CI
//! artifacts, bench directories, and bug reports. [`ObsReport`] parses both
//! the `rl-obs/v1` span stream and the `rl-obs/v2` event stream back into
//! structured form so `rlcheck report` can reproduce the original `--stats`
//! table byte-for-byte and summarize the recorded timeline, long after the
//! process that ran the check is gone.
//!
//! Parsing is deliberately tolerant of *truncation*: a run that panicked or
//! was killed mid-write may be missing its closing `totals` line, in which
//! case totals are reconstructed from the depth-0 span rows and
//! [`ObsReport::truncated`] is set so consumers can flag the report as
//! partial.

use std::fmt::Write as _;
use std::time::Duration;

use rl_json::{FromJson, Json, JsonError};

use crate::trace::{track_name, TraceEvent, TracePhase};
use crate::{Metric, RegistrySnapshot, SpanRecord, METRIC_COUNT};

/// A parsed `rl-obs/v1` or `rl-obs/v2` JSONL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsReport {
    /// The schema tag from the `meta` line (`rl-obs/v1` or `rl-obs/v2`).
    pub schema: String,
    /// The resolved `--jobs` choice recorded in the `meta` line, if any.
    pub jobs: Option<usize>,
    /// Wall-clock lifetime of the source registry.
    pub elapsed: Duration,
    /// Completed spans, in the order they appear in the file (open order).
    pub spans: Vec<SpanRecord>,
    /// Timeline events (`rl-obs/v2` only; empty for v1 files).
    pub events: Vec<TraceEvent>,
    /// Built-in metric totals, indexed like [`Metric::ALL`].
    pub totals: [u64; METRIC_COUNT],
    /// Custom counter totals, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Whether the closing `totals` line was missing (interrupted write).
    /// When set, `totals` holds the sum of depth-0 span rows instead and
    /// `counters` is empty.
    pub truncated: bool,
}

impl ObsReport {
    /// Parses a JSONL metrics file. The first non-empty line must be a
    /// `meta` event with a supported schema; unknown event types on later
    /// lines are skipped (forward compatibility).
    pub fn parse(text: &str) -> Result<ObsReport, JsonError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| JsonError::custom("empty metrics file (no meta line)"))?;
        let meta = rl_json::parse(first)?;
        if String::from_json(meta.field("event")?)? != "meta" {
            return Err(JsonError::custom(
                "first line is not a meta event; not an rl-obs JSONL file",
            ));
        }
        let schema = String::from_json(meta.field("schema")?)?;
        if schema != "rl-obs/v1" && schema != "rl-obs/v2" {
            return Err(JsonError::custom(format!(
                "unsupported schema {schema:?} (expected rl-obs/v1 or rl-obs/v2)"
            )));
        }
        let mut report = ObsReport {
            schema,
            jobs: match meta.get("jobs") {
                Some(v) => Some(usize::from_json(v)?),
                None => None,
            },
            elapsed: Duration::from_micros(u64::from_json(meta.field("elapsed_us")?)?),
            spans: Vec::new(),
            events: Vec::new(),
            totals: [0; METRIC_COUNT],
            counters: Vec::new(),
            truncated: true,
        };
        for line in lines {
            let value = rl_json::parse(line)?;
            let event = match value.get("event") {
                Some(Json::Str(s)) => s.as_str(),
                _ => continue,
            };
            match event {
                "span" => report.spans.push(SpanRecord::from_json(&value)?),
                "trace" => report.events.push(TraceEvent::from_json(&value)?),
                "totals" => {
                    for (i, m) in Metric::ALL.iter().enumerate() {
                        report.totals[i] = u64::from_json(value.field(m.name())?)?;
                    }
                    if let Some(Json::Obj(fields)) = value.get("counters") {
                        report.counters = fields
                            .iter()
                            .map(|(name, v)| Ok((name.clone(), u64::from_json(v)?)))
                            .collect::<Result<_, JsonError>>()?;
                    }
                    report.truncated = false;
                }
                _ => {}
            }
        }
        if report.truncated {
            // Reconstruct what we can: each depth-0 row's deltas are
            // inclusive of its children, so root rows sum to the totals of
            // everything that *completed*.
            for r in report.spans.iter().filter(|r| r.depth == 0) {
                for (i, m) in Metric::ALL.iter().enumerate() {
                    report.totals[i] += r.metric(*m);
                }
            }
        }
        Ok(report)
    }

    /// The recorded total of a built-in metric.
    pub fn total(&self, metric: Metric) -> u64 {
        self.totals[metric as usize]
    }

    /// The report's data as a [`RegistrySnapshot`] (the summary-rendering
    /// currency).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            records: self.spans.clone(),
            totals: self.totals,
            counters: self.counters.clone(),
            elapsed: self.elapsed,
        }
    }

    /// The human phase table for this report — byte-for-byte identical to
    /// the `--stats` output of the run that wrote the file (both render the
    /// same snapshot; durations are stored at microsecond precision, which
    /// is exactly what the table formats).
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }

    /// A per-track digest of the recorded timeline (`rl-obs/v2` only):
    /// event totals and the begin/end/instant split for each worker lane.
    /// Empty string when the report carries no events.
    pub fn event_summary(&self) -> String {
        if self.events.is_empty() {
            return String::new();
        }
        let mut tracks: Vec<usize> = self.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events across {} track(s)",
            self.events.len(),
            tracks.len()
        );
        for track in tracks {
            let (mut begins, mut ends, mut instants) = (0usize, 0usize, 0usize);
            for e in self.events.iter().filter(|e| e.track == track) {
                match e.phase {
                    TracePhase::Begin => begins += 1,
                    TracePhase::End => ends += 1,
                    TracePhase::Instant => instants += 1,
                }
            }
            let _ = writeln!(
                out,
                "  {:<10} {:>6} begin {:>6} end {:>6} instant",
                track_name(track),
                begins,
                ends,
                instants
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render_jsonl, MetricsRegistry, Tracer};
    use std::sync::Arc;

    fn sample_registry() -> MetricsRegistry {
        let m = MetricsRegistry::new();
        {
            let _check = m.enter("check");
            m.add(Metric::States, 7);
            {
                let _det = m.enter("determinize");
                m.add(Metric::Transitions, 3);
            }
        }
        m.counter("pool/steals").add(5);
        m
    }

    #[test]
    fn v1_round_trip_reproduces_summary_byte_for_byte() {
        let m = sample_registry();
        let snap = m.snapshot();
        let jsonl = render_jsonl(&snap, Some(2), None);
        let report = ObsReport::parse(&jsonl).unwrap();
        assert_eq!(report.schema, "rl-obs/v1");
        assert_eq!(report.jobs, Some(2));
        assert!(!report.truncated);
        assert_eq!(report.total(Metric::States), 7);
        assert_eq!(report.counters, vec![("pool/steals".to_owned(), 5)]);
        assert_eq!(report.summary(), snap.summary());
        assert!(report.event_summary().is_empty());
    }

    #[test]
    fn v2_round_trip_recovers_events() {
        let m = sample_registry();
        let tracer = Arc::new(Tracer::new());
        m.set_tracer(tracer.clone());
        {
            let _more = m.enter("inclusion");
            tracer.instant("pool", "steal", Some(("victim", 1)));
        }
        let jsonl = m.to_jsonl();
        assert!(jsonl.starts_with("{\"event\":\"meta\",\"schema\":\"rl-obs/v2\""));
        let report = ObsReport::parse(&jsonl).unwrap();
        assert_eq!(report.schema, "rl-obs/v2");
        // Two span events (begin+end for "inclusion") plus the instant.
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.events, tracer.events());
        let digest = report.event_summary();
        assert!(digest.contains("3 events"));
        assert!(digest.contains("main"));
    }

    #[test]
    fn truncated_file_reconstructs_totals_from_root_spans() {
        let m = sample_registry();
        let jsonl = m.to_jsonl();
        // Drop the closing totals line, as a mid-write kill would.
        let cut = jsonl.trim_end().rfind('\n').unwrap();
        let report = ObsReport::parse(&jsonl[..cut]).unwrap();
        assert!(report.truncated);
        assert_eq!(report.total(Metric::States), 7);
        assert_eq!(report.total(Metric::Transitions), 3);
        assert!(report.counters.is_empty());
    }

    #[test]
    fn rejects_non_obs_input() {
        assert!(ObsReport::parse("").is_err());
        assert!(ObsReport::parse("{\"event\":\"span\"}\n").is_err());
        assert!(ObsReport::parse(
            "{\"event\":\"meta\",\"schema\":\"rl-obs/v99\",\"elapsed_us\":0}\n"
        )
        .is_err());
    }
}
