//! Structured tracing, metrics, and phase profiling for the checking stack.
//!
//! Every decision procedure in this workspace is worst-case exponential, so
//! knowing *where* the state-space cost lands matters as much as the final
//! verdict. This crate provides the three observability primitives the rest
//! of the workspace threads through its guarded (`*_with`) procedures:
//!
//! * [`Span`] — a named, nested, wall-clock-timed phase. Spans form a stack;
//!   each records, on close, its path (e.g. `check/relative_liveness/
//!   determinize`), its duration, and the *delta* of every built-in metric
//!   over its lifetime (inclusive of children).
//! * [`Counter`] — a monotonic named counter for ad-hoc instrumentation,
//!   registered on a [`MetricsRegistry`] and reported with the totals.
//! * [`MetricsRegistry`] — the cheaply clonable handle collecting it all,
//!   with two sinks: a human-readable phase table ([`MetricsRegistry::
//!   summary`], for stderr) and machine-readable JSONL events
//!   ([`MetricsRegistry::to_jsonl`], via the in-repo `rl-json` layer).
//!
//! # Overhead discipline
//!
//! Observability must cost (almost) nothing when off. The registry is meant
//! to sit behind an `Option` in the instrumented code (`rl-automata`'s
//! `Guard` does exactly that): when absent, counter traffic is a single
//! branch and spans are the inert [`Span::disabled`] value, whose creation
//! and drop do no work. When present, counters are plain [`Cell`]s — no
//! atomics anywhere on the hot path — and a span open/close is two `Vec`
//! pushes plus one `Instant` read each.
//!
//! # Example
//!
//! ```
//! use rl_obs::{Metric, MetricsRegistry};
//!
//! let m = MetricsRegistry::new();
//! {
//!     let _outer = m.enter("check");
//!     {
//!         let _inner = m.enter("determinize");
//!         m.add(Metric::States, 40);
//!     }
//!     m.add(Metric::States, 2);
//! }
//! let records = m.records();
//! assert_eq!(records.len(), 2);
//! // Records come back in open order; deltas are inclusive of children.
//! assert_eq!(records[0].path, "check");
//! assert_eq!(records[0].states, 42);
//! assert_eq!(records[1].path, "check/determinize");
//! assert_eq!(records[1].states, 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod journal;
pub mod knobs;
mod report;
mod slo;
mod stream;
mod trace;

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

pub use hist::{
    hist_event_json, render_prometheus, Histogram, HistogramRegistry, HistogramSnapshot,
    BUCKET_COUNT,
};
pub use journal::{
    read_journal, render_journal, Journal, JournalSample, JournalWriter, DEFAULT_SEGMENT_BYTES,
};
pub use report::{ObsReport, SCHEMA_STREAM};
pub use slo::{
    evaluate as evaluate_slo, parse_baseline as parse_slo_baseline, SloBaseline, SloCeilings,
    SLO_SCHEMA,
};
pub use stream::{EventRing, Heartbeat, StreamBus, StreamSubscription};
pub use trace::{
    chrome_trace_json, folded_stacks, set_thread_track, thread_track, track_name, TraceEvent,
    TracePhase, Tracer, EVENT_SHARDS, TRACK_MAIN,
};

/// The fixed, hot-path metrics every guarded construction reports.
///
/// These four are `Cell`-backed slots addressed by index — incrementing one
/// is a load, an add, and a store, with no hashing and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Automaton states materialized.
    States,
    /// Automaton transitions materialized.
    Transitions,
    /// Memoization hits (e.g. the simplicity check's continuation cache).
    CacheHits,
    /// Calls into the resource guard (charge/tick traffic).
    GuardCharges,
}

/// Number of [`Metric`] variants (size of the per-span delta vectors).
pub const METRIC_COUNT: usize = 4;

impl Metric {
    /// All metrics, in reporting order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::States,
        Metric::Transitions,
        Metric::CacheHits,
        Metric::GuardCharges,
    ];

    /// The stable snake_case name used in JSONL events and table headers.
    pub fn name(self) -> &'static str {
        match self {
            Metric::States => "states",
            Metric::Transitions => "transitions",
            Metric::CacheHits => "cache_hits",
            Metric::GuardCharges => "guard_charges",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A completed span: one row of the phase profile.
///
/// `states`/`transitions`/`cache_hits`/`guard_charges` are the metric
/// *deltas* accumulated while the span was open — inclusive of child spans,
/// so a parent's numbers bound the sum of its children's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-joined path from the root span, e.g.
    /// `check/relative_liveness/determinize`.
    pub path: String,
    /// The span's own name (the last path component).
    pub name: String,
    /// Nesting depth (0 for a root span).
    pub depth: usize,
    /// Open order: the n-th span opened on this registry has `seq == n`.
    pub seq: u64,
    /// When the span opened, relative to registry creation.
    pub started: Duration,
    /// Wall-clock time the span was open.
    pub elapsed: Duration,
    /// States materialized while open.
    pub states: u64,
    /// Transitions materialized while open.
    pub transitions: u64,
    /// Cache hits while open.
    pub cache_hits: u64,
    /// Guard charges while open.
    pub guard_charges: u64,
}

impl SpanRecord {
    /// The delta recorded for `metric`.
    pub fn metric(&self, metric: Metric) -> u64 {
        match metric {
            Metric::States => self.states,
            Metric::Transitions => self.transitions,
            Metric::CacheHits => self.cache_hits,
            Metric::GuardCharges => self.guard_charges,
        }
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("event", "span")
            .field("path", &self.path)
            .field("name", &self.name)
            .field("depth", self.depth)
            .field("seq", self.seq)
            .field("start_us", self.started.as_micros() as u64)
            .field("elapsed_us", self.elapsed.as_micros() as u64)
            .field("states", self.states)
            .field("transitions", self.transitions)
            .field("cache_hits", self.cache_hits)
            .field("guard_charges", self.guard_charges)
            .build()
    }
}

impl FromJson for SpanRecord {
    fn from_json(value: &Json) -> Result<SpanRecord, JsonError> {
        let event = String::from_json(value.field("event")?)?;
        if event != "span" {
            return Err(JsonError::custom(format!(
                "expected a span event, got {event:?}"
            )));
        }
        Ok(SpanRecord {
            path: String::from_json(value.field("path")?)?,
            name: String::from_json(value.field("name")?)?,
            depth: usize::from_json(value.field("depth")?)?,
            seq: u64::from_json(value.field("seq")?)?,
            started: Duration::from_micros(u64::from_json(value.field("start_us")?)?),
            elapsed: Duration::from_micros(u64::from_json(value.field("elapsed_us")?)?),
            states: u64::from_json(value.field("states")?)?,
            transitions: u64::from_json(value.field("transitions")?)?,
            cache_hits: u64::from_json(value.field("cache_hits")?)?,
            guard_charges: u64::from_json(value.field("guard_charges")?)?,
        })
    }
}

/// An open frame on the span stack.
#[derive(Debug)]
struct Frame {
    name: &'static str,
    path: String,
    seq: u64,
    started: Duration,
    snapshot: [u64; METRIC_COUNT],
}

#[derive(Debug)]
struct CustomCounter {
    name: String,
    value: Rc<Cell<u64>>,
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    next_seq: Cell<u64>,
    totals: [Cell<u64>; METRIC_COUNT],
    stack: RefCell<Vec<Frame>>,
    records: RefCell<Vec<SpanRecord>>,
    custom: RefCell<Vec<CustomCounter>>,
    jobs: Cell<Option<usize>>,
    tracer: RefCell<Option<Arc<Tracer>>>,
}

/// A detached, immutable copy of a registry's completed output: records,
/// metric totals, and custom counters.
///
/// Unlike [`MetricsRegistry`] (which is `Rc`-based and single-threaded by
/// design), a snapshot is plain owned data and is `Send` — it is the unit
/// that crosses threads when parallel workers or batch jobs each meter their
/// own shard registry and the parent absorbs the shards at join
/// ([`MetricsRegistry::absorb`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Completed spans, in open (`seq`) order.
    pub records: Vec<SpanRecord>,
    /// Built-in metric totals, indexed like [`Metric::ALL`].
    pub totals: [u64; METRIC_COUNT],
    /// Custom counter totals, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock lifetime of the source registry at snapshot time.
    pub elapsed: Duration,
}

impl RegistrySnapshot {
    /// The snapshotted total of a built-in metric.
    pub fn total(&self, metric: Metric) -> u64 {
        self.totals[metric.index()]
    }

    /// Human-readable phase table (one indented row per span, in open
    /// order) plus a totals footer — the `--stats` sink.
    ///
    /// Rendering from a snapshot rather than a live registry means the
    /// table and the JSONL written from the *same* snapshot agree to the
    /// byte, which is what lets `rlcheck report` reproduce a committed
    /// run's `--stats` output exactly.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>12} {:>10} {:>12}",
            "phase", "states", "transitions", "cache-hits", "elapsed"
        );
        for r in &self.records {
            let label = format!("{}{}", "  ".repeat(r.depth), r.name);
            let _ = writeln!(
                out,
                "{label:<44} {:>10} {:>12} {:>10} {:>12}",
                r.states,
                r.transitions,
                r.cache_hits,
                format_duration(r.elapsed),
            );
        }
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>12} {:>10} {:>12}",
            "total",
            self.total(Metric::States),
            self.total(Metric::Transitions),
            self.total(Metric::CacheHits),
            format_duration(self.elapsed),
        );
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<44} {value:>10}");
        }
        // Headline pre-filter effectiveness: how many Lemma 4.3 inclusions
        // the semidecision ladder answered without the exact decider.
        // Derived purely from the (deterministic) counters, so an offline
        // `rlcheck report` re-renders the row byte-for-byte.
        let counter = |needle: &str| {
            self.counters
                .iter()
                .find(|(name, _)| name == needle)
                .map_or(0, |&(_, value)| value)
        };
        let hits = counter("filter/hit");
        let total = hits + counter("filter/fallthrough");
        if let Some(pct) = (hits * 100).checked_div(total) {
            let rate = format!("{hits}/{total} ({pct}%)");
            let _ = writeln!(out, "{:<44} {rate:>10}", "filter hit-rate");
        }
        out
    }
}

/// Machine-readable JSONL for a snapshot: a `meta` line, one `span` line per
/// completed span (open order), `trace` lines when an event stream is
/// supplied, and a closing `totals` line. `events: None` emits the
/// `rl-obs/v1` schema; `Some` emits `rl-obs/v2` (even when the stream is
/// empty — the schema records that tracing was on). Every line is an
/// independent JSON object; see `docs/OBSERVABILITY.md`.
pub fn render_jsonl(
    snapshot: &RegistrySnapshot,
    jobs: Option<usize>,
    events: Option<&[TraceEvent]>,
) -> String {
    render_jsonl_with_hists(snapshot, jobs, events, &[])
}

/// [`render_jsonl`] extended with histogram families: any non-empty `hists`
/// slice upgrades the schema to `rl-obs/v3` and appends one `hist` line per
/// family (sparse buckets plus count/sum/max) before the closing `totals`.
/// With `hists` empty this is exactly [`render_jsonl`], so v1/v2 consumers
/// of histogram-free runs are unaffected.
pub fn render_jsonl_with_hists(
    snapshot: &RegistrySnapshot,
    jobs: Option<usize>,
    events: Option<&[TraceEvent]>,
    hists: &[(String, HistogramSnapshot)],
) -> String {
    let records = &snapshot.records;
    let n_events = events.map_or(0, <[TraceEvent]>::len);
    let mut lines = Vec::with_capacity(records.len() + n_events + hists.len() + 2);
    let mut meta = ObjBuilder::new()
        .field("event", "meta")
        .field(
            "schema",
            if !hists.is_empty() {
                "rl-obs/v3"
            } else if events.is_some() {
                "rl-obs/v2"
            } else {
                "rl-obs/v1"
            },
        )
        .field("spans", records.len());
    if events.is_some() {
        meta = meta.field("events", n_events);
    }
    if !hists.is_empty() {
        meta = meta.field("hists", hists.len());
    }
    meta = meta.field("elapsed_us", snapshot.elapsed.as_micros() as u64);
    if let Some(jobs) = jobs {
        meta = meta.field("jobs", jobs);
    }
    lines.push(compact(&meta.build()));
    for r in records {
        lines.push(compact(&r.to_json()));
    }
    for e in events.unwrap_or_default() {
        lines.push(compact(&e.to_json()));
    }
    for (name, snap) in hists {
        lines.push(compact(&hist_event_json(name, None, snap)));
    }
    let mut totals = ObjBuilder::new().field("event", "totals");
    for m in Metric::ALL {
        totals = totals.field(m.name(), snapshot.total(m));
    }
    let custom = Json::Obj(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Json::Int(*value as i64)))
            .collect(),
    );
    lines.push(compact(&totals.field("counters", custom).build()));
    lines.join("\n") + "\n"
}

/// The collector for spans, metrics, and counters of one checking run.
///
/// Cloning is cheap (an `Rc` bump) and all clones share state; the registry
/// is single-threaded by design, matching the single-threaded decision
/// procedures (`Cell`/`RefCell`, no atomics).
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Rc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry; its clock starts now.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Rc::new(Inner {
                start: Instant::now(),
                next_seq: Cell::new(0),
                totals: std::array::from_fn(|_| Cell::new(0)),
                stack: RefCell::new(Vec::new()),
                records: RefCell::new(Vec::new()),
                custom: RefCell::new(Vec::new()),
                jobs: Cell::new(None),
                tracer: RefCell::new(None),
            }),
        }
    }

    /// Attaches an event-level [`Tracer`]: from now on every span open/close
    /// also records a timestamped begin/end event on the calling thread's
    /// track, and [`MetricsRegistry::to_jsonl`] emits the `rl-obs/v2` event
    /// stream. Tracing never touches the metric counters, so deterministic
    /// totals are bit-for-bit identical with and without a tracer.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.inner.tracer.borrow_mut() = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.inner.tracer.borrow().clone()
    }

    /// Records the degree of parallelism this run executed with (the resolved
    /// `--jobs`/`RL_THREADS` choice). Shows up as the `jobs` field of the
    /// JSONL `meta` header so traces are attributable to a thread count.
    pub fn note_jobs(&self, jobs: usize) {
        self.inner.jobs.set(Some(jobs));
    }

    /// The recorded parallelism degree, if one was noted.
    pub fn jobs(&self) -> Option<usize> {
        self.inner.jobs.get()
    }

    /// Opens a named span nested under the currently open one. Closing
    /// happens on drop of the returned [`Span`], so spans must be closed in
    /// LIFO order — which scoping gives for free.
    pub fn enter(&self, name: &'static str) -> Span {
        let inner = &self.inner;
        let seq = inner.next_seq.get();
        inner.next_seq.set(seq + 1);
        let mut stack = inner.stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        stack.push(Frame {
            name,
            path,
            seq,
            started: inner.start.elapsed(),
            snapshot: std::array::from_fn(|i| inner.totals[i].get()),
        });
        drop(stack);
        if let Some(t) = &*inner.tracer.borrow() {
            t.begin("span", name);
        }
        Span {
            registry: Some(self.clone()),
        }
    }

    /// Adds `n` to a built-in metric.
    pub fn add(&self, metric: Metric, n: u64) {
        let cell = &self.inner.totals[metric.index()];
        cell.set(cell.get() + n);
    }

    /// Increments a built-in metric by one.
    pub fn inc(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// The running total of a built-in metric.
    pub fn total(&self, metric: Metric) -> u64 {
        self.inner.totals[metric.index()].get()
    }

    /// Registers (or retrieves) a named monotonic [`Counter`]. Counters show
    /// up in the JSONL `totals` event and the summary footer.
    pub fn counter(&self, name: &str) -> Counter {
        let mut custom = self.inner.custom.borrow_mut();
        let value = match custom.iter().find(|c| c.name == name) {
            Some(c) => c.value.clone(),
            None => {
                let value: Rc<Cell<u64>> = Rc::new(Cell::new(0));
                custom.push(CustomCounter {
                    name: name.to_owned(),
                    value: value.clone(),
                });
                value
            }
        };
        Counter { value }
    }

    /// The slash-joined path of the currently open span, if any — used to
    /// tag budget-exhaustion diagnostics with the phase that blew the
    /// budget.
    pub fn current_path(&self) -> Option<String> {
        self.inner.stack.borrow().last().map(|f| f.path.clone())
    }

    /// Wall-clock time since the registry was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.start.elapsed()
    }

    /// All completed spans so far, in open (`seq`) order.
    ///
    /// Spans still open (e.g. when a construction was interrupted by a
    /// budget error and the stack unwound past this call) are not included;
    /// they *are* included once their RAII guards drop.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut records = self.inner.records.borrow().clone();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Custom counter totals, in registration order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .custom
            .borrow()
            .iter()
            .map(|c| (c.name.clone(), c.value.get()))
            .collect()
    }

    /// A detached, `Send`-able copy of everything recorded so far — the
    /// shard side of the shard/merge protocol (see
    /// [`MetricsRegistry::absorb`]).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            records: self.records(),
            totals: std::array::from_fn(|i| self.inner.totals[i].get()),
            counters: self.counters(),
            elapsed: self.elapsed(),
        }
    }

    /// Merges a worker/job shard into this registry: every shard span is
    /// re-recorded under `prefix/` (depth shifted by one, `seq` renumbered
    /// after everything already recorded here) and the shard's metric and
    /// counter totals are added to this registry's totals.
    ///
    /// Callers absorb shards **in submission order at join**, not in
    /// completion order, so the merged `--stats`/`--metrics` output is
    /// deterministic regardless of how the parallel schedule interleaved.
    pub fn absorb(&self, prefix: &str, shard: &RegistrySnapshot) {
        let inner = &self.inner;
        {
            let mut records = inner.records.borrow_mut();
            // A synthetic root row for the shard, so summaries show the
            // prefix (e.g. `job3`) as the parent of the re-rooted spans.
            let seq = inner.next_seq.get();
            inner.next_seq.set(seq + 1);
            records.push(SpanRecord {
                path: prefix.to_owned(),
                name: prefix.to_owned(),
                depth: 0,
                seq,
                started: shard.records.first().map_or(Duration::ZERO, |r| r.started),
                elapsed: shard.elapsed,
                states: shard.total(Metric::States),
                transitions: shard.total(Metric::Transitions),
                cache_hits: shard.total(Metric::CacheHits),
                guard_charges: shard.total(Metric::GuardCharges),
            });
            for r in &shard.records {
                let seq = inner.next_seq.get();
                inner.next_seq.set(seq + 1);
                records.push(SpanRecord {
                    path: format!("{prefix}/{}", r.path),
                    name: r.name.clone(),
                    depth: r.depth + 1,
                    seq,
                    started: r.started,
                    elapsed: r.elapsed,
                    states: r.states,
                    transitions: r.transitions,
                    cache_hits: r.cache_hits,
                    guard_charges: r.guard_charges,
                });
            }
        }
        for (i, total) in inner.totals.iter().enumerate() {
            total.set(total.get() + shard.totals[i]);
        }
        for (name, value) in &shard.counters {
            self.counter(name).add(*value);
        }
    }

    fn close_top(&self) {
        let inner = &self.inner;
        let Some(frame) = inner.stack.borrow_mut().pop() else {
            return;
        };
        if let Some(t) = &*inner.tracer.borrow() {
            t.end("span", frame.name);
        }
        let deltas: [u64; METRIC_COUNT] =
            std::array::from_fn(|i| inner.totals[i].get() - frame.snapshot[i]);
        let depth = inner.stack.borrow().len();
        inner.records.borrow_mut().push(SpanRecord {
            name: frame.name.to_owned(),
            depth,
            seq: frame.seq,
            started: frame.started,
            elapsed: inner.start.elapsed().saturating_sub(frame.started),
            states: deltas[Metric::States.index()],
            transitions: deltas[Metric::Transitions.index()],
            cache_hits: deltas[Metric::CacheHits.index()],
            guard_charges: deltas[Metric::GuardCharges.index()],
            path: frame.path,
        });
    }

    /// Human-readable phase table (one indented row per span, in open
    /// order) plus a totals footer — the `--stats` sink. Delegates to
    /// [`RegistrySnapshot::summary`] on a snapshot taken now.
    pub fn summary(&self) -> String {
        self.snapshot().summary()
    }

    /// Machine-readable JSONL: a `meta` line, one `span` line per completed
    /// span (open order), `trace` lines when a tracer is attached, and a
    /// closing `totals` line — the `--metrics` sink. Every line is an
    /// independent JSON object. Delegates to [`render_jsonl`] on a snapshot
    /// taken now (schema `rl-obs/v2` when a tracer is attached, `v1`
    /// otherwise).
    pub fn to_jsonl(&self) -> String {
        let events = self.tracer().map(|t| t.events());
        render_jsonl(&self.snapshot(), self.jobs(), events.as_deref())
    }
}

fn compact(value: &Json) -> String {
    rl_json::to_string(value).unwrap_or_else(|_| "{}".to_owned())
}

pub(crate) fn format_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// RAII handle for an open phase; closing (recording) happens on drop.
///
/// The disabled variant ([`Span::disabled`]) carries no registry and its
/// whole lifecycle is a no-op, so instrumented code can unconditionally hold
/// a `Span` without caring whether observability is on.
#[derive(Debug)]
#[must_use = "a span records its phase when dropped; binding it to `_` closes it immediately"]
pub struct Span {
    registry: Option<MetricsRegistry>,
}

impl Span {
    /// The inert span: does nothing on creation or drop.
    pub fn disabled() -> Span {
        Span { registry: None }
    }

    /// Whether this span records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(registry) = &self.registry {
            registry.close_top();
        }
    }
}

/// A monotonic named counter registered on a [`MetricsRegistry`].
///
/// # Example
///
/// ```
/// use rl_obs::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// let rows = m.counter("table_rows");
/// rows.add(3);
/// rows.inc();
/// assert_eq!(m.counters(), vec![("table_rows".to_owned(), 4)]);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    value: Rc<Cell<u64>>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_paths_depths_and_inclusive_deltas() {
        let m = MetricsRegistry::new();
        {
            let _check = m.enter("check");
            m.add(Metric::States, 1);
            {
                let _det = m.enter("determinize");
                m.add(Metric::States, 10);
                m.add(Metric::Transitions, 20);
            }
            {
                let _inc = m.enter("inclusion");
                m.add(Metric::States, 5);
            }
        }
        let records = m.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].path, "check");
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[0].states, 16, "parent deltas include children");
        assert_eq!(records[1].path, "check/determinize");
        assert_eq!(records[1].depth, 1);
        assert_eq!((records[1].states, records[1].transitions), (10, 20));
        assert_eq!(records[2].path, "check/inclusion");
        assert_eq!(records[2].states, 5);
        // seq reflects open order even though parents close last.
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn current_path_tracks_the_open_span() {
        let m = MetricsRegistry::new();
        assert_eq!(m.current_path(), None);
        let outer = m.enter("a");
        assert_eq!(m.current_path().as_deref(), Some("a"));
        let inner = m.enter("b");
        assert_eq!(m.current_path().as_deref(), Some("a/b"));
        drop(inner);
        assert_eq!(m.current_path().as_deref(), Some("a"));
        drop(outer);
        assert_eq!(m.current_path(), None);
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert!(!span.is_enabled());
        drop(span); // must not panic or touch any registry
    }

    #[test]
    fn span_record_round_trips_through_json() {
        let record = SpanRecord {
            path: "check/relative_liveness/determinize".to_owned(),
            name: "determinize".to_owned(),
            depth: 2,
            seq: 7,
            started: Duration::from_micros(1_234),
            elapsed: Duration::from_micros(56_789),
            states: 4096,
            transitions: 16_384,
            cache_hits: 12,
            guard_charges: 20_480,
        };
        let text = rl_json::to_string(&record).unwrap();
        let back: SpanRecord = rl_json::from_str(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn jsonl_has_meta_span_and_totals_lines_all_parseable() {
        let m = MetricsRegistry::new();
        {
            let _s = m.enter("phase_one");
            m.add(Metric::States, 3);
        }
        m.counter("extra").add(9);
        let jsonl = m.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            rl_json::parse(line).expect("every JSONL line parses");
        }
        let meta = rl_json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("event"), Some(&Json::Str("meta".to_owned())));
        assert_eq!(meta.get("spans"), Some(&Json::Int(1)));
        let span: SpanRecord = rl_json::from_str(lines[1]).unwrap();
        assert_eq!(span.path, "phase_one");
        assert_eq!(span.states, 3);
        let totals = rl_json::parse(lines[2]).unwrap();
        assert_eq!(totals.get("states"), Some(&Json::Int(3)));
        assert_eq!(
            totals.get("counters").and_then(|c| c.get("extra")),
            Some(&Json::Int(9))
        );
    }

    #[test]
    fn summary_table_lists_phases_indented_with_totals_footer() {
        let m = MetricsRegistry::new();
        {
            let _outer = m.enter("check");
            let _inner = m.enter("determinize");
            m.add(Metric::States, 2);
        }
        let summary = m.summary();
        assert!(summary.contains("phase"));
        assert!(summary.contains("check"));
        assert!(summary.contains("  determinize"), "nested rows indent");
        assert!(summary.contains("total"));
    }

    #[test]
    fn snapshot_absorb_prefixes_renumbers_and_sums() {
        let parent = MetricsRegistry::new();
        {
            let _own = parent.enter("batch");
            parent.add(Metric::States, 1);
        }
        let shard = MetricsRegistry::new();
        {
            let _s = shard.enter("check");
            let _inner = shard.enter("determinize");
            shard.add(Metric::States, 10);
            shard.add(Metric::Transitions, 4);
        }
        shard.counter("rows").add(7);
        let snap = shard.snapshot();
        assert_eq!(snap.total(Metric::States), 10);
        parent.absorb("job0", &snap);
        parent.absorb("job1", &snap);

        let records = parent.records();
        assert_eq!(records.len(), 7);
        assert_eq!(records[0].path, "batch");
        // Each absorb contributes a synthetic root row carrying the shard's
        // totals, then the shard's spans re-rooted under the prefix.
        assert_eq!(records[1].path, "job0");
        assert_eq!(records[1].depth, 0);
        assert_eq!(records[1].states, 10);
        assert_eq!(records[1].transitions, 4);
        assert_eq!(records[2].path, "job0/check");
        assert_eq!(records[2].depth, 1);
        assert_eq!(records[3].path, "job0/check/determinize");
        assert_eq!(records[3].depth, 2);
        assert_eq!(records[4].path, "job1");
        assert_eq!(records[5].path, "job1/check");
        // seq strictly increases across absorbs (deterministic merge order).
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(parent.total(Metric::States), 21);
        assert_eq!(parent.total(Metric::Transitions), 8);
        assert_eq!(parent.counters(), vec![("rows".to_owned(), 14)]);
    }

    #[test]
    fn jobs_choice_lands_in_the_meta_header() {
        let m = MetricsRegistry::new();
        assert_eq!(m.jobs(), None);
        assert!(!m.to_jsonl().lines().next().unwrap().contains("\"jobs\""));
        m.note_jobs(4);
        assert_eq!(m.jobs(), Some(4));
        let meta = rl_json::parse(m.to_jsonl().lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("jobs"), Some(&Json::Int(4)));
    }

    #[test]
    fn snapshot_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<RegistrySnapshot>();
    }

    #[test]
    fn counters_are_shared_by_name() {
        let m = MetricsRegistry::new();
        let a = m.counter("hits");
        let b = m.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(m.counters(), vec![("hits".to_owned(), 3)]);
    }
}
