//! Event-level timeline tracing: a `Send + Sync` sharded collector safe to
//! record from pool workers, plus exporters for standard tooling formats.
//!
//! The phase profiler in the crate root answers *where did the cost land*;
//! the [`Tracer`] answers *when, and on which worker*. It records timestamped
//! begin/end events for spans and pool tasks and instant events for pool
//! telemetry (spawns, steals, parks/unparks) and op-cache shard traffic
//! (hits, misses, racer adoptions), each tagged with a per-thread *track*
//! id so a timeline viewer renders one lane per worker.
//!
//! # Overhead discipline
//!
//! Tracing is opt-in per run: nothing in this module touches the registry's
//! `Rc`/`Cell` hot path, and deterministic metric counters are never read or
//! written here — enabling the tracer cannot change `states`/`transitions`/
//! `cache_hits`/`guard_charges` by construction. When a tracer *is*
//! attached, each event is one `Instant` read plus a push into one of
//! [`EVENT_SHARDS`] mutex-protected vectors selected by the recording
//! thread's track id, so workers on different tracks never contend.
//!
//! # Exporters
//!
//! * [`Tracer::chrome_trace`] — the Chrome trace-event JSON object
//!   (`{"traceEvents": [...]}`) loadable in `chrome://tracing` or Perfetto,
//!   one named track per worker.
//! * [`folded_stacks`] — folded-stack lines (`path;to;frame self_us`) for
//!   flamegraph tooling, computed from completed [`SpanRecord`]s.
//!
//! See `docs/OBSERVABILITY.md` for the full schema contract.

use std::cell::Cell;
use std::sync::Mutex;
use std::time::Instant;

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

use crate::SpanRecord;

/// Number of independent event shards; track ids map onto shards modulo this.
pub const EVENT_SHARDS: usize = 16;

/// The track id of the main (non-pool) thread.
pub const TRACK_MAIN: usize = 0;

thread_local! {
    static CURRENT_TRACK: Cell<usize> = const { Cell::new(TRACK_MAIN) };
}

/// Assigns this thread's timeline track. Pool workers call this once at
/// startup with `home + 1` (track 0 is reserved for the main thread), so
/// every event they record — including registry span events and op-cache
/// instants — lands on their own lane.
pub fn set_thread_track(track: usize) {
    CURRENT_TRACK.with(|c| c.set(track));
}

/// The timeline track assigned to this thread ([`TRACK_MAIN`] by default).
pub fn thread_track() -> usize {
    CURRENT_TRACK.with(Cell::get)
}

/// The human-readable lane name for a track id (`main`, `worker-1`, ...).
pub fn track_name(track: usize) -> String {
    if track == TRACK_MAIN {
        "main".to_owned()
    } else {
        format!("worker-{track}")
    }
}

/// Event kind, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A duration begins on this track (`ph: "B"`).
    Begin,
    /// The most recent open duration on this track ends (`ph: "E"`).
    End,
    /// A point event (`ph: "I"`, thread-scoped).
    Instant,
}

impl TracePhase {
    /// The one-letter Chrome trace-event phase code.
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "I",
        }
    }

    fn from_code(code: &str) -> Result<TracePhase, JsonError> {
        match code {
            "B" => Ok(TracePhase::Begin),
            "E" => Ok(TracePhase::End),
            "I" => Ok(TracePhase::Instant),
            other => Err(JsonError::custom(format!(
                "unknown trace phase {other:?} (expected B, E, or I)"
            ))),
        }
    }
}

/// One timeline event: what happened, when, and on which track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The recording thread's track ([`thread_track`] at record time).
    pub track: usize,
    /// Begin/end/instant.
    pub phase: TracePhase,
    /// Event category (`span`, `pool`, `opcache`, `kernel`).
    pub category: &'static str,
    /// Event name (span name, `steal`, `hit`, ...).
    pub name: String,
    /// Microseconds since the tracer was created.
    pub ts_us: u64,
    /// Optional numeric payload (e.g. `("victim", 3)` on a steal).
    pub arg: Option<(&'static str, u64)>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut b = ObjBuilder::new()
            .field("event", "trace")
            .field("ph", self.phase.code())
            .field("track", self.track)
            .field("cat", self.category)
            .field("name", &self.name)
            .field("ts_us", self.ts_us);
        if let Some((key, value)) = self.arg {
            b = b.field("arg", Json::Obj(vec![(key.to_owned(), int(value))]));
        }
        b.build()
    }
}

impl FromJson for TraceEvent {
    fn from_json(value: &Json) -> Result<TraceEvent, JsonError> {
        let event = String::from_json(value.field("event")?)?;
        if event != "trace" {
            return Err(JsonError::custom(format!(
                "expected a trace event, got {event:?}"
            )));
        }
        let arg = match value.get("arg") {
            Some(Json::Obj(fields)) => match fields.first() {
                Some((key, val)) => Some((leak_static(key), u64::from_json(val)?)),
                None => None,
            },
            _ => None,
        };
        Ok(TraceEvent {
            track: usize::from_json(value.field("track")?)?,
            phase: TracePhase::from_code(&String::from_json(value.field("ph")?)?)?,
            category: leak_static(&String::from_json(value.field("cat")?)?),
            name: String::from_json(value.field("name")?)?,
            ts_us: u64::from_json(value.field("ts_us")?)?,
            arg,
        })
    }
}

/// Interns a parsed category/arg-key string as `&'static str`.
///
/// Event categories and argument keys form a tiny closed vocabulary (see
/// `docs/OBSERVABILITY.md`), so leaking the handful of distinct strings a
/// report parse encounters is bounded; the common ones don't allocate at
/// all.
fn leak_static(s: &str) -> &'static str {
    match s {
        "span" => "span",
        "pool" => "pool",
        "opcache" => "opcache",
        "kernel" => "kernel",
        "queue" => "queue",
        "victim" => "victim",
        "shard" => "shard",
        "width" => "width",
        "count" => "count",
        "stage" => "stage",
        other => Box::leak(other.to_owned().into_boxed_str()),
    }
}

fn int(value: u64) -> Json {
    Json::Int(value as i64)
}

/// The `Send + Sync` sharded event collector.
///
/// Workers record into per-track shards (track id modulo [`EVENT_SHARDS`])
/// so they never contend with each other; [`Tracer::events`] absorbs the
/// shards deterministically — merged by ascending track, preserving each
/// track's own record order — mirroring how `RegistrySnapshot`s are absorbed
/// in submission order at join.
#[derive(Debug)]
pub struct Tracer {
    start: Instant,
    shards: [Mutex<TraceShard>; EVENT_SHARDS],
}

/// One shard's storage plus the streaming cursor: `taken` marks how many of
/// this shard's events [`Tracer::drain_new`] has already handed out, so
/// live streaming never re-delivers an event while the full [`Tracer::events`]
/// flush at the end of the run still sees everything.
#[derive(Debug, Default)]
struct TraceShard {
    events: Vec<TraceEvent>,
    taken: usize,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its clock starts now.
    pub fn new() -> Tracer {
        Tracer {
            start: Instant::now(),
            shards: std::array::from_fn(|_| Mutex::new(TraceShard::default())),
        }
    }

    /// Microseconds elapsed since the tracer was created.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn record(&self, event: TraceEvent) {
        let shard = &self.shards[event.track % EVENT_SHARDS];
        if let Ok(mut s) = shard.lock() {
            s.events.push(event);
        }
    }

    /// Records a duration-begin event on the calling thread's track.
    pub fn begin(&self, category: &'static str, name: &str) {
        self.record(TraceEvent {
            track: thread_track(),
            phase: TracePhase::Begin,
            category,
            name: name.to_owned(),
            ts_us: self.now_us(),
            arg: None,
        });
    }

    /// Records the matching duration-end event on the calling thread's
    /// track. Chrome trace semantics close the most recent open `B` on the
    /// same track, so begins/ends must nest per thread — which RAII spans
    /// and the pool's task bracketing give for free.
    pub fn end(&self, category: &'static str, name: &str) {
        self.record(TraceEvent {
            track: thread_track(),
            phase: TracePhase::End,
            category,
            name: name.to_owned(),
            ts_us: self.now_us(),
            arg: None,
        });
    }

    /// Records a point event on the calling thread's track, optionally
    /// carrying one numeric argument.
    pub fn instant(&self, category: &'static str, name: &str, arg: Option<(&'static str, u64)>) {
        self.record(TraceEvent {
            track: thread_track(),
            phase: TracePhase::Instant,
            category,
            name: name.to_owned(),
            ts_us: self.now_us(),
            arg,
        });
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map_or(0, |v| v.events.len()))
            .sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absorbs every shard into one deterministic stream: events sorted by
    /// ascending track, each track's events kept in the order that track
    /// recorded them. (Timestamps across tracks may interleave arbitrarily;
    /// per-track structure — B/E nesting — is what consumers rely on.)
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            if let Ok(s) = shard.lock() {
                all.extend(s.events.iter().cloned());
            }
        }
        // Stable: ties (same track, from the same shard) keep push order.
        all.sort_by_key(|e| e.track);
        all
    }

    /// Takes every event recorded since the previous `drain_new` call,
    /// sorted by timestamp (ties keep per-track record order, so B/E
    /// nesting within a track is preserved). The events stay in the tracer
    /// — a later [`Tracer::events`] flush still returns the full stream —
    /// only the streaming cursor advances. This is what lets `rlcheck
    /// serve` forward a live tracer incrementally to subscribers without
    /// disturbing the end-of-run sinks.
    pub fn drain_new(&self) -> Vec<TraceEvent> {
        let mut fresh: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            if let Ok(mut s) = shard.lock() {
                let from = s.taken;
                fresh.extend(s.events[from..].iter().cloned());
                s.taken = s.events.len();
            }
        }
        fresh.sort_by(|a, b| a.ts_us.cmp(&b.ts_us).then(a.track.cmp(&b.track)));
        fresh
    }

    /// Replays an already-recorded event stream into this tracer with every
    /// timestamp shifted by `offset_us` (the moment, on this tracer's
    /// clock, that the source tracer was created). Events keep their
    /// original tracks, so a per-job tracer merged at job completion lands
    /// on the same lanes its events were recorded on. Call from the thread
    /// that ran the job (inside its pool-task bracket) so per-track B/E
    /// nesting stays valid.
    pub fn absorb_events(&self, offset_us: u64, events: &[TraceEvent]) {
        for e in events {
            let mut shifted = e.clone();
            shifted.ts_us = shifted.ts_us.saturating_add(offset_us);
            self.record(shifted);
        }
    }

    /// The Chrome trace-event JSON object: `{"traceEvents": [...]}` with a
    /// `thread_name` metadata record per track, loadable in
    /// `chrome://tracing` or Perfetto. See `docs/OBSERVABILITY.md` for the
    /// field mapping.
    pub fn chrome_trace(&self) -> Json {
        chrome_trace_json(&self.events())
    }
}

/// Builds the Chrome trace-event JSON for an already-absorbed event stream
/// (used both by [`Tracer::chrome_trace`] and by `rlcheck report` when
/// re-exporting a committed v2 JSONL).
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    let mut tracks: Vec<usize> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out: Vec<Json> = Vec::with_capacity(events.len() + tracks.len());
    for track in tracks {
        out.push(
            ObjBuilder::new()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", 0usize)
                .field("tid", track)
                .field(
                    "args",
                    Json::Obj(vec![("name".to_owned(), Json::Str(track_name(track)))]),
                )
                .build(),
        );
    }
    for e in events {
        let mut b = ObjBuilder::new()
            .field("name", &e.name)
            .field("cat", e.category)
            .field("ph", e.phase.code())
            .field("ts", e.ts_us)
            .field("pid", 0usize)
            .field("tid", e.track);
        if e.phase == TracePhase::Instant {
            b = b.field("s", "t");
        }
        if let Some((key, value)) = e.arg {
            b = b.field("args", Json::Obj(vec![(key.to_owned(), int(value))]));
        }
        out.push(b.build());
    }
    Json::Obj(vec![("traceEvents".to_owned(), Json::Arr(out))])
}

/// Renders completed spans as folded stacks for flamegraph tooling: one
/// `root;child;leaf self_us` line per stack with nonzero *self* time (total
/// elapsed minus the elapsed of direct children), in first-open order.
///
/// Works on any span set with slash-joined paths — a live registry's
/// records or a parsed report's — so batch output folds `job<i>` prefixes
/// into the stack naturally.
pub fn folded_stacks(records: &[SpanRecord]) -> String {
    // Paths can repeat (a phase entered many times); aggregate totals and
    // child time per distinct path, keeping first-seen order. Span counts
    // are small (tens), so linear scans beat hashing here.
    fn index_of<'a>(order: &mut Vec<&'a str>, path: &'a str) -> usize {
        match order.iter().position(|&p| p == path) {
            Some(i) => i,
            None => {
                order.push(path);
                order.len() - 1
            }
        }
    }
    let mut order: Vec<&str> = Vec::new();
    let mut total: Vec<u64> = Vec::new();
    let mut child: Vec<u64> = Vec::new();
    for r in records {
        let us = r.elapsed.as_micros() as u64;
        let i = index_of(&mut order, r.path.as_str());
        if total.len() <= i {
            total.resize(i + 1, 0);
            child.resize(i + 1, 0);
        }
        total[i] += us;
        if let Some(cut) = r.path.rfind('/') {
            let j = index_of(&mut order, &r.path[..cut]);
            if child.len() <= j {
                total.resize(j + 1, 0);
                child.resize(j + 1, 0);
            }
            child[j] += us;
        }
    }
    let mut out = String::new();
    for (i, path) in order.iter().enumerate() {
        let self_us = total[i].saturating_sub(child[i]);
        if self_us > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(path: &str, depth: usize, seq: u64, elapsed_us: u64) -> SpanRecord {
        SpanRecord {
            path: path.to_owned(),
            name: path.rsplit('/').next().unwrap_or(path).to_owned(),
            depth,
            seq,
            started: Duration::ZERO,
            elapsed: Duration::from_micros(elapsed_us),
            states: 0,
            transitions: 0,
            cache_hits: 0,
            guard_charges: 0,
        }
    }

    #[test]
    fn tracer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
    }

    #[test]
    fn events_merge_by_track_preserving_per_track_order() {
        let t = Tracer::new();
        t.begin("span", "a");
        t.end("span", "a");
        let handle = {
            let t = std::sync::Arc::new(t);
            let t2 = t.clone();
            let h = std::thread::spawn(move || {
                set_thread_track(2);
                t2.begin("pool", "task");
                t2.instant("pool", "steal", Some(("victim", 1)));
                t2.end("pool", "task");
            });
            h.join().unwrap();
            t
        };
        let events = handle.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].track <= w[1].track));
        let track2: Vec<&str> = events
            .iter()
            .filter(|e| e.track == 2)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(track2, vec!["task", "steal", "task"]);
        assert_eq!(
            events.iter().find(|e| e.name == "steal").unwrap().arg,
            Some(("victim", 1))
        );
    }

    #[test]
    fn drain_new_advances_cursor_without_consuming_events() {
        let t = Tracer::new();
        t.begin("span", "a");
        t.end("span", "a");
        let first = t.drain_new();
        assert_eq!(first.len(), 2);
        assert!(t.drain_new().is_empty(), "cursor advanced");
        t.instant("kernel", "determinize-layer", Some(("width", 9)));
        let second = t.drain_new();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].name, "determinize-layer");
        assert_eq!(t.events().len(), 3, "full flush still sees everything");
    }

    #[test]
    fn absorb_events_shifts_timestamps_onto_this_clock() {
        let src = Tracer::new();
        src.begin("span", "job");
        src.end("span", "job");
        let dst = Tracer::new();
        dst.absorb_events(1_000_000, &src.events());
        let events = dst.events();
        assert_eq!(events.len(), 2);
        assert!(
            events.iter().all(|e| e.ts_us >= 1_000_000),
            "timestamps shifted by the offset: {events:?}"
        );
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[1].phase, TracePhase::End);
    }

    #[test]
    fn trace_event_round_trips_through_json() {
        for event in [
            TraceEvent {
                track: 3,
                phase: TracePhase::Instant,
                category: "opcache",
                name: "hit".to_owned(),
                ts_us: 42,
                arg: Some(("shard", 7)),
            },
            TraceEvent {
                track: 0,
                phase: TracePhase::Begin,
                category: "span",
                name: "determinize".to_owned(),
                ts_us: 0,
                arg: None,
            },
        ] {
            let text = rl_json::to_string(&event).unwrap();
            let back: TraceEvent = rl_json::from_str(&text).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn chrome_trace_has_metadata_and_balanced_events() {
        let t = Tracer::new();
        t.begin("span", "check");
        t.instant("pool", "spawn", Some(("queue", 2)));
        t.end("span", "check");
        let json = t.chrome_trace();
        let events = json.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 thread_name metadata + 3 events.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph"), Some(&Json::Str("M".to_owned())));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("name")),
            Some(&Json::Str("main".to_owned()))
        );
        let phases: Vec<&Json> = events[1..].iter().filter_map(|e| e.get("ph")).collect();
        assert_eq!(
            phases,
            vec![
                &Json::Str("B".to_owned()),
                &Json::Str("I".to_owned()),
                &Json::Str("E".to_owned())
            ]
        );
        assert_eq!(
            events[2].get("s"),
            Some(&Json::Str("t".to_owned())),
            "instants are thread-scoped"
        );
    }

    #[test]
    fn folded_stacks_compute_self_time_and_fold_paths() {
        let records = vec![
            span("check", 0, 0, 100),
            span("check/determinize", 1, 1, 60),
            span("check/determinize/inner", 2, 2, 10),
            span("check/minimize", 1, 3, 40),
        ];
        let folded = folded_stacks(&records);
        let lines: Vec<&str> = folded.lines().collect();
        // check self = 100 - (60 + 40) = 0 → omitted.
        assert_eq!(
            lines,
            vec![
                "check;determinize 50",
                "check;determinize;inner 10",
                "check;minimize 40"
            ]
        );
    }

    #[test]
    fn folded_stacks_aggregate_repeated_paths() {
        let records = vec![
            span("check", 0, 0, 100),
            span("check/step", 1, 1, 20),
            span("check/step", 1, 2, 30),
        ];
        let folded = folded_stacks(&records);
        assert_eq!(folded, "check 50\ncheck;step 50\n");
    }
}
