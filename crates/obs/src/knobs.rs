//! Environment-knob parsing with a warn-once policy.
//!
//! The runtime knobs (`RL_PROGRESS_MS`, `RL_SUBSCRIBER_RING`,
//! `RL_FILTER_MODK`, …) used to fall back to their defaults *silently* on a
//! parse failure, so a typo like `RL_PROGRESS_MS=1s` quietly sampled at the
//! default period. The helpers here separate the pure, unit-testable parse
//! (`parse_u64` / the callers' own list parsers) from the side effect: one
//! stderr warning per knob name per process, so a misconfigured daemon says
//! so exactly once instead of never or once per job.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Knob names that have already warned this process.
static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Prints `msg` to stderr the first time `name` warns in this process;
/// subsequent calls for the same knob are no-ops.
pub fn warn_once(name: &'static str, msg: &str) {
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.insert(name) {
        eprintln!("{msg}");
    }
}

/// Pure parse of a `u64` knob value: `Ok` on success, `Err` with the
/// warning text (mentioning the knob, the rejected value, and the default
/// kept) on failure. Side-effect free so tests can cover each knob without
/// racing on the process environment.
pub fn parse_u64(name: &str, raw: &str, default: u64) -> Result<u64, String> {
    raw.trim().parse::<u64>().map_err(|_| {
        format!("warning: {name}={raw:?} is not a valid integer; using default {default}")
    })
}

/// Reads a `u64` knob from the environment: unset yields `default`
/// silently; a set-but-unparsable value yields `default` with a one-time
/// stderr warning.
pub fn env_u64(name: &'static str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => match parse_u64(name, &raw, default) {
            Ok(v) => v,
            Err(msg) => {
                warn_once(name, &msg);
                default
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One unit test per knob, on the pure parser (the tests must not
    // mutate the process environment: the suite runs in parallel).

    #[test]
    fn progress_ms_knob_warns_on_garbage_and_keeps_default() {
        assert_eq!(parse_u64("RL_PROGRESS_MS", "250", 1_000), Ok(250));
        let err = parse_u64("RL_PROGRESS_MS", "1s", 1_000).unwrap_err();
        assert!(err.contains("RL_PROGRESS_MS"));
        assert!(err.contains("\"1s\""));
        assert!(err.contains("default 1000"));
    }

    #[test]
    fn subscriber_ring_knob_warns_on_garbage_and_keeps_default() {
        assert_eq!(parse_u64("RL_SUBSCRIBER_RING", "64", 1_024), Ok(64));
        let err = parse_u64("RL_SUBSCRIBER_RING", "-3", 1_024).unwrap_err();
        assert!(err.contains("RL_SUBSCRIBER_RING"));
        assert!(err.contains("default 1024"));
    }

    #[test]
    fn warn_once_fires_a_single_time_per_name() {
        // Only exercises the dedup bookkeeping (the message itself goes to
        // stderr); a second insert for the same name must report seen.
        warn_once("RL_TEST_KNOB_DEDUP", "warning: first");
        let before = WARNED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        warn_once("RL_TEST_KNOB_DEDUP", "warning: second");
        let after = WARNED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert_eq!(before, after);
    }
}
