//! The persistent metrics journal: rotating JSONL snapshots that survive
//! daemon restarts.
//!
//! `rlcheck serve --metrics-dir <dir>` appends one *sample* line per
//! progress interval (sharing `RL_PROGRESS_MS` with the telemetry sampler):
//! a wall-clock timestamp, the daemon's uptime, the live counters, and a
//! cumulative [`HistogramSnapshot`] per histogram family. Samples land in
//! rotating `metrics-<seq>.jsonl` segments — every daemon start opens a
//! fresh segment, and a segment also rotates once it crosses the size
//! budget — so the directory is an append-only time series across restarts.
//!
//! Reading is tolerant by construction: a mid-record-truncated line (the
//! daemon died mid-write), a zero-length rotated segment, or an unknown
//! event kind is skipped and tallied, never fatal. `rlcheck report --dir`
//! renders the surviving series with percentile columns, and `rlcheck slo`
//! gates on the merged histograms (see [`crate::slo`]).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use rl_json::{FromJson, Json, ObjBuilder, ToJson};

use crate::format_duration;
use crate::hist::HistogramSnapshot;

/// Default size budget per segment before rotation.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

/// File-name prefix of journal segments.
const SEGMENT_PREFIX: &str = "metrics-";
/// File-name suffix of journal segments.
const SEGMENT_SUFFIX: &str = ".jsonl";

/// One interval snapshot, as written by the daemon and read back by
/// `rlcheck report --dir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSample {
    /// Wall-clock milliseconds since the Unix epoch at sample time.
    pub ts_ms: u64,
    /// Milliseconds since the writing daemon started — resets on restart.
    pub uptime_ms: u64,
    /// Identifies the writing daemon run (the daemon stamps its start time
    /// here). A change between consecutive samples marks a restart; 0 in
    /// samples from writers that predate the field, for which an
    /// `uptime_ms` drop is the fallback boundary signal.
    pub run_id: u64,
    /// Live counter totals at sample time.
    pub counters: Vec<(String, u64)>,
    /// Cumulative (since daemon start) histogram snapshots by family.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl ToJson for JournalSample {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(name, v)| (name.clone(), Json::Int(*v as i64)))
                .collect(),
        );
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|(name, snap)| (name.clone(), snap.to_json()))
                .collect(),
        );
        ObjBuilder::new()
            .field("event", "sample")
            .field("ts_ms", self.ts_ms)
            .field("uptime_ms", self.uptime_ms)
            .field("run_id", self.run_id)
            .field("counters", counters)
            .field("hists", hists)
            .build()
    }
}

impl FromJson for JournalSample {
    fn from_json(value: &Json) -> Result<JournalSample, rl_json::JsonError> {
        let event = String::from_json(value.field("event")?)?;
        if event != "sample" {
            return Err(rl_json::JsonError::custom(format!(
                "expected a sample event, got {event:?}"
            )));
        }
        let mut counters = Vec::new();
        if let Json::Obj(fields) = value.field("counters")? {
            for (name, v) in fields {
                counters.push((name.clone(), u64::from_json(v)?));
            }
        }
        let mut hists = Vec::new();
        if let Json::Obj(fields) = value.field("hists")? {
            for (name, v) in fields {
                hists.push((name.clone(), HistogramSnapshot::from_json(v)?));
            }
        }
        Ok(JournalSample {
            ts_ms: u64::from_json(value.field("ts_ms")?)?,
            uptime_ms: u64::from_json(value.field("uptime_ms")?)?,
            run_id: match value.get("run_id") {
                Some(v) => u64::from_json(v)?,
                None => 0,
            },
            counters,
            hists,
        })
    }
}

/// Appends samples to rotating segments under one directory.
///
/// Opening always starts a *new* segment (numbered after the highest
/// existing one), so each daemon run is separable in the directory listing
/// and a crashed run's possibly-truncated tail is never appended to.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    file: File,
    next_seq: u64,
    written: u64,
    max_segment_bytes: u64,
}

fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:06}{SEGMENT_SUFFIX}"))
}

impl JournalWriter {
    /// Creates `dir` if needed and opens a fresh segment after any existing
    /// ones. `max_segment_bytes` of 0 means [`DEFAULT_SEGMENT_BYTES`].
    pub fn open(dir: &Path, max_segment_bytes: u64) -> io::Result<JournalWriter> {
        fs::create_dir_all(dir)?;
        let mut seq = 0u64;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(n) = entry.file_name().to_str().and_then(segment_seq) {
                seq = seq.max(n + 1);
            }
        }
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(dir, seq))?;
        Ok(JournalWriter {
            dir: dir.to_owned(),
            file,
            next_seq: seq + 1,
            written: 0,
            max_segment_bytes: if max_segment_bytes == 0 {
                DEFAULT_SEGMENT_BYTES
            } else {
                max_segment_bytes
            },
        })
    }

    /// Appends one sample (one line) and flushes, rotating first when the
    /// current segment has crossed the size budget.
    pub fn append(&mut self, sample: &JournalSample) -> io::Result<()> {
        if self.written >= self.max_segment_bytes {
            self.file = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(segment_path(&self.dir, self.next_seq))?;
            self.next_seq += 1;
            self.written = 0;
        }
        let line = rl_json::to_string(sample)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.written += line.len() as u64 + 1;
        Ok(())
    }
}

/// A parsed journal directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// All surviving samples, in segment order then line order.
    pub samples: Vec<JournalSample>,
    /// Segments found (zero-length ones included).
    pub segments: usize,
    /// Lines that failed to parse (truncated tails, foreign garbage).
    pub skipped_lines: usize,
}

/// True when `next` was written by a different daemon run than `prev`.
/// The `run_id` stamp is authoritative when present; an `uptime_ms` drop
/// is the fallback for pre-`run_id` writers (where two equal-length runs
/// are genuinely indistinguishable).
fn run_boundary(prev: &JournalSample, next: &JournalSample) -> bool {
    next.run_id != prev.run_id || next.uptime_ms < prev.uptime_ms
}

impl Journal {
    /// The histogram families merged across every run in the journal.
    ///
    /// Samples are cumulative *within* a daemon run and reset at restart;
    /// the last sample of each run is merged (run boundary: the `run_id`
    /// stamp changed, or `uptime_ms` dropped for pre-`run_id` writers).
    /// This is what `rlcheck slo` gates on.
    pub fn merged_hists(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut merged: Vec<(String, HistogramSnapshot)> = Vec::new();
        let mut fold = |sample: &JournalSample| {
            for (name, snap) in &sample.hists {
                match merged.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(snap),
                    None => merged.push((name.clone(), snap.clone())),
                }
            }
        };
        let mut prev: Option<&JournalSample> = None;
        for sample in &self.samples {
            if let Some(p) = prev {
                if run_boundary(p, sample) {
                    fold(p); // p ended a run; this sample starts a new one
                }
            }
            prev = Some(sample);
        }
        if let Some(p) = prev {
            fold(p);
        }
        merged
    }

    /// Number of daemon runs the samples span (boundaries + 1).
    pub fn runs(&self) -> usize {
        if self.samples.is_empty() {
            return 0;
        }
        1 + self
            .samples
            .windows(2)
            .filter(|w| run_boundary(&w[0], &w[1]))
            .count()
    }
}

/// Reads every `metrics-*.jsonl` segment under `dir`, in sequence order,
/// skipping (and counting) unparsable lines. Zero-length segments are fine.
/// Only a missing/unreadable directory is an error.
pub fn read_journal(dir: &Path) -> io::Result<Journal> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(segment_seq) {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    let mut journal = Journal {
        segments: segments.len(),
        ..Journal::default()
    };
    for (_, path) in segments {
        // A segment that vanished or turned unreadable mid-scan degrades to
        // skipped content rather than failing the whole render.
        let Ok(text) = fs::read_to_string(&path) else {
            journal.skipped_lines += 1;
            continue;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match rl_json::from_str::<JournalSample>(line) {
                Ok(sample) => journal.samples.push(sample),
                Err(_) => journal.skipped_lines += 1,
            }
        }
    }
    Ok(journal)
}

/// Renders the journal's time series: a header, the merged per-family
/// percentile summary, and per-family rows (one per sample) with
/// percentile columns. Timestamps are offsets from the first sample.
pub fn render_journal(journal: &Journal) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "metrics journal: {} segment{}, {} sample{} across {} run{}{}",
        journal.segments,
        if journal.segments == 1 { "" } else { "s" },
        journal.samples.len(),
        if journal.samples.len() == 1 { "" } else { "s" },
        journal.runs(),
        if journal.runs() == 1 { "" } else { "s" },
        if journal.skipped_lines > 0 {
            format!(" ({} unparsable line(s) skipped)", journal.skipped_lines)
        } else {
            String::new()
        },
    );
    let merged = journal.merged_hists();
    if merged.is_empty() {
        let _ = writeln!(out, "no histogram samples recorded");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "family (all runs)", "count", "p50", "p90", "p99", "max"
    );
    for (name, snap) in &merged {
        let _ = writeln!(
            out,
            "{name:<36} {:>8} {:>10} {:>10} {:>10} {:>10}",
            snap.count,
            snap.p50(),
            snap.p90(),
            snap.p99(),
            snap.max,
        );
    }
    let t0 = journal.samples.first().map_or(0, |s| s.ts_ms);
    for (name, _) in &merged {
        let _ = writeln!(out, "\ntime series: {name}");
        let _ = writeln!(
            out,
            "  {:>10} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "t", "uptime", "count", "p50", "p90", "p99", "max"
        );
        for sample in &journal.samples {
            let Some((_, snap)) = sample.hists.iter().find(|(n, _)| n == name) else {
                continue;
            };
            let _ = writeln!(
                out,
                "  {:>10} {:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
                format!(
                    "+{}",
                    format_duration(std::time::Duration::from_millis(
                        sample.ts_ms.saturating_sub(t0)
                    ))
                ),
                format_duration(std::time::Duration::from_millis(sample.uptime_ms)),
                snap.count,
                snap.p50(),
                snap.p90(),
                snap.p99(),
                snap.max,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample(ts_ms: u64, uptime_ms: u64, values: &[u64]) -> JournalSample {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        JournalSample {
            ts_ms,
            uptime_ms,
            run_id: 0,
            counters: vec![("serve/jobs".to_owned(), values.len() as u64)],
            hists: vec![("serve/queue_wait_us".to_owned(), h.snapshot())],
        }
    }

    // Two back-to-back daemon runs of near-identical length never show an
    // uptime drop — the `run_id` stamp is what separates them.
    #[test]
    fn equal_length_runs_split_on_run_id() {
        let mut a = sample(1_000, 21, &[5]);
        let mut b = sample(2_000, 22, &[50]);
        a.run_id = 1_000;
        b.run_id = 2_000;
        let journal = Journal {
            samples: vec![a, b],
            segments: 2,
            skipped_lines: 0,
        };
        assert_eq!(journal.runs(), 2);
        let merged = journal.merged_hists();
        assert_eq!(merged[0].1.count, 2, "both runs' last samples merged");
    }

    #[test]
    fn writer_rotates_and_reader_orders_segments() {
        let dir = std::env::temp_dir().join(format!("rl-journal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            // Tiny budget: every append after the first rotates.
            let mut w = JournalWriter::open(&dir, 8).unwrap();
            w.append(&sample(1_000, 10, &[5])).unwrap();
            w.append(&sample(2_000, 20, &[5, 50])).unwrap();
        }
        {
            // A "restarted daemon": new writer, new segment, uptime resets.
            let mut w = JournalWriter::open(&dir, 0).unwrap();
            w.append(&sample(3_000, 7, &[500])).unwrap();
        }
        let journal = read_journal(&dir).unwrap();
        assert_eq!(journal.segments, 3);
        assert_eq!(journal.samples.len(), 3);
        assert_eq!(journal.skipped_lines, 0);
        assert_eq!(journal.runs(), 2);
        let uptimes: Vec<u64> = journal.samples.iter().map(|s| s.uptime_ms).collect();
        assert_eq!(uptimes, vec![10, 20, 7]);
        // Merged: last sample of run 1 (2 samples) + last of run 2 (1).
        let merged = journal.merged_hists();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].1.count, 3);
        assert_eq!(merged[0].1.max, 500);
        let rendered = render_journal(&journal);
        assert!(rendered.contains("3 segments, 3 samples across 2 runs"));
        assert!(rendered.contains("serve/queue_wait_us"));
        let _ = fs::remove_dir_all(&dir);
    }

    // Satellite: a zero-length rotated segment and a mid-record-truncated
    // tail must degrade gracefully, never panic.
    #[test]
    fn truncated_tail_and_zero_length_segment_degrade_gracefully() {
        let dir = std::env::temp_dir().join(format!("rl-journal-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let full = rl_json::to_string(&sample(1_000, 10, &[5, 50, 500])).unwrap();
        // Segment 0: one good line, then a tail cut mid-record.
        fs::write(
            dir.join("metrics-000000.jsonl"),
            format!("{full}\n{}", &full[..full.len() / 2]),
        )
        .unwrap();
        // Segment 1: zero-length (rotation happened, daemon died first).
        fs::write(dir.join("metrics-000001.jsonl"), "").unwrap();
        // A foreign file must be ignored entirely.
        fs::write(dir.join("notes.txt"), "not a segment").unwrap();
        let journal = read_journal(&dir).unwrap();
        assert_eq!(journal.segments, 2);
        assert_eq!(journal.samples.len(), 1);
        assert_eq!(journal.skipped_lines, 1);
        let rendered = render_journal(&journal);
        assert!(rendered.contains("1 unparsable line(s) skipped"));
        assert!(rendered.contains("serve/queue_wait_us"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sample_round_trips_through_json() {
        let s = sample(123, 45, &[1, 2, 3]);
        let text = rl_json::to_string(&s).unwrap();
        let back: JournalSample = rl_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_journal_renders_without_panicking() {
        let dir = std::env::temp_dir().join(format!("rl-journal-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal = read_journal(&dir).unwrap();
        assert_eq!(journal.runs(), 0);
        assert!(render_journal(&journal).contains("no histogram samples"));
        assert!(read_journal(Path::new("/nonexistent-journal-dir")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
