//! Behavior abstraction via alphabetic language homomorphisms.
//!
//! Implements Section 6 of Nitsche & Wolper (PODC '97):
//!
//! * [`Homomorphism`] — abstracting homomorphisms `h : Σ → Σ' ∪ {ε}`
//!   (Definition 6.1), applied to symbols, words, lasso ω-words, automata,
//! * [`image_nfa`] / [`abstract_behavior`] — the abstract behavior
//!   `lim(h(L))` of a system (Definition 6.2),
//! * [`inverse_image_nfa`] / [`inverse_image_buchi`] — `h⁻¹`,
//! * [`check_simplicity`] — decides whether `h` is *simple* for a
//!   prefix-closed regular language (Definition 6.3, after Ochsenschläger),
//!   with a concrete counterexample word when it is not,
//! * [`has_maximal_words`] / [`extend_with_hash`] — the maximal-word side
//!   condition of Theorems 8.2/8.3 and the `{#}*` fix of Section 8,
//! * [`compositional_abstract_behavior`] — abstract components first, then
//!   compose (the partial-state-space-exploration shortcut of the paper's
//!   conclusion, after Ochsenschläger \[22\]).
//!
//! # Example — the paper's Section 2 story
//!
//! ```
//! use rl_abstraction::{abstract_behavior, check_simplicity, Homomorphism};
//! use rl_petri::examples::{server_behaviors, server_err_behaviors};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let keep = ["request", "result", "reject"];
//!
//! // Both the correct system (Fig. 2) and the erroneous one (Fig. 3)
//! // abstract to the same two-state system (Fig. 4) …
//! let good = server_behaviors();
//! let bad = server_err_behaviors();
//! let h_good = Homomorphism::hiding(good.alphabet(), keep)?;
//! let h_bad = Homomorphism::hiding(bad.alphabet(), keep)?;
//! let abs_good = abstract_behavior(&h_good, &good);
//! let abs_bad = abstract_behavior(&h_bad, &bad);
//! assert_eq!(abs_good.state_count(), 2);
//! assert_eq!(abs_bad.state_count(), 2);
//!
//! // … but only the correct system's homomorphism is simple, which is what
//! // licenses transferring relative liveness down from the abstraction.
//! assert!(check_simplicity(&h_good, &good.to_nfa())?.simple);
//! assert!(!check_simplicity(&h_bad, &bad.to_nfa())?.simple);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compositional;
mod hom;
mod image;
mod maximal;
mod simplicity;

pub use compositional::compositional_abstract_behavior;
pub use hom::{AbstractionError, Homomorphism};
pub use image::{
    abstract_behavior, abstract_behavior_with, image_nfa, inverse_image_buchi, inverse_image_nfa,
};
pub use maximal::{extend_with_hash, has_maximal_words, has_maximal_words_with, HASH_ACTION};
pub use simplicity::{check_simplicity, check_simplicity_with, SimplicityReport};
