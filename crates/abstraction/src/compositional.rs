//! Compositional construction of abstract behaviors.
//!
//! The paper's conclusion stresses that, in practice, one wants "a
//! representation of the abstract behavior of a system *without* an
//! exhaustive construction of the finite-state system generating the
//! original behavior" (Ochsenschläger's compositional technique \[22\]).
//!
//! For systems given as a synchronous composition `C₁ ∥ … ∥ C_k` this module
//! provides exactly that shortcut: abstract every component first, then
//! compose the (small) abstractions:
//!
//! ```text
//! h(L(C₁ ∥ … ∥ C_k)) = h₁(L(C₁)) ∥ … ∥ h_k(L(C_k))
//! ```
//!
//! which is sound whenever **no hidden action is shared** between two
//! components — hiding distributes over composition when the hidden actions
//! are local. The precondition is checked and violations are reported with
//! the offending action name. The monolithic `8^k`-state intermediate of the
//! paper's server-farm style examples never gets built: only the `2^k`-ish
//! abstract composite.

use rl_automata::TransitionSystem;

use crate::hom::{AbstractionError, Homomorphism};
use crate::image::abstract_behavior;

/// Computes the abstract behavior generator of `C₁ ∥ … ∥ C_k` under `h`
/// without constructing the concrete composite, by abstracting each
/// component and composing the abstractions.
///
/// `h`'s source alphabet must cover every component action (by name); its
/// hidden actions must not be shared between components.
///
/// # Errors
///
/// * [`AbstractionError::SharedHiddenAction`] when a hidden action occurs in
///   two components (hiding would not distribute over the synchronization),
/// * [`AbstractionError::Automata`] when a component action is missing from
///   `h`'s source alphabet, or `components` is empty.
///
/// # Example
///
/// ```
/// use rl_abstraction::{abstract_behavior, compositional_abstract_behavior, Homomorphism};
/// use rl_automata::{dfa_equivalent, Alphabet, TransitionSystem};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two independent one-bit toggles with hidden local resets.
/// let mk = |i: usize| -> TransitionSystem {
///     let ab = Alphabet::new([format!("set{i}"), format!("reset{i}")]).unwrap();
///     let set = ab.symbol(&format!("set{i}")).unwrap();
///     let reset = ab.symbol(&format!("reset{i}")).unwrap();
///     let mut ts = TransitionSystem::new(ab);
///     let s0 = ts.add_state();
///     let s1 = ts.add_state();
///     ts.set_initial(s0);
///     ts.add_transition(s0, set, s1);
///     ts.add_transition(s1, reset, s0);
///     ts
/// };
/// let c0 = mk(0);
/// let c1 = mk(1);
/// let composite = c0.compose(&c1)?;
/// let h = Homomorphism::hiding(composite.alphabet(), ["set0", "set1"])?;
///
/// let monolithic = abstract_behavior(&h, &composite);
/// let compositional = compositional_abstract_behavior(&[c0, c1], &h)?;
/// assert!(dfa_equivalent(
///     &monolithic.to_nfa().determinize(),
///     &compositional.to_nfa().determinize()
/// ));
/// # Ok(())
/// # }
/// ```
pub fn compositional_abstract_behavior(
    components: &[TransitionSystem],
    h: &Homomorphism,
) -> Result<TransitionSystem, AbstractionError> {
    if components.is_empty() {
        return Err(AbstractionError::Automata(
            rl_automata::AutomataError::EmptyAlphabet,
        ));
    }
    // Precondition: hidden actions are local to a single component.
    for (i, ci) in components.iter().enumerate() {
        for (_, name) in ci.alphabet().iter() {
            let sym = h.source().require(name)?;
            if !h.hides(sym) {
                continue;
            }
            for cj in components.iter().skip(i + 1) {
                if cj.alphabet().symbol(name).is_some() {
                    return Err(AbstractionError::SharedHiddenAction(name.to_owned()));
                }
            }
        }
    }
    // Abstract each component under the restriction of h to its alphabet.
    let mut abstracted: Vec<TransitionSystem> = Vec::with_capacity(components.len());
    for ci in components {
        let visible: Vec<String> = ci
            .alphabet()
            .iter()
            .filter(|(_, name)| {
                let sym = h.source().symbol(name).expect("checked above");
                !h.hides(sym)
            })
            .map(|(_, name)| name.to_owned())
            .collect();
        if visible.is_empty() {
            return Err(AbstractionError::Automata(
                rl_automata::AutomataError::EmptyAlphabet,
            ));
        }
        let hi = Homomorphism::hiding(ci.alphabet(), visible.iter().map(String::as_str))?;
        abstracted.push(abstract_behavior(&hi, ci));
    }
    // Compose the abstractions.
    let mut composite = abstracted[0].clone();
    for part in &abstracted[1..] {
        composite = composite.compose(part)?;
    }
    // Re-align the alphabet to h's target order (composition builds the
    // union in discovery order) and re-minimize.
    let realign = Homomorphism::new(composite.alphabet(), h.target(), |n| Some(n.to_owned()))?;
    Ok(abstract_behavior(&realign, &composite))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::abstract_behavior;
    use rl_automata::{dfa_equivalent, Alphabet};

    /// A producer/consumer pair with a hidden internal step each and a
    /// shared visible handoff.
    fn producer() -> TransitionSystem {
        let ab = Alphabet::new(["craft", "handoff"]).unwrap();
        let craft = ab.symbol("craft").unwrap();
        let handoff = ab.symbol("handoff").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, craft, s1);
        ts.add_transition(s1, handoff, s0);
        ts
    }

    fn consumer() -> TransitionSystem {
        let ab = Alphabet::new(["handoff", "digest", "done"]).unwrap();
        let handoff = ab.symbol("handoff").unwrap();
        let digest = ab.symbol("digest").unwrap();
        let done = ab.symbol("done").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        let s2 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, handoff, s1);
        ts.add_transition(s1, digest, s2);
        ts.add_transition(s2, done, s0);
        ts
    }

    #[test]
    fn matches_monolithic_construction() {
        let p = producer();
        let c = consumer();
        let composite = p.compose(&c).unwrap();
        // Hide the internal steps craft and digest; keep handoff and done.
        let h = Homomorphism::hiding(composite.alphabet(), ["handoff", "done"]).unwrap();
        let mono = abstract_behavior(&h, &composite);
        let comp = compositional_abstract_behavior(&[p, c], &h).unwrap();
        assert_eq!(mono.alphabet(), comp.alphabet());
        assert!(dfa_equivalent(
            &mono.to_nfa().determinize(),
            &comp.to_nfa().determinize()
        ));
    }

    #[test]
    fn shared_hidden_action_rejected() {
        let p = producer();
        let c = consumer();
        let composite = p.compose(&c).unwrap();
        // Hiding the shared `handoff` breaks distributivity: refused.
        let h = Homomorphism::hiding(composite.alphabet(), ["craft", "digest", "done"]).unwrap();
        let err = compositional_abstract_behavior(&[p, c], &h).unwrap_err();
        assert_eq!(
            err,
            AbstractionError::SharedHiddenAction("handoff".to_owned())
        );
    }

    #[test]
    fn single_component_degenerates_to_plain_abstraction() {
        let p = producer();
        let h = Homomorphism::hiding(p.alphabet(), ["handoff"]).unwrap();
        let mono = abstract_behavior(&h, &p);
        let comp = compositional_abstract_behavior(&[p], &h).unwrap();
        assert!(dfa_equivalent(
            &mono.to_nfa().determinize(),
            &comp.to_nfa().determinize()
        ));
    }
}
