//! Images and inverse images of languages and behaviors under abstracting
//! homomorphisms (Definitions 6.1/6.2).

use rl_automata::{Guard, Nfa, TransitionSystem};
use rl_buchi::Buchi;

use crate::hom::{AbstractionError, Homomorphism};

/// The image `h(L(nfa))` as an NFA over the target alphabet.
///
/// Hidden transitions become ε-transitions, which are then eliminated.
///
/// # Example
///
/// ```
/// use rl_automata::{parse_word, Alphabet, Nfa};
/// use rl_abstraction::{image_nfa, Homomorphism};
///
/// # fn main() -> Result<(), rl_abstraction::AbstractionError> {
/// let sigma = Alphabet::new(["a", "tau"])?;
/// let a = sigma.symbol("a").unwrap();
/// let tau = sigma.symbol("tau").unwrap();
/// // L = { tau a, a }
/// let l = Nfa::from_parts(sigma.clone(), 3, [0], [2], [(0, tau, 1), (1, a, 2), (0, a, 2)])
///     .map_err(rl_abstraction::AbstractionError::from)?;
/// let h = Homomorphism::hiding(&sigma, ["a"])?;
/// let img = image_nfa(&h, &l);
/// let a_t = h.target().symbol("a").unwrap();
/// assert!(img.accepts(&[a_t]));
/// assert!(!img.accepts(&[]));
/// # Ok(())
/// # }
/// ```
pub fn image_nfa(h: &Homomorphism, nfa: &Nfa) -> Nfa {
    let transitions: Vec<_> = nfa
        .transitions()
        .map(|(p, a, q)| (p, h.apply(a), q))
        .collect();
    Nfa::from_epsilon_parts(
        h.target().clone(),
        nfa.state_count(),
        nfa.initial().iter().copied(),
        (0..nfa.state_count()).filter(|&q| nfa.is_accepting(q)),
        transitions,
    )
    .expect("indices preserved from a valid NFA")
}

/// The abstract behavior generator of Definition 6.2: the transition system
/// whose prefix-closed language is `h(L)` where `L` is `ts`'s language, and
/// whose ω-behavior is therefore `lim(h(L))`.
///
/// The result is the *minimized deterministic* presentation of `h(L)`
/// (restricted to live states), which is what the paper's Figure 4 shows.
pub fn abstract_behavior(h: &Homomorphism, ts: &TransitionSystem) -> TransitionSystem {
    abstract_behavior_with(h, ts, &Guard::unlimited()).expect("an unlimited guard never trips")
}

/// [`abstract_behavior`] under a resource [`Guard`]: the subset construction
/// of `h(L)` is charged against the guard's budget.
///
/// # Errors
///
/// Returns [`AbstractionError::Automata`] carrying a budget error when the
/// guard trips.
pub fn abstract_behavior_with(
    h: &Homomorphism,
    ts: &TransitionSystem,
    guard: &Guard,
) -> Result<TransitionSystem, AbstractionError> {
    let _span = guard.span("abstract_image");
    let img = image_nfa(h, &ts.to_nfa());
    let min = img.determinize_with(guard)?.min_dfa_with(guard);
    // `min` is complete; drop the rejecting sink (h(L) is prefix closed, so
    // live states are exactly the accepting ones).
    let keep: Vec<bool> = (0..min.state_count())
        .map(|q| min.is_accepting(q))
        .collect();
    let live = min.to_nfa().restrict(&keep);
    Ok(TransitionSystem::from_nfa(&live).expect("non-empty prefix-closed language"))
}

/// The inverse image `h⁻¹(L'(nfa))` over the source alphabet, for finite
/// words: accepts `w` iff `h(w) ∈ L'`.
pub fn inverse_image_nfa(h: &Homomorphism, nfa: &Nfa) -> Nfa {
    let mut out = Nfa::new(h.source().clone());
    for q in 0..nfa.state_count() {
        out.add_state(nfa.is_accepting(q));
    }
    for &q in nfa.initial() {
        out.set_initial(q);
    }
    for a in h.source().symbols() {
        match h.apply(a) {
            Some(b) => {
                for (p, sym, q) in nfa.transitions() {
                    if sym == b {
                        out.add_transition(p, a, q);
                    }
                }
            }
            None => {
                // Hidden actions do not advance the abstract word.
                for q in 0..nfa.state_count() {
                    out.add_transition(q, a, q);
                }
            }
        }
    }
    out
}

/// The inverse image `h⁻¹(L'_ω)` of an ω-language: accepts `x` iff `h(x)` is
/// **defined** and `h(x) ∈ L'_ω`.
///
/// Built as the product of the stay-on-hidden structure with the constraint
/// "infinitely many visible actions" (which is what makes `h(x)` defined).
///
/// # Errors
///
/// Propagates alphabet mismatches from the product construction.
pub fn inverse_image_buchi(h: &Homomorphism, b: &Buchi) -> Result<Buchi, AbstractionError> {
    // Structure part: follow visible letters, self-loop on hidden ones.
    let mut st = Buchi::new(h.source().clone());
    for q in 0..b.state_count() {
        st.add_state(b.is_accepting(q));
    }
    for &q in b.initial() {
        st.set_initial(q);
    }
    for a in h.source().symbols() {
        match h.apply(a) {
            Some(t) => {
                for (p, sym, q) in b.transitions() {
                    if sym == t {
                        st.add_transition(p, a, q);
                    }
                }
            }
            None => {
                for q in 0..b.state_count() {
                    st.add_transition(q, a, q);
                }
            }
        }
    }
    // Visibility part: infinitely many visible letters.
    let mut vis = Buchi::new(h.source().clone());
    let wait = vis.add_state(false);
    let seen = vis.add_state(true);
    vis.set_initial(wait);
    for a in h.source().symbols() {
        if h.hides(a) {
            vis.add_transition(wait, a, wait);
            vis.add_transition(seen, a, wait);
        } else {
            vis.add_transition(wait, a, seen);
            vis.add_transition(seen, a, seen);
        }
    }
    Ok(st.intersection(&vis)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_buchi::{behaviors_of_ts, UpWord};

    fn setup() -> (Alphabet, Homomorphism) {
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
        (sigma, h)
    }

    #[test]
    fn image_of_ts_language() {
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        // System: (tau a)* — image should be a*.
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, tau, s1);
        ts.add_transition(s1, a, s0);
        let abs = abstract_behavior(&h, &ts);
        assert_eq!(abs.state_count(), 1);
        let a_t = h.target().symbol("a").unwrap();
        assert!(abs.admits(&[a_t, a_t, a_t]));
        let b_t = h.target().symbol("b").unwrap();
        assert!(!abs.admits(&[b_t]));
    }

    #[test]
    fn inverse_image_finite_words() {
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        // L' = { ab } over the target.
        let ta = h.target().symbol("a").unwrap();
        let tb = h.target().symbol("b").unwrap();
        let lp =
            Nfa::from_parts(h.target().clone(), 3, [0], [2], [(0, ta, 1), (1, tb, 2)]).unwrap();
        let inv = inverse_image_nfa(&h, &lp);
        assert!(inv.accepts(&[a, b]));
        assert!(inv.accepts(&[tau, a, tau, tau, b, tau]));
        assert!(!inv.accepts(&[a]));
        assert!(!inv.accepts(&[b, a]));
    }

    #[test]
    fn inverse_image_omega_requires_defined_h() {
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        // L' = a^ω over the target.
        let ta = h.target().symbol("a").unwrap();
        let lp = Buchi::from_parts(h.target().clone(), 1, [0], [0], [(0, ta, 0)]).unwrap();
        let inv = inverse_image_buchi(&h, &lp).unwrap();
        assert!(inv.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(inv.accepts_upword(&UpWord::periodic(vec![tau, a]).unwrap()));
        // h(x) undefined: not in the inverse image even though the abstract
        // prefix matches.
        assert!(!inv.accepts_upword(&UpWord::new(vec![a, a], vec![tau]).unwrap()));
    }

    #[test]
    fn image_behaviors_commute_on_example() {
        // Check lim(h(L)) membership against image of concrete lassos
        // (Lemma 8.1 in miniature).
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, tau, s1);
        ts.add_transition(s1, a, s0);
        ts.add_transition(s1, tau, s1);
        let abs = abstract_behavior(&h, &ts);
        let abs_beh = behaviors_of_ts(&abs);
        let conc = UpWord::periodic(vec![tau, a]).unwrap();
        let img = h.apply_upword(&conc).unwrap();
        assert!(behaviors_of_ts(&ts).accepts_upword(&conc));
        assert!(abs_beh.accepts_upword(&img));
    }
}
