//! Maximal words and the `#`-extension of Section 8.
//!
//! Theorems 8.2/8.3 require that `h(L)` contains no *maximal* words (words
//! that are not a proper prefix of another word of the language): a maximal
//! word is an abstract behavior that stops, and `lim(h(L))` would silently
//! drop it. The paper's remedy (after [Nitsche–Ochsenschläger 96]) is to
//! extend maximal words by `{#}*`, keeping them visible in the limit.

use rl_automata::{Alphabet, AutomataError, Guard, Nfa};

/// The terminator action used by [`extend_with_hash`].
pub const HASH_ACTION: &str = "#";

/// Whether the (prefix-closed) language contains maximal words.
///
/// Decided on the trimmed DFA: a maximal word is one reaching an accepting
/// state with no live outgoing transition.
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Nfa};
/// use rl_abstraction::has_maximal_words;
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// // L = {ε, a}: "a" is maximal.
/// let l = Nfa::from_parts(ab.clone(), 2, [0], [0, 1], [(0, a, 1)])?;
/// assert!(has_maximal_words(&l));
/// // L = a*: no maximal words.
/// let astar = Nfa::from_parts(ab, 1, [0], [0], [(0, a, 0)])?;
/// assert!(!has_maximal_words(&astar));
/// # Ok(())
/// # }
/// ```
pub fn has_maximal_words(language: &Nfa) -> bool {
    has_maximal_words_with(language, &Guard::unlimited()).expect("an unlimited guard never trips")
}

/// [`has_maximal_words`] under a resource [`Guard`] (the subset construction
/// on the language can blow up even over small — in particular unary —
/// alphabets).
///
/// # Errors
///
/// Returns a budget error when the guard trips during determinization.
pub fn has_maximal_words_with(language: &Nfa, guard: &Guard) -> Result<bool, AutomataError> {
    let _span = guard.span("maximal_words");
    let d = language.determinize_with(guard)?;
    let nfa = d.to_nfa();
    let reach = nfa.reachable();
    let coreach = nfa.coreachable();
    for q in 0..d.state_count() {
        if !(reach[q] && coreach[q] && d.is_accepting(q)) {
            continue;
        }
        // Is there a live outgoing transition into a state from which an
        // accepting state remains reachable?
        let extendable = d
            .alphabet()
            .symbols()
            .any(|a| d.next(q, a).is_some_and(|t| reach[t] && coreach[t]));
        if !extendable {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The `{#}*`-extension: adds a fresh terminator action `#` and lets every
/// maximal word continue with `#^*`, making `lim` preserve it.
///
/// The result is over the alphabet `Σ' ∪ {#}` and has no maximal words.
///
/// # Errors
///
/// Returns [`AutomataError::DuplicateSymbol`] when the alphabet already
/// contains `#`.
pub fn extend_with_hash(language: &Nfa) -> Result<Nfa, AutomataError> {
    let mut names = language.alphabet().names();
    if names.iter().any(|n| n == HASH_ACTION) {
        return Err(AutomataError::DuplicateSymbol(HASH_ACTION.to_owned()));
    }
    names.push(HASH_ACTION.to_owned());
    let alphabet = Alphabet::new(names)?;
    let hash = alphabet.symbol(HASH_ACTION).expect("just added");

    let d = language.determinize();
    let base = d.to_nfa();
    let reach = base.reachable();
    let coreach = base.coreachable();

    let mut out = Nfa::new(alphabet);
    for q in 0..d.state_count() {
        out.add_state(d.is_accepting(q));
    }
    for &q in base.initial() {
        out.set_initial(q);
    }
    for (p, a, q) in base.transitions() {
        // Translate symbols by name into the extended alphabet (same order).
        out.add_transition(p, rl_automata::Symbol::from_index(a.index()), q);
    }
    for q in 0..d.state_count() {
        if !(reach[q] && coreach[q] && d.is_accepting(q)) {
            continue;
        }
        let extendable = d
            .alphabet()
            .symbols()
            .any(|a| d.next(q, a).is_some_and(|t| reach[t] && coreach[t]));
        if !extendable {
            out.add_transition(q, hash, q);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_removes_maximal_words() {
        let ab = Alphabet::new(["a"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let l = Nfa::from_parts(ab, 2, [0], [0, 1], [(0, a, 1)]).unwrap();
        assert!(has_maximal_words(&l));
        let ext = extend_with_hash(&l).unwrap();
        assert!(!has_maximal_words(&ext));
        let hash = ext.alphabet().symbol(HASH_ACTION).unwrap();
        let a2 = ext.alphabet().symbol("a").unwrap();
        assert!(ext.accepts(&[a2, hash, hash]));
        assert!(!ext.accepts(&[hash]));
    }

    #[test]
    fn extension_rejects_existing_hash() {
        let ab = Alphabet::new(["#"]).unwrap();
        let l = Nfa::new(ab);
        assert!(extend_with_hash(&l).is_err());
    }

    #[test]
    fn finite_branches_of_infinite_language() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        // L = a* + a*b: the b-words are maximal.
        let l = Nfa::from_parts(ab, 2, [0], [0, 1], [(0, a, 0), (0, b, 1)]).unwrap();
        assert!(has_maximal_words(&l));
    }
}
