//! Alphabetic abstracting homomorphisms (Definition 6.1).

use std::error::Error;
use std::fmt;

use rl_automata::{Alphabet, AutomataError, Symbol, Word};
use rl_buchi::UpWord;

/// Errors from abstraction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AbstractionError {
    /// Underlying automata error (alphabet mismatch, unknown symbol, …).
    Automata(AutomataError),
    /// The operation requires a prefix-closed language and the argument is
    /// not prefix closed.
    NotPrefixClosed,
    /// Compositional abstraction requires hidden actions to be local to one
    /// component; this shared action is hidden.
    SharedHiddenAction(String),
}

impl fmt::Display for AbstractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractionError::Automata(e) => write!(f, "{e}"),
            AbstractionError::NotPrefixClosed => {
                write!(f, "operation requires a prefix-closed language")
            }
            AbstractionError::SharedHiddenAction(name) => write!(
                f,
                "hidden action {name:?} is shared between components; compositional abstraction requires hidden actions to be local"
            ),
        }
    }
}

impl Error for AbstractionError {}

impl From<AutomataError> for AbstractionError {
    fn from(e: AutomataError) -> AbstractionError {
        AbstractionError::Automata(e)
    }
}

/// An abstracting homomorphism `h : Σ → Σ' ∪ {ε}`, extended to finite and
/// infinite words as in Definition 6.1.
///
/// `h` either renames a source action to a target action or hides it
/// (maps it to the empty word `ε`).
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_abstraction::Homomorphism;
///
/// # fn main() -> Result<(), rl_abstraction::AbstractionError> {
/// let sigma = Alphabet::new(["request", "result", "reject", "lock", "free"])?;
/// // Keep only the client-visible actions (the paper's Section 2).
/// let h = Homomorphism::hiding(&sigma, ["request", "result", "reject"])?;
/// let lock = sigma.symbol("lock").unwrap();
/// let request = sigma.symbol("request").unwrap();
/// assert_eq!(h.apply(lock), None);            // hidden
/// assert!(h.apply(request).is_some());        // kept
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Homomorphism {
    source: Alphabet,
    target: Alphabet,
    map: Vec<Option<Symbol>>,
}

impl Homomorphism {
    /// Builds a homomorphism from an explicit mapping: `assign` returns the
    /// target symbol *name* for each source symbol, or `None` to hide it.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownSymbol`] (wrapped) when an assigned
    /// name is not in `target`.
    pub fn new(
        source: &Alphabet,
        target: &Alphabet,
        assign: impl Fn(&str) -> Option<String>,
    ) -> Result<Homomorphism, AbstractionError> {
        let mut map = Vec::with_capacity(source.len());
        for (_, name) in source.iter() {
            match assign(name) {
                Some(tname) => map.push(Some(target.require(&tname)?)),
                None => map.push(None),
            }
        }
        Ok(Homomorphism {
            source: source.clone(),
            target: target.clone(),
            map,
        })
    }

    /// The common case: keep the listed actions (with their names), hide all
    /// others. The target alphabet is built from `visible` in order.
    ///
    /// # Errors
    ///
    /// Returns an error when `visible` contains duplicates or names not in
    /// `source`.
    pub fn hiding<'a>(
        source: &Alphabet,
        visible: impl IntoIterator<Item = &'a str>,
    ) -> Result<Homomorphism, AbstractionError> {
        let names: Vec<&str> = visible.into_iter().collect();
        for name in &names {
            source.require(name)?;
        }
        let target = Alphabet::new(names.iter().map(|s| s.to_string()))?;
        Homomorphism::new(source, &target, |n| {
            if names.contains(&n) {
                Some(n.to_owned())
            } else {
                None
            }
        })
    }

    /// The source alphabet `Σ`.
    pub fn source(&self) -> &Alphabet {
        &self.source
    }

    /// The target alphabet `Σ'`.
    pub fn target(&self) -> &Alphabet {
        &self.target
    }

    /// Applies `h` to one symbol; `None` means hidden (`ε`).
    pub fn apply(&self, a: Symbol) -> Option<Symbol> {
        self.map[a.index()]
    }

    /// Whether `a` is hidden.
    pub fn hides(&self, a: Symbol) -> bool {
        self.map[a.index()].is_none()
    }

    /// Applies `h` to a finite word.
    pub fn apply_word(&self, w: &[Symbol]) -> Word {
        w.iter().filter_map(|&a| self.apply(a)).collect()
    }

    /// Applies `h` to an ultimately periodic ω-word.
    ///
    /// Per Definition 6.1, `h(x)` is undefined when the image has no ω-limit
    /// — for a lasso word, exactly when the period consists of hidden
    /// letters only. In that case `None` is returned.
    pub fn apply_upword(&self, x: &UpWord) -> Option<UpWord> {
        let period = self.apply_word(x.period());
        if period.is_empty() {
            return None;
        }
        let prefix = self.apply_word(x.prefix());
        Some(UpWord::new(prefix, period).expect("non-empty period"))
    }

    /// The set of source symbols mapped to each target symbol (preimages of
    /// visible actions); index by target symbol index.
    pub fn preimages(&self) -> Vec<Vec<Symbol>> {
        let mut out = vec![Vec::new(); self.target.len()];
        for (i, m) in self.map.iter().enumerate() {
            if let Some(t) = m {
                out[t.index()].push(Symbol::from_index(i));
            }
        }
        out
    }

    /// The hidden source symbols.
    pub fn hidden_symbols(&self) -> Vec<Symbol> {
        self.map
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(i, _)| Symbol::from_index(i))
            .collect()
    }
}

impl fmt::Display for Homomorphism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .source
            .iter()
            .map(|(a, name)| match self.apply(a) {
                Some(t) => format!("{name}↦{}", self.target.name(t)),
                None => format!("{name}↦ε"),
            })
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Alphabet, Homomorphism) {
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
        (sigma, h)
    }

    #[test]
    fn hiding_builds_expected_map() {
        let (sigma, h) = setup();
        assert_eq!(h.target().len(), 2);
        assert!(h.hides(sigma.symbol("tau").unwrap()));
        assert!(!h.hides(sigma.symbol("a").unwrap()));
        assert_eq!(h.hidden_symbols().len(), 1);
    }

    #[test]
    fn word_images_drop_hidden() {
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let img = h.apply_word(&[tau, a, tau, a]);
        assert_eq!(img.len(), 2);
        assert_eq!(h.target().name(img[0]), "a");
    }

    #[test]
    fn upword_image_undefined_on_silent_period() {
        let (sigma, h) = setup();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let silent = UpWord::new(vec![a], vec![tau]).unwrap();
        assert_eq!(h.apply_upword(&silent), None);
        let alive = UpWord::new(vec![tau], vec![a, tau]).unwrap();
        let img = h.apply_upword(&alive).unwrap();
        assert_eq!(img.prefix().len(), 0);
        assert_eq!(img.period().len(), 1);
    }

    #[test]
    fn renaming_homomorphism() {
        let sigma = Alphabet::new(["yes", "no"]).unwrap();
        let target = Alphabet::new(["answer"]).unwrap();
        let h = Homomorphism::new(&sigma, &target, |_| Some("answer".to_owned())).unwrap();
        let yes = sigma.symbol("yes").unwrap();
        let no = sigma.symbol("no").unwrap();
        assert_eq!(h.apply(yes), h.apply(no));
        assert_eq!(h.preimages()[0].len(), 2);
    }

    #[test]
    fn unknown_visible_name_rejected() {
        let sigma = Alphabet::new(["a"]).unwrap();
        assert!(Homomorphism::hiding(&sigma, ["zzz"]).is_err());
    }

    #[test]
    fn display_shows_mapping() {
        let (_, h) = setup();
        let text = h.to_string();
        assert!(text.contains("tau↦ε"));
        assert!(text.contains("a↦a"));
    }
}
