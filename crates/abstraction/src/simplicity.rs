//! Simplicity of abstracting homomorphisms (Definition 6.3, after
//! Ochsenschläger).
//!
//! `h` is *simple* for a prefix-closed language `L` and a word `w ∈ L` iff
//! there exists `u ∈ cont(h(w), h(L))` such that
//!
//! ```text
//! cont(u, cont(h(w), h(L))) = cont(u, h(cont(w, L))),
//! ```
//!
//! i.e. the abstract continuations *eventually* (after some `u`) coincide
//! with the image of the concrete continuations. Theorem 8.2 shows this is
//! exactly what makes relative liveness transfer from the abstraction to the
//! concrete system.
//!
//! # Decision procedure
//!
//! For regular `L` the data of `w` is the pair `(q, s)`:
//! `q = δ_L(q₀, w)` in a DFA for `L` determines `cont(w, L)` (and hence
//! `h(cont(w, L))`), and `s = δ_h(s₀, h(w))` in a DFA for `h(L)` determines
//! `cont(h(w), h(L))`. Finitely many pairs are reachable; for each we search
//! the product of the two continuation DFAs for a point `u` where the
//! residual languages are equivalent (Hopcroft–Karp). Both searches are
//! complete, so the procedure decides simplicity exactly and returns a
//! concrete witness word when `h` is *not* simple.

use std::collections::VecDeque;

use rl_automata::{equivalent_states, AutomataError, Dfa, Guard, Nfa, StateId, Word};

use crate::hom::{AbstractionError, Homomorphism};
use crate::image::image_nfa;

/// Outcome of a simplicity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplicityReport {
    /// Whether `h` is simple for the language.
    pub simple: bool,
    /// When not simple: a word `w ∈ L` for which no `u` as in Definition 6.3
    /// exists (e.g. `lock` for the paper's Figure 3 system).
    pub violation: Option<Word>,
    /// Number of `(q, s)` pairs examined (a size measure for benchmarks).
    pub pairs_checked: usize,
}

/// Decides whether `h` is simple for the prefix-closed regular language
/// `L(language)` (Definition 6.3).
///
/// # Errors
///
/// * [`AbstractionError::NotPrefixClosed`] when `language` is not prefix
///   closed (the paper's systems always are — Section 6),
/// * [`AbstractionError::Automata`] when the alphabets do not line up.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_abstraction::{check_simplicity, Homomorphism};
/// use rl_petri::examples::{server_behaviors, server_err_behaviors};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let keep = ["request", "result", "reject"];
/// // Figure 2: the abstraction is simple …
/// let good = server_behaviors();
/// let h = Homomorphism::hiding(good.alphabet(), keep)?;
/// assert!(check_simplicity(&h, &good.to_nfa())?.simple);
/// // … Figure 3: it is not (the `lock` prefix kills all results).
/// let bad = server_err_behaviors();
/// let h_err = Homomorphism::hiding(bad.alphabet(), keep)?;
/// let report = check_simplicity(&h_err, &bad.to_nfa())?;
/// assert!(!report.simple);
/// # Ok(())
/// # }
/// ```
pub fn check_simplicity(
    h: &Homomorphism,
    language: &Nfa,
) -> Result<SimplicityReport, AbstractionError> {
    check_simplicity_with(h, language, &Guard::unlimited())
}

/// [`check_simplicity`] under a resource [`Guard`].
///
/// The subset constructions for `L`, `h(L)`, and each per-state continuation
/// image are charged against the guard's budget, as is every `(q, s)` pair
/// the BFS examines (charged as a state).
///
/// # Errors
///
/// As [`check_simplicity`], plus [`AbstractionError::Automata`] carrying a
/// budget error when the guard trips.
pub fn check_simplicity_with(
    h: &Homomorphism,
    language: &Nfa,
    guard: &Guard,
) -> Result<SimplicityReport, AbstractionError> {
    let _span = guard.span("simplicity");
    h.source().check_compatible(language.alphabet())?;
    if !language.is_prefix_closed_with(guard)? {
        return Err(AbstractionError::NotPrefixClosed);
    }

    // DFA of L, restricted to live states (all of which accept: L = pre(L)).
    let d = trim_dfa(&language.determinize_with(guard)?);
    if d.state_count() == 0 {
        // Empty language: vacuously simple (no words to check).
        return Ok(SimplicityReport {
            simple: true,
            violation: None,
            pairs_checked: 0,
        });
    }
    // DFA of h(L), likewise trimmed.
    let dh = trim_dfa(&image_nfa(h, language).determinize_with(guard)?);

    // Per concrete state q: DFA of h(cont(w, L)) = h(language of d from q).
    let mut image_cont: Vec<Option<Dfa>> = vec![None; d.state_count()];
    let e_q = |q: StateId, cache: &mut Vec<Option<Dfa>>| -> Result<Dfa, AbstractionError> {
        if cache[q].is_none() {
            let rooted = d.rooted_at(q).to_nfa();
            cache[q] = Some(image_nfa(h, &rooted).determinize_with(guard)?);
        } else {
            guard.note_cache_hit();
        }
        Ok(cache[q].clone().expect("just inserted"))
    };

    // BFS over reachable (q, s) pairs, remembering a witness word per pair.
    // Pairs index a flat `q * |dh| + s` table (both DFAs are trimmed and
    // small, so the dense table wins over a tree map).
    let cols = dh.state_count();
    let pair_idx = |q: StateId, s: StateId| q * cols + s;
    let mut seen: Vec<Option<Word>> = vec![None; d.state_count() * cols];
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
    let start = (d.initial(), dh.initial());
    seen[pair_idx(start.0, start.1)] = Some(Vec::new());
    queue.push_back(start);
    let mut pairs_checked = 0usize;

    while let Some((q, s)) = queue.pop_front() {
        guard.charge_state()?;
        guard.note_frontier(queue.len());
        pairs_checked += 1;
        let eq = e_q(q, &mut image_cont)?;
        let witness = seen[pair_idx(q, s)].clone().expect("queued pairs are seen");
        if !pair_is_simple(&dh, s, &eq, guard)? {
            return Ok(SimplicityReport {
                simple: false,
                violation: Some(witness),
                pairs_checked,
            });
        }
        for a in d.alphabet().clone().symbols() {
            let Some(q2) = d.next(q, a) else { continue };
            let s2 = match h.apply(a) {
                Some(b) => match dh.next(s, b) {
                    Some(s2) => s2,
                    None => unreachable!("h(w) ∈ h(L) must be tracked by the h(L)-DFA"),
                },
                None => s,
            };
            let slot = &mut seen[pair_idx(q2, s2)];
            if slot.is_none() {
                let mut w2 = witness.clone();
                w2.push(a);
                *slot = Some(w2);
                queue.push_back((q2, s2));
            }
        }
    }
    Ok(SimplicityReport {
        simple: true,
        violation: None,
        pairs_checked,
    })
}

/// Does there exist `u ∈ L(dh from s)` with
/// `cont(u, L(dh from s)) = cont(u, L(eq))`?
///
/// Walks the synchronous product of the two (partial) DFAs; at every pair of
/// states reached by a common `u` that is in `L(dh from s)` (i.e. the `dh`
/// state accepts — prefix-closedness makes intermediate states accepting
/// too), tests residual-language equivalence.
///
/// The product can have `|dh| · |eq|` pairs even when both DFAs stayed within
/// budget, so every materialized pair is charged as a state.
fn pair_is_simple(dh: &Dfa, s: StateId, eq: &Dfa, guard: &Guard) -> Result<bool, AutomataError> {
    // Flat visited table over (dh state, eq state or ⊥): the ⊥ ("fallen off
    // the partial eq DFA") column is encoded as index `eq.state_count()`.
    let cols = eq.state_count() + 1;
    let pair_idx = |t1: StateId, t2: Option<StateId>| t1 * cols + t2.unwrap_or(cols - 1);
    let mut seen: Vec<bool> = vec![false; dh.state_count() * cols];
    let mut queue: VecDeque<(StateId, Option<StateId>)> = VecDeque::new();
    let start = (s, Some(eq.initial()));
    guard.charge_state()?;
    seen[pair_idx(start.0, start.1)] = true;
    queue.push_back(start);
    while let Some((t1, t2)) = queue.pop_front() {
        guard.note_frontier(queue.len());
        if !dh.is_accepting(t1) {
            // u has left cont(h(w), h(L)); no deeper u can re-enter
            // (prefix-closed), so prune.
            continue;
        }
        if let Some(t2) = t2 {
            guard.charge_transition()?;
            if equivalent_states(dh, t1, eq, t2) {
                return Ok(true);
            }
        }
        for b in dh.alphabet().clone().symbols() {
            let Some(n1) = dh.next(t1, b) else { continue };
            let n2 = t2.and_then(|t| eq.next(t, b));
            let idx = pair_idx(n1, n2);
            if !seen[idx] {
                seen[idx] = true;
                guard.charge_state()?;
                queue.push_back((n1, n2));
            }
        }
    }
    Ok(false)
}

/// Restricts a DFA to its live (reachable and co-reachable) states.
fn trim_dfa(d: &Dfa) -> Dfa {
    let nfa = d.to_nfa();
    let reach = nfa.reachable();
    let coreach = nfa.coreachable();
    let keep: Vec<bool> = reach.iter().zip(&coreach).map(|(&r, &c)| r && c).collect();
    let trimmed = nfa.restrict(&keep);
    // Rebuild as a DFA (restriction preserves determinism).
    let mut out = Dfa::new(d.alphabet().clone());
    for q in 0..trimmed.state_count() {
        out.add_state(trimmed.is_accepting(q));
    }
    if let Some(&q0) = trimmed.initial().iter().next() {
        out.set_initial(q0);
    }
    for (p, a, q) in trimmed.transitions() {
        out.set_transition(p, a, q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::{Alphabet, TransitionSystem};

    /// h hiding tau over a two-action alphabet.
    fn hom(sigma: &Alphabet) -> Homomorphism {
        Homomorphism::hiding(sigma, ["a", "b"]).unwrap()
    }

    #[test]
    fn identity_homomorphism_is_simple() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let h = Homomorphism::new(&sigma, &sigma, |n| Some(n.to_owned())).unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, sigma.symbol("a").unwrap(), s1);
        ts.add_transition(s1, sigma.symbol("b").unwrap(), s0);
        let report = check_simplicity(&h, &ts.to_nfa()).unwrap();
        assert!(report.simple);
    }

    #[test]
    fn hiding_a_neutral_loop_is_simple() {
        // (tau* a)* — hiding tau: abstract a*, continuations always the same.
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, tau, s0);
        ts.add_transition(s0, a, s0);
        let report = check_simplicity(&hom(&sigma), &ts.to_nfa()).unwrap();
        assert!(report.simple);
    }

    #[test]
    fn hidden_mode_switch_is_not_simple() {
        // tau silently degrades (a|b)* into b*: abstractly nothing happened,
        // but concretely the `a` capability is gone forever — the
        // continuations never re-converge, so no witness `u` exists.
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s0);
        ts.add_transition(s0, b, s0);
        ts.add_transition(s0, tau, s1);
        ts.add_transition(s1, b, s1);
        let report = check_simplicity(&hom(&sigma), &ts.to_nfa()).unwrap();
        assert!(!report.simple);
        // The violation is the silent switch itself.
        assert_eq!(report.violation, Some(vec![tau]));
    }

    #[test]
    fn converging_mode_switch_is_simple() {
        // tau switches a* into b*-only, but the abstract language a*b* also
        // loses its `a`s after the first b: continuations converge at u = b,
        // so Definition 6.3's ∃u is satisfied — h *is* simple here.
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s0);
        ts.add_transition(s0, tau, s1);
        ts.add_transition(s1, b, s1);
        let report = check_simplicity(&hom(&sigma), &ts.to_nfa()).unwrap();
        assert!(report.simple, "violation: {:?}", report.violation);
    }

    #[test]
    fn eventual_agreement_is_enough() {
        // After the hidden action the concrete continuations disagree with
        // the abstract ones for one step, but coincide after u = a.
        // L: s0 --tau--> s1 --a--> s2, s2 --(a|b)--> s2 ; also s0 --a--> s2.
        // h(cont(tau, L)) = a (a|b)*, cont(h(tau)=ε, h(L)) = h(L) = a (a|b)*.
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        let s2 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, tau, s1);
        ts.add_transition(s0, a, s2);
        ts.add_transition(s1, a, s2);
        ts.add_transition(s2, a, s2);
        ts.add_transition(s2, b, s2);
        let report = check_simplicity(&hom(&sigma), &ts.to_nfa()).unwrap();
        assert!(report.simple);
    }

    #[test]
    fn non_prefix_closed_input_rejected() {
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let l = Nfa::from_parts(sigma.clone(), 2, [0], [1], [(0, a, 1)]).unwrap();
        assert_eq!(
            check_simplicity(&hom(&sigma), &l).unwrap_err(),
            AbstractionError::NotPrefixClosed
        );
    }

    #[test]
    fn empty_language_is_simple() {
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let l = Nfa::new(sigma.clone());
        let report = check_simplicity(&hom(&sigma), &l).unwrap();
        assert!(report.simple);
        assert_eq!(report.pairs_checked, 0);
    }
}
