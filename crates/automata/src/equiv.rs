//! Language equivalence and inclusion tests.

use std::collections::VecDeque;

use crate::dfa::Dfa;
use crate::guard::Guard;
use crate::word::Word;
use crate::StateId;

/// Union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the classes of `x` and `y`; returns `false` if already joined.
    fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.parent[rx] = ry;
        true
    }
}

/// Decides `L(a from sa) == L(b from sb)` by Hopcroft–Karp near-linear
/// equivalence testing on the completed automata.
///
/// Both automata must share the same alphabet (callers in this workspace
/// always guarantee it; a mismatch simply yields `false`).
///
/// # Example
///
/// ```
/// use rl_automata::{equivalent_states, Alphabet, Dfa};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// // Two copies of "even number of a's", rooted at opposite parities.
/// let mut d = Dfa::new(ab);
/// let q0 = d.add_state(true);
/// let q1 = d.add_state(false);
/// d.set_initial(q0);
/// d.set_transition(q0, a, q1);
/// d.set_transition(q1, a, q0);
/// assert!(equivalent_states(&d, q0, &d, q0));
/// assert!(!equivalent_states(&d, q0, &d, q1));
/// # Ok(())
/// # }
/// ```
pub fn equivalent_states(a: &Dfa, sa: StateId, b: &Dfa, sb: StateId) -> bool {
    if a.alphabet() != b.alphabet() {
        return false;
    }
    let ac = a.complete();
    let bc = b.complete();
    // `complete` appends a sink and never renumbers, so sa/sb stay valid.
    let na = ac.state_count();
    let mut uf = UnionFind::new(na + bc.state_count());
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
    if ac.is_accepting(sa) != bc.is_accepting(sb) {
        return false;
    }
    uf.union(sa, na + sb);
    queue.push_back((sa, sb));
    while let Some((p, q)) = queue.pop_front() {
        for s in ac.alphabet().symbols() {
            let p2 = ac.next(p, s).expect("complete");
            let q2 = bc.next(q, s).expect("complete");
            if uf.union(p2, na + q2) {
                if ac.is_accepting(p2) != bc.is_accepting(q2) {
                    return false;
                }
                queue.push_back((p2, q2));
            }
        }
    }
    true
}

/// Decides `L(a) == L(b)` (from the initial states).
pub fn dfa_equivalent(a: &Dfa, b: &Dfa) -> bool {
    equivalent_states(a, a.initial(), b, b.initial())
}

/// Decides `L(a) ⊆ L(b)`; on failure returns a witness word in
/// `L(a) \ L(b)`.
///
/// # Example
///
/// ```
/// use rl_automata::{dfa_included, Alphabet, Nfa};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// // L1 = {a}, L2 = {ε, a}
/// let l1 = Nfa::from_parts(ab.clone(), 2, [0], [1], [(0, a, 1)])?.determinize();
/// let l2 = Nfa::from_parts(ab.clone(), 2, [0], [0, 1], [(0, a, 1)])?.determinize();
/// assert_eq!(dfa_included(&l1, &l2), None);
/// assert_eq!(dfa_included(&l2, &l1), Some(vec![]));
/// # Ok(())
/// # }
/// ```
pub fn dfa_included(a: &Dfa, b: &Dfa) -> Option<Word> {
    let diff = a.difference(b).expect("alphabet mismatch in dfa_included");
    diff.shortest_accepted()
}

/// [`dfa_included`] under a resource [`Guard`]: the difference product is
/// charged against the guard's budget.
///
/// # Errors
///
/// Returns [`crate::AutomataError::AlphabetMismatch`] when the alphabets
/// differ, or a budget error when the guard trips.
pub fn dfa_included_with(
    a: &Dfa,
    b: &Dfa,
    guard: &Guard,
) -> Result<Option<Word>, crate::AutomataError> {
    let _span = guard.span("dfa_inclusion");
    let diff = a.difference_with(b, guard)?;
    Ok(diff.shortest_accepted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, Nfa};

    #[test]
    fn equivalence_of_different_presentations() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        // L = Σ* a : NFA version and a hand-built DFA version.
        let nfa =
            Nfa::from_parts(ab.clone(), 2, [0], [1], [(0, a, 0), (0, b, 0), (0, a, 1)]).unwrap();
        let d1 = nfa.determinize();
        let mut d2 = Dfa::new(ab);
        let q0 = d2.add_state(false);
        let q1 = d2.add_state(true);
        d2.set_initial(q0);
        d2.set_transition(q0, a, q1);
        d2.set_transition(q0, b, q0);
        d2.set_transition(q1, a, q1);
        d2.set_transition(q1, b, q0);
        assert!(dfa_equivalent(&d1, &d2));
        assert!(!dfa_equivalent(&d1, &d2.complement()));
    }

    #[test]
    fn inclusion_witness_is_minimal() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        // L1 = Σ*, L2 = words without factor bb.
        let univ = Nfa::from_parts(ab.clone(), 1, [0], [0], [(0, a, 0), (0, b, 0)])
            .unwrap()
            .determinize();
        let no_bb = Nfa::from_parts(
            ab.clone(),
            2,
            [0],
            [0, 1],
            [(0, a, 0), (0, b, 1), (1, a, 0)],
        )
        .unwrap()
        .determinize();
        assert_eq!(dfa_included(&no_bb, &univ), None);
        assert_eq!(dfa_included(&univ, &no_bb), Some(vec![b, b]));
    }
}
