//! Serde support (behind the `serde` feature).
//!
//! Machines serialize through explicit *parts* structs with a stable,
//! human-readable shape — symbols by index, transitions as triples — so the
//! encodings survive internal representation changes and work with
//! string-keyed formats like JSON:
//!
//! ```json
//! {
//!   "alphabet": ["a", "b"],
//!   "state_count": 2,
//!   "initial": [0],
//!   "accepting": [1],
//!   "transitions": [[0, 0, 1], [1, 1, 0]]
//! }
//! ```
//!
//! Deserialization re-validates every index through the ordinary
//! constructors, so a corrupted document cannot produce an inconsistent
//! machine.

use serde::{Deserialize, Serialize};

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::ts::TransitionSystem;

impl Serialize for Alphabet {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.names().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Alphabet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Alphabet, D::Error> {
        let names = Vec::<String>::deserialize(deserializer)?;
        Alphabet::new(names).map_err(serde::de::Error::custom)
    }
}

impl Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.index() as u64).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Symbol, D::Error> {
        let idx = u64::deserialize(deserializer)?;
        Ok(Symbol::from_index(idx as usize))
    }
}

/// Stable wire shape shared by [`Nfa`] and [`crate::Buchi`]-style machines.
#[derive(Serialize, Deserialize)]
pub(crate) struct NfaParts {
    alphabet: Vec<String>,
    state_count: usize,
    initial: Vec<usize>,
    accepting: Vec<usize>,
    transitions: Vec<(usize, usize, usize)>,
}

impl From<&Nfa> for NfaParts {
    fn from(nfa: &Nfa) -> NfaParts {
        NfaParts {
            alphabet: nfa.alphabet().names(),
            state_count: nfa.state_count(),
            initial: nfa.initial().iter().copied().collect(),
            accepting: (0..nfa.state_count())
                .filter(|&q| nfa.is_accepting(q))
                .collect(),
            transitions: nfa
                .transitions()
                .map(|(p, a, q)| (p, a.index(), q))
                .collect(),
        }
    }
}

impl TryFrom<NfaParts> for Nfa {
    type Error = crate::error::AutomataError;

    fn try_from(parts: NfaParts) -> Result<Nfa, Self::Error> {
        let alphabet = Alphabet::new(parts.alphabet)?;
        let k = alphabet.len();
        for &(_, a, _) in &parts.transitions {
            if a >= k {
                return Err(crate::error::AutomataError::InvalidState(a));
            }
        }
        Nfa::from_parts(
            alphabet,
            parts.state_count,
            parts.initial,
            parts.accepting,
            parts
                .transitions
                .into_iter()
                .map(|(p, a, q)| (p, Symbol::from_index(a), q)),
        )
    }
}

impl Serialize for Nfa {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        NfaParts::from(self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Nfa {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Nfa, D::Error> {
        let parts = NfaParts::deserialize(deserializer)?;
        Nfa::try_from(parts).map_err(serde::de::Error::custom)
    }
}

#[derive(Serialize, Deserialize)]
struct DfaParts {
    alphabet: Vec<String>,
    state_count: usize,
    initial: usize,
    accepting: Vec<usize>,
    transitions: Vec<(usize, usize, usize)>,
}

impl Serialize for Dfa {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DfaParts {
            alphabet: self.alphabet().names(),
            state_count: self.state_count(),
            initial: self.initial(),
            accepting: (0..self.state_count())
                .filter(|&q| self.is_accepting(q))
                .collect(),
            transitions: self
                .transitions()
                .map(|(p, a, q)| (p, a.index(), q))
                .collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Dfa {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Dfa, D::Error> {
        let parts = DfaParts::deserialize(deserializer)?;
        let alphabet = Alphabet::new(parts.alphabet).map_err(serde::de::Error::custom)?;
        let k = alphabet.len();
        // Reject duplicate transitions per (state, symbol): a DFA document
        // with conflicting edges is corrupt, not "last one wins".
        let mut seen = std::collections::BTreeSet::new();
        for &(p, a, _) in &parts.transitions {
            if a >= k {
                return Err(serde::de::Error::custom(format!("invalid symbol {a}")));
            }
            if !seen.insert((p, a)) {
                return Err(serde::de::Error::custom(format!(
                    "duplicate transition from state {p} on symbol {a}"
                )));
            }
        }
        Dfa::from_parts(
            alphabet,
            parts.state_count,
            parts.initial,
            parts.accepting,
            parts
                .transitions
                .into_iter()
                .map(|(p, a, q)| (p, Symbol::from_index(a), q)),
        )
        .map_err(serde::de::Error::custom)
    }
}

#[derive(Serialize, Deserialize)]
struct TsParts {
    alphabet: Vec<String>,
    initial: usize,
    labels: Vec<Option<String>>,
    transitions: Vec<(usize, usize, usize)>,
}

impl Serialize for TransitionSystem {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        TsParts {
            alphabet: self.alphabet().names(),
            initial: self.initial(),
            labels: (0..self.state_count())
                .map(|q| self.state_label(q))
                .collect(),
            transitions: self
                .transitions()
                .map(|(p, a, q)| (p, a.index(), q))
                .collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TransitionSystem {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> Result<TransitionSystem, D::Error> {
        let parts = TsParts::deserialize(deserializer)?;
        let alphabet = Alphabet::new(parts.alphabet).map_err(serde::de::Error::custom)?;
        let n = parts.labels.len();
        let mut ts = TransitionSystem::new(alphabet.clone());
        for label in &parts.labels {
            match label {
                Some(text) => ts.add_labeled_state(text.clone()),
                None => ts.add_state(),
            };
        }
        if parts.initial >= n {
            return Err(serde::de::Error::custom(format!(
                "initial state {} out of range",
                parts.initial
            )));
        }
        ts.set_initial(parts.initial);
        for (p, a, q) in parts.transitions {
            if p >= n || q >= n || a >= alphabet.len() {
                return Err(serde::de::Error::custom(format!(
                    "transition ({p}, {a}, {q}) out of range"
                )));
            }
            ts.add_transition(p, Symbol::from_index(a), q);
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    // Round-trip tests live in the umbrella crate's tests/serde_roundtrip.rs
    // (serde_json is a dev-dependency there); here we only check that the
    // impls exist and are object-safe to call.
    use super::*;

    fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn impls_exist() {
        assert_serde::<Alphabet>();
        assert_serde::<Symbol>();
        assert_serde::<Nfa>();
        assert_serde::<Dfa>();
        assert_serde::<TransitionSystem>();
    }
}
