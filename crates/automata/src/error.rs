//! Error type shared by the automata constructors.

use std::error::Error;
use std::fmt;

use crate::guard::{Progress, Resource};

/// Errors produced when constructing or combining automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// Two machines were combined whose alphabets differ.
    AlphabetMismatch {
        /// Symbols of the left operand's alphabet.
        left: Vec<String>,
        /// Symbols of the right operand's alphabet.
        right: Vec<String>,
    },
    /// A symbol name was declared twice in one alphabet.
    DuplicateSymbol(String),
    /// A symbol name is not part of the alphabet.
    UnknownSymbol(String),
    /// A state index is out of range for the automaton.
    InvalidState(usize),
    /// An empty alphabet was supplied where a non-empty one is required.
    EmptyAlphabet,
    /// A guarded construction exhausted its resource [`crate::Budget`].
    BudgetExceeded {
        /// Which limit was hit.
        resource: Resource,
        /// Amount consumed when the limit tripped (milliseconds for
        /// [`Resource::WallClock`], counts otherwise).
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// Partial diagnostics: work done up to the interruption.
        partial: Progress,
    },
    /// A guarded construction was stopped through a [`crate::CancelToken`].
    Cancelled(Progress),
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::AlphabetMismatch { left, right } => {
                write!(f, "alphabet mismatch: {left:?} vs {right:?}")
            }
            AutomataError::DuplicateSymbol(s) => write!(f, "duplicate symbol {s:?}"),
            AutomataError::UnknownSymbol(s) => write!(f, "unknown symbol {s:?}"),
            AutomataError::InvalidState(q) => write!(f, "invalid state index {q}"),
            AutomataError::EmptyAlphabet => write!(f, "alphabet must not be empty"),
            AutomataError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => write!(
                f,
                "budget exceeded: {spent} {resource} used, limit {limit}; partial: {partial}"
            ),
            AutomataError::Cancelled(partial) => {
                write!(f, "cancelled; partial: {partial}")
            }
        }
    }
}

impl Error for AutomataError {}
