//! Deterministic fault injection for robustness tests.
//!
//! The long-running service mode (and the CLI's panic-isolation paths) make
//! claims like "a poisoned job never takes down the process" and "a forced
//! cache eviction mid-job changes no verdict". Those claims are only testable
//! if the failure can be provoked *deterministically*. This module is that
//! trigger: the `RL_FAULT` environment variable arms named fault points, and
//! production code asks [`fires`] / [`armed_value`] at each point.
//!
//! Syntax: `RL_FAULT=<point>:<n>[,<point>:<n>...]` — e.g.
//! `RL_FAULT=opcache-evict:3,serve-drop-conn:2`.
//!
//! Two firing disciplines, chosen by the call site:
//!
//! * [`fires(point)`](fires) — *occurrence-counted*: returns `true` exactly
//!   once, on the `n`-th call for that point (1-based). Used for "the 3rd
//!   cache lookup forces a full eviction" style faults.
//! * [`armed_value(point)`](armed_value) — *value-matched*: returns the armed
//!   `n` for the caller to compare against its own identifier (a job id, a
//!   connection id). Used for "job 2 panics" style faults, which stay
//!   deterministic even when execution order does not.
//!
//! With `RL_FAULT` unset every query is a branch on an initialized-once
//! `Option` — no parsing, no locks — so the hooks are safe to leave in hot
//! paths.
//!
//! Known points (grep for the string to find the site):
//!
//! | point             | discipline | effect                                          |
//! |-------------------|------------|-------------------------------------------------|
//! | `check-panic`     | counted    | the n-th guarded check panics mid-pipeline      |
//! | `job-panic`       | value      | the serve job with id `n` panics on its worker  |
//! | `serve-drop-conn` | counted    | the server drops the n-th request's connection  |
//! | `serve-drop-sub`  | counted    | the n-th subscriber stream flush severs the conn|
//! | `opcache-evict`   | counted    | the n-th cache lookup first evicts every entry  |

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One armed fault point: the target occurrence/value and a hit counter.
struct Point {
    n: u64,
    seen: AtomicU64,
}

/// The parsed `RL_FAULT` plan; `None` when the variable is unset or empty.
fn plan() -> Option<&'static HashMap<String, Point>> {
    static PLAN: OnceLock<Option<HashMap<String, Point>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let raw = std::env::var("RL_FAULT").ok()?;
        let mut points = HashMap::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((name, n)) = part.split_once(':') else {
                continue; // malformed specs are ignored, never fatal
            };
            let Ok(n) = n.trim().parse::<u64>() else {
                continue;
            };
            points.insert(
                name.trim().to_owned(),
                Point {
                    n,
                    seen: AtomicU64::new(0),
                },
            );
        }
        (!points.is_empty()).then_some(points)
    })
    .as_ref()
}

/// Occurrence-counted fault: increments the hit counter for `point` and
/// returns `true` exactly on the armed `n`-th call (1-based). Always `false`
/// when `RL_FAULT` does not arm the point.
pub fn fires(point: &str) -> bool {
    let Some(p) = plan().and_then(|m| m.get(point)) else {
        return false;
    };
    p.seen.fetch_add(1, Ordering::Relaxed) + 1 == p.n
}

/// Value-matched fault: the armed `n` for `point`, for the caller to compare
/// with its own identifier. `None` when the point is not armed.
pub fn armed_value(point: &str) -> Option<u64> {
    plan().and_then(|m| m.get(point)).map(|p| p.n)
}

#[cfg(test)]
mod tests {
    // `RL_FAULT` is process-global and parsed once, so unit tests here can
    // only cover the unarmed path; the armed paths are exercised end-to-end
    // by `tests/serve.rs` and `tests/cli.rs`, which set the variable on
    // child processes.
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        if std::env::var_os("RL_FAULT").is_some() {
            return; // an outer harness armed faults; skip
        }
        for _ in 0..3 {
            assert!(!fires("check-panic"));
        }
        assert_eq!(armed_value("job-panic"), None);
    }
}
