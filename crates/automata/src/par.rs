//! A dependency-free work-stealing thread pool for the parallel kernels.
//!
//! The exponential frontier explorations of this workspace (subset
//! construction, rank-based Büchi complementation) expand one BFS layer at a
//! time; within a layer every item is independent, so the expansion is an
//! embarrassingly parallel map. [`Pool`] provides exactly the primitives
//! those kernels (and the `rlcheck --jobs` batch front end) need:
//!
//! * [`Pool::new`] spawns a fixed set of worker threads, each owning a
//!   chunked deque. Submitted work is dealt round-robin across the deques;
//!   an idle worker drains its own deque front-first and **steals from the
//!   back of a sibling's deque** when it runs dry, then parks on a condvar
//!   until new work arrives.
//! * [`Pool::map_indexed`] — the layer-expansion primitive: run a closure
//!   over `0..n` in parallel chunks and return the results **in index
//!   order**, so callers can merge deterministically. Worker panics are
//!   re-raised on the calling thread.
//! * [`Pool::run_jobs`] — the batch primitive: run independent jobs and
//!   return each job's result or captured panic, again in submission order.
//!
//! Everything here is safe Rust on `std` only (mutex-backed deques, channel
//! joins, condvar parking — honoring the workspace's vendor-only policy);
//! tasks are `'static`, so callers share operands via [`Arc`] clones.
//!
//! # Determinism contract
//!
//! The pool itself promises nothing about *execution* order — only
//! [`Pool::map_indexed`]'s and [`Pool::run_jobs`]'s *result* order. The
//! kernels layered on top keep their outputs bit-for-bit independent of the
//! thread count by doing all state numbering in a sequential merge pass over
//! those ordered results (see `DESIGN.md` §10).

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rl_obs::{HistogramRegistry, Tracer};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Scheduler telemetry totals, sampled via [`Pool::counters`].
///
/// These are always collected (relaxed atomic bumps next to deque locks the
/// pool already takes, so they cost nothing measurable) and are inherently
/// *schedule-dependent*: two runs of the same check may steal or park
/// different amounts. Consumers surface them as named observability
/// counters, never as deterministic metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Jobs submitted via [`Pool::execute`] (including map chunks).
    pub spawns: u64,
    /// Jobs a worker popped from a sibling's deque.
    pub steals: u64,
    /// Transitions of a worker from running to idle (about to park).
    pub parks: u64,
    /// Transitions of a worker from idle back to running.
    pub unparks: u64,
}

/// Shared state between the pool handle and its workers.
struct PoolInner {
    /// One chunked deque per worker; owners pop the front, thieves the back.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Lock/condvar pair for parking idle workers.
    park: Mutex<()>,
    bell: Condvar,
    /// Cleared on shutdown; parked workers re-check it on every wake.
    open: AtomicBool,
    /// Round-robin cursor for dealing submissions across deques.
    next_deque: AtomicUsize,
    /// Optional timeline tracer; fixed at construction so workers can
    /// record without any coordination.
    tracer: Option<Arc<Tracer>>,
    /// Scheduler telemetry (see [`PoolCounters`]).
    spawns: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    /// Optional percentile plane: when set, workers record `pool/steal_us`
    /// (sibling-sweep latency of a successful steal) and `pool/park_us`
    /// (idle-period duration). A `OnceLock` so detached pools pay one
    /// lock-free load per event site.
    hists: OnceLock<HistogramRegistry>,
}

impl PoolInner {
    /// Pops work for worker `home`: own deque first (front), then a sweep of
    /// the siblings' deques (back — the stealing half of the protocol).
    fn find_work(&self, home: usize) -> Option<Job> {
        if let Some(job) = self.deques[home].lock().ok()?.pop_front() {
            return Some(job);
        }
        let hists = self.hists.get();
        let sweep_started = hists.map(|_| Instant::now());
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (home + offset) % n;
            if let Some(job) = self.deques[victim].lock().ok()?.pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let (Some(h), Some(t0)) = (hists, sweep_started) {
                    h.hist("pool/steal_us").record_elapsed_us(t0);
                }
                if let Some(t) = &self.tracer {
                    t.instant("pool", "steal", Some(("victim", victim as u64)));
                }
                return Some(job);
            }
        }
        None
    }
}

/// A fixed-size work-stealing thread pool (see the module docs).
///
/// Dropping the pool shuts it down: remaining queued work is abandoned,
/// running jobs finish, and the worker threads are joined.
///
/// # Example
///
/// ```
/// use rl_automata::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map_indexed(8, std::sync::Arc::new(|i| i * i));
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Spawns a pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Pool {
        Pool::with_tracer(threads, None)
    }

    /// Spawns a pool whose workers additionally record timeline events
    /// (task begin/end, steals, parks/unparks, spawn queue depths) to
    /// `tracer`. Each worker claims its own trace track (`home + 1`; track
    /// 0 is the submitting thread), so one lane per worker comes out of the
    /// Chrome-trace export for free.
    pub fn with_tracer(threads: usize, tracer: Option<Arc<Tracer>>) -> Pool {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(()),
            bell: Condvar::new(),
            open: AtomicBool::new(true),
            next_deque: AtomicUsize::new(0),
            tracer,
            spawns: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            hists: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|home| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("rl-par-{home}"))
                    .spawn(move || worker_loop(&inner, home))
                    .expect("spawning a pool worker succeeds")
            })
            .collect();
        Pool {
            inner,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a [`HistogramRegistry`]: workers record `pool/steal_us`
    /// (latency of the sibling sweep on a successful steal) and
    /// `pool/park_us` (duration of each idle period). First call wins;
    /// later calls are no-ops. Detached pools take no timestamps.
    pub fn set_histograms(&self, hists: HistogramRegistry) {
        let _ = self.inner.hists.set(hists);
    }

    /// A snapshot of the scheduler telemetry totals so far.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            spawns: self.inner.spawns.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            unparks: self.inner.unparks.load(Ordering::Relaxed),
        }
    }

    /// Enqueues one fire-and-forget job (dealt round-robin, stealable).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let slot = self.inner.next_deque.fetch_add(1, Ordering::Relaxed) % self.threads;
        self.inner.spawns.fetch_add(1, Ordering::Relaxed);
        let mut depth = 0;
        if let Ok(mut deque) = self.inner.deques[slot].lock() {
            deque.push_back(Box::new(job));
            depth = deque.len();
        }
        if let Some(t) = &self.inner.tracer {
            // Queue-depth sample at submission, on the submitter's track.
            t.instant("pool", "spawn", Some(("queue", depth as u64)));
        }
        self.inner.bell.notify_all();
    }

    /// Runs `f(i)` for every `i in 0..n` across the pool, in chunks, and
    /// returns the results **in index order**. The calling thread blocks
    /// until the map completes.
    ///
    /// # Panics
    ///
    /// A panic in `f` is captured on the worker and re-raised here once all
    /// chunks have settled (no deadlock, no abandoned chunks).
    pub fn map_indexed<R: Send + 'static>(
        &self,
        n: usize,
        f: Arc<dyn Fn(usize) -> R + Send + Sync>,
    ) -> Vec<R> {
        if n == 0 {
            return Vec::new();
        }
        // Chunk so each worker sees several chunks (stealing can rebalance a
        // skewed layer) without drowning in per-chunk overhead.
        let chunk = (n / (self.threads * 4)).clamp(1, 1024);
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|start| (start, (start + chunk).min(n)))
            .collect();
        let (tx, rx) = mpsc::channel();
        for &(start, end) in &chunks {
            let f = f.clone();
            let tx = tx.clone();
            self.execute(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    (start..end).map(|i| f(i)).collect::<Vec<R>>()
                }));
                // The receiver outlives all senders inside this call; a send
                // can only fail if the caller's stack is already unwinding.
                let _ = tx.send((start, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Vec<R>>> = (0..chunks.len()).map(|_| None).collect();
        let mut panic_payload = None;
        for _ in 0..chunks.len() {
            let (start, result) = rx.recv().expect("all chunks report back");
            match result {
                Ok(values) => slots[start / chunk] = Some(values),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .flat_map(|s| s.expect("every chunk settled without panicking"))
            .collect()
    }

    /// Runs independent jobs across the pool and returns each job's result —
    /// or its captured panic payload — **in submission order**. This is the
    /// batch-checking primitive: one panicking check must not take down its
    /// siblings or the driver.
    pub fn run_jobs<R: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send>>,
    ) -> Vec<std::thread::Result<R>> {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(job));
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("all jobs report back");
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job settled"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.open.store(false, Ordering::Release);
        self.inner.bell.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner, home: usize) {
    // Claim this worker's timeline track; all events it records from here
    // on (pool, op-cache, registry spans) land on its own lane.
    rl_obs::set_thread_track(home + 1);
    // Park/unpark are counted per idle *transition*, not per condvar wake,
    // so the 10ms timeout re-checks don't inflate the totals. `idle_since`
    // spans the whole idle period for the `pool/park_us` histogram.
    let mut idle = false;
    let mut idle_since: Option<Instant> = None;
    while inner.open.load(Ordering::Acquire) {
        match inner.find_work(home) {
            Some(job) => {
                if idle {
                    idle = false;
                    inner.unparks.fetch_add(1, Ordering::Relaxed);
                    if let (Some(h), Some(t0)) = (inner.hists.get(), idle_since.take()) {
                        h.hist("pool/park_us").record_elapsed_us(t0);
                    }
                    if let Some(t) = &inner.tracer {
                        t.instant("pool", "unpark", None);
                    }
                }
                match &inner.tracer {
                    Some(t) => {
                        t.begin("pool", "task");
                        job();
                        t.end("pool", "task");
                    }
                    None => job(),
                }
            }
            None => {
                if !idle {
                    idle = true;
                    idle_since = inner.hists.get().map(|_| Instant::now());
                    inner.parks.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &inner.tracer {
                        t.instant("pool", "park", None);
                    }
                }
                let Ok(guard) = inner.park.lock() else {
                    return;
                };
                // Re-check under the park lock, then park with a timeout: the
                // timeout makes the loop robust against any wake lost between
                // the deque scan and the wait.
                if !inner.open.load(Ordering::Acquire) {
                    return;
                }
                let _ = inner.bell.wait_timeout(guard, Duration::from_millis(10));
            }
        }
    }
}

/// Resolves the effective worker count for a requested `--jobs` value:
/// `Some(0)` (and the `RL_THREADS=0` form) auto-detect the machine's cores
/// via [`std::thread::available_parallelism`], `None` falls back to the
/// `RL_THREADS` environment variable, and everything else passes through.
/// The final answer is always at least 1.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    let autodetect = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match requested {
        Some(0) => autodetect(),
        Some(n) => n,
        None => match std::env::var("RL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(0) => autodetect(),
            Some(n) => n,
            None => 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order_across_sizes() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 3, 64, 257, 1000] {
            let out = pool.map_indexed(n, Arc::new(|i| 3 * i + 1));
            assert_eq!(out.len(), n);
            assert!(out.iter().enumerate().all(|(i, &v)| v == 3 * i + 1), "{n}");
        }
    }

    #[test]
    fn map_indexed_handles_uneven_work() {
        let pool = Pool::new(3);
        // Skewed workloads force stealing; results must still come back in
        // index order.
        let out = pool.map_indexed(
            100,
            Arc::new(|i| {
                if i % 10 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
                i
            }),
        );
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_resurfaces_on_the_caller() {
        let pool = Pool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(
                16,
                Arc::new(|i| {
                    assert!(i != 11, "boom at {i}");
                    i
                }),
            )
        }));
        assert!(result.is_err());
        // The pool survives a panicking map and keeps serving work.
        assert_eq!(pool.map_indexed(4, Arc::new(|i| i)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_jobs_isolates_panics_per_job() {
        let pool = Pool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 10),
            Box::new(|| panic!("job 1 exploded")),
            Box::new(|| 30),
        ];
        let results = pool.run_jobs(jobs);
        assert_eq!(results.len(), 3);
        assert_eq!(*results[0].as_ref().expect("job 0 fine"), 10);
        assert!(results[1].is_err());
        assert_eq!(*results[2].as_ref().expect("job 2 fine"), 30);
    }

    #[test]
    fn pool_shuts_down_cleanly_when_dropped() {
        let pool = Pool::new(4);
        let _ = pool.map_indexed(100, Arc::new(|i| i));
        drop(pool); // must join all workers without hanging
    }

    #[test]
    fn single_worker_pool_still_completes_maps() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(
            pool.map_indexed(5, Arc::new(|i| i * 2)),
            vec![0, 2, 4, 6, 8]
        );
    }

    #[test]
    fn pool_counters_count_spawns_and_idle_transitions() {
        let pool = Pool::new(2);
        let _ = pool.map_indexed(64, Arc::new(|i| i));
        let c = pool.counters();
        assert!(c.spawns >= 1, "map chunks are spawns: {c:?}");
        // Idle transitions are paired: a worker can only unpark after a
        // park, so unparks never exceed parks.
        assert!(c.unparks <= c.parks, "{c:?}");
    }

    #[test]
    fn traced_pool_records_balanced_task_events_per_track() {
        let tracer = Arc::new(rl_obs::Tracer::new());
        let pool = Pool::with_tracer(2, Some(tracer.clone()));
        let _ = pool.map_indexed(64, Arc::new(|i| i * i));
        drop(pool);
        let events = tracer.events();
        // Spawn instants land on the submitting thread's track.
        assert!(events
            .iter()
            .any(|e| e.name == "spawn" && e.track == rl_obs::TRACK_MAIN));
        // Every worker track keeps task begins/ends balanced and nested.
        for track in 1..=2usize {
            let mut open = 0i64;
            for e in events.iter().filter(|e| e.track == track) {
                match (e.phase, e.name.as_str()) {
                    (rl_obs::TracePhase::Begin, "task") => open += 1,
                    (rl_obs::TracePhase::End, "task") => {
                        open -= 1;
                        assert!(open >= 0, "end without begin on track {track}");
                    }
                    _ => {}
                }
            }
            assert_eq!(open, 0, "unbalanced task events on track {track}");
        }
    }

    #[test]
    fn attached_histograms_record_parks_and_match_counters() {
        let pool = Pool::new(2);
        let hists = HistogramRegistry::new();
        pool.set_histograms(hists.clone());
        // Force idle periods: run a map, then let workers drain and park.
        let _ = pool.map_indexed(64, Arc::new(|i| i));
        std::thread::sleep(Duration::from_millis(30));
        let _ = pool.map_indexed(64, Arc::new(|i| i));
        let c = pool.counters();
        drop(pool);
        let snaps: std::collections::BTreeMap<String, _> = hists.snapshot().into_iter().collect();
        let parks = snaps.get("pool/park_us").map_or(0, |s| s.count);
        assert!(parks >= 1, "workers parked at least once: {c:?}");
        // Every histogram sample corresponds to a counted transition.
        assert!(parks <= c.unparks + 2, "park samples bounded by unparks");
        if let Some(steals) = snaps.get("pool/steal_us") {
            assert!(steals.count <= c.steals, "steal samples bounded");
        }
    }

    #[test]
    fn resolve_jobs_honors_flag_env_and_autodetect() {
        // Explicit flag wins outright.
        assert_eq!(resolve_jobs(Some(3)), 3);
        // 0 auto-detects: at least one core.
        assert!(resolve_jobs(Some(0)) >= 1);
        // No flag and no env (tests don't set RL_THREADS): sequential.
        if std::env::var("RL_THREADS").is_err() {
            assert_eq!(resolve_jobs(None), 1);
        }
    }
}
