//! Semidecision kernels for the pre-filter ladder: sound, incomplete
//! analyses that settle an NFA language inclusion `L(a) ⊆ L(b)` without
//! running a PSPACE decision procedure.
//!
//! Three kernels live here, each near-linear in the automata:
//!
//! * [`parikh_refute`] — letter-count (Parikh) refutation: a word of `a`
//!   whose per-letter counts are provably unachievable by `b` disproves the
//!   inclusion with a concrete witness.
//! * [`modk_refute`] — counts-mod-`k` refutation: quotient both languages
//!   by the Parikh vector modulo `k` and refute when `a` reaches a residue
//!   class `b` never does.
//! * [`nfa_simulates`] — structural fast-accept: a simulation of `a` by `b`
//!   proves the inclusion outright.
//!
//! Every refutation candidate is re-validated by word replay
//! (`a.accepts(w) && !b.accepts(w)`) before it is returned, so a `Some`
//! answer from the refuting kernels is always a true counterexample, for
//! *any* pair of NFAs. The kernels are tuned for the prefix-closed,
//! all-accepting automata of the Lemma 4.3 inclusion, where candidate paths
//! are always accepted; on other automata they simply find fewer
//! refutations. None of the kernels touches the guard's charge counters:
//! they only poll deadlines/cancellation, so attached deterministic metrics
//! are bit-for-bit those of a run without the ladder.

use std::collections::VecDeque;

use crate::alphabet::Symbol;
use crate::error::AutomataError;
use crate::guard::Guard;
use crate::nfa::Nfa;
use crate::word::Word;
use crate::StateId;

/// Largest `states × residue-classes` product [`modk_refute`] materializes
/// before giving up (returning "no refutation found"). Deliberately small:
/// the quotient is only worth exploring while it is orders of magnitude
/// below the exact search space, and a ladder that falls through must not
/// have spent more than a sliver of the exact decider's time.
const MODK_PAIR_CAP: usize = 1 << 16;

/// Largest `states(a) × states(b)` relation [`nfa_simulates`] refines before
/// giving up (answering `false`, i.e. "not proved").
const SIM_PAIR_CAP: usize = 1 << 22;

/// Longest witness the pumping construction of [`parikh_refute`] bothers to
/// build; beyond this the exact decider's shortest witness is preferable.
const PUMP_WITNESS_CAP: usize = 10_000;

/// Forward adjacency lists over all symbols, for plain graph traversals.
fn adjacency(nfa: &Nfa) -> Vec<Vec<StateId>> {
    let mut adj: Vec<Vec<StateId>> = vec![Vec::new(); nfa.state_count()];
    for (p, _, q) in nfa.transitions() {
        adj[p].push(q);
    }
    adj
}

/// Strongly connected component id per state (Kosaraju, iterative). Ids are
/// arbitrary but equal exactly within a component.
fn scc_ids(nfa: &Nfa) -> Vec<usize> {
    let n = nfa.state_count();
    let adj = adjacency(nfa);
    let mut radj: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for (p, row) in adj.iter().enumerate() {
        for &q in row {
            radj[q].push(p);
        }
    }
    // Pass 1: DFS finish order.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut stack: Vec<(StateId, usize)> = vec![(root, 0)];
        while let Some(&mut (p, ref mut next)) = stack.last_mut() {
            if *next < adj[p].len() {
                let q = adj[p][*next];
                *next += 1;
                if !seen[q] {
                    seen[q] = true;
                    stack.push((q, 0));
                }
            } else {
                order.push(p);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut id = 0;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        comp[root] = id;
        let mut queue = VecDeque::from([root]);
        while let Some(p) = queue.pop_front() {
            for &q in &radj[p] {
                if comp[q] == usize::MAX {
                    comp[q] = id;
                    queue.push_back(q);
                }
            }
        }
        id += 1;
    }
    comp
}

/// BFS tree from the initial states: per state, its depth and the
/// `(predecessor, symbol)` edge that first discovered it. Unreachable states
/// keep depth `usize::MAX`.
fn bfs_tree(nfa: &Nfa) -> (Vec<usize>, Vec<Option<(StateId, Symbol)>>) {
    let n = nfa.state_count();
    let mut depth = vec![usize::MAX; n];
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut queue = VecDeque::new();
    for &q in nfa.initial() {
        if depth[q] == usize::MAX {
            depth[q] = 0;
            queue.push_back(q);
        }
    }
    while let Some(p) = queue.pop_front() {
        for a in nfa.alphabet().symbols() {
            for &q in nfa.successor_slice(p, a) {
                if depth[q] == usize::MAX {
                    depth[q] = depth[p] + 1;
                    parent[q] = Some((p, a));
                    queue.push_back(q);
                }
            }
        }
    }
    (depth, parent)
}

/// The word spelled by the BFS tree path from an initial state to `q`.
fn tree_word(parent: &[Option<(StateId, Symbol)>], mut q: StateId) -> Word {
    let mut word = Vec::new();
    while let Some((p, a)) = parent[q] {
        word.push(a);
        q = p;
    }
    word.reverse();
    word
}

/// A shortest word labeling some path `from ⇝ to`, by plain BFS.
fn bfs_path(nfa: &Nfa, from: StateId, to: StateId) -> Option<Word> {
    if from == to {
        return Some(Vec::new());
    }
    let n = nfa.state_count();
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(p) = queue.pop_front() {
        for a in nfa.alphabet().symbols() {
            for &q in nfa.successor_slice(p, a) {
                if !seen[q] {
                    seen[q] = true;
                    parent[q] = Some((p, a));
                    if q == to {
                        return Some(tree_word(&parent, to));
                    }
                    queue.push_back(q);
                }
            }
        }
    }
    None
}

/// How many times `b` can use a letter across any single run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LetterBound {
    /// No reachable transition carries the letter: the count is zero.
    Zero,
    /// No reachable transition carrying the letter lies on a cycle, so each
    /// can fire at most once per run: the count is at most this many.
    AtMost(usize),
    /// Some reachable carrying transition lies on a cycle: unbounded.
    Unbounded,
}

/// Per-letter usage bounds of `b`'s reachable transition graph.
fn letter_bounds(b: &Nfa) -> Vec<LetterBound> {
    let reach = b.reachable();
    let comp = scc_ids(b);
    let mut bounds = vec![LetterBound::Zero; b.alphabet().len()];
    for (p, a, q) in b.transitions() {
        if !reach[p] {
            continue;
        }
        bounds[a.index()] = match bounds[a.index()] {
            _ if comp[p] == comp[q] => LetterBound::Unbounded,
            LetterBound::Unbounded => LetterBound::Unbounded,
            LetterBound::Zero => LetterBound::AtMost(1),
            LetterBound::AtMost(c) => LetterBound::AtMost(c + 1),
        };
    }
    bounds
}

/// Letter-count (Parikh) refutation of `L(a) ⊆ L(b)`.
///
/// Computes, per letter, an upper bound on how often `b` can use it in any
/// single word — zero when no reachable transition carries it, finite when
/// none of the carrying transitions lies on a cycle, unbounded otherwise —
/// and searches `a` for a shortest word exceeding some bound. The whole
/// analysis is O(states × alphabet) graph work.
///
/// Returns `Some(witness)` only after replaying the candidate on both
/// automata (`a` accepts it, `b` does not), so a refutation is always
/// genuine; `None` means "no refutation found", not inclusion.
///
/// # Errors
///
/// Propagates guard deadline/cancellation trips ([`Guard::check_now`]); the
/// kernel never charges states or transitions.
pub fn parikh_refute(a: &Nfa, b: &Nfa, guard: &Guard) -> Result<Option<Word>, AutomataError> {
    guard.check_now()?;
    if a.alphabet().check_compatible(b.alphabet()).is_err() {
        return Ok(None);
    }
    // ε first: it has no letter counts but is the shortest witness of all
    // (covers an empty-language `b` against a non-empty `a`).
    if a.accepts(&[]) && !b.accepts(&[]) {
        return Ok(Some(Vec::new()));
    }
    let bounds = letter_bounds(b);
    let (depth_a, parent_a) = bfs_tree(a);
    guard.check_now()?;

    // Support refutation: a letter `a` can reach but `b` can never fire.
    // Among all (letter, source-state) options take the shortest word.
    let mut best: Option<(usize, StateId, Symbol)> = None;
    for x in a.alphabet().symbols() {
        if bounds[x.index()] != LetterBound::Zero {
            continue;
        }
        for (p, &depth) in depth_a.iter().enumerate() {
            if depth == usize::MAX || a.successor_slice(p, x).is_empty() {
                continue;
            }
            if best.is_none_or(|(d, _, _)| depth + 1 < d) {
                best = Some((depth + 1, p, x));
            }
        }
    }
    if let Some((_, p, x)) = best {
        let mut w = tree_word(&parent_a, p);
        w.push(x);
        if a.accepts(&w) && !b.accepts(&w) {
            return Ok(Some(w));
        }
    }

    // Pumping refutation: `b` can fire a letter at most C times, but `a`
    // has a reachable carrying transition on a cycle — pump it C+1 times.
    let comp_a = scc_ids(a);
    for x in a.alphabet().symbols() {
        let LetterBound::AtMost(c) = bounds[x.index()] else {
            continue;
        };
        guard.check_now()?;
        let Some((p, q)) = (0..a.state_count())
            .filter(|&p| depth_a[p] != usize::MAX)
            .flat_map(|p| {
                a.successor_slice(p, x)
                    .iter()
                    .map(move |&q| (p, q))
                    .filter(|&(p, q)| comp_a[p] == comp_a[q])
            })
            .min_by_key(|&(p, _)| depth_a[p])
        else {
            continue;
        };
        let Some(back) = bfs_path(a, q, p) else {
            continue;
        };
        let access = tree_word(&parent_a, p);
        let len = access.len() + (c + 1) * (1 + back.len());
        if len > PUMP_WITNESS_CAP {
            continue;
        }
        let mut w = access;
        for i in 0..=c {
            w.push(x);
            if i < c {
                w.extend_from_slice(&back);
            }
        }
        if a.accepts(&w) && !b.accepts(&w) {
            return Ok(Some(w));
        }
    }
    Ok(None)
}

/// Counts-mod-`k` refutation of `L(a) ⊆ L(b)`.
///
/// Quotients both languages by the Parikh vector modulo `k` (per letter):
/// the reachable residue classes of each automaton are computed by a BFS
/// over `state × (Z_k)^Σ` pairs, and a shortest word of `a` reaching a
/// class `b` never reaches refutes the inclusion. Since `b`'s class set is
/// an over-approximation of its language's image, a mismatch is a genuine
/// counterexample (asserted by replay all the same).
///
/// Returns `None` without working when `k < 2` or the `states × kᐩΣᐩ`
/// product of either side exceeds an internal cap — the quotient is only
/// worthwhile while it is far smaller than the exact search space.
///
/// # Errors
///
/// Propagates guard deadline/cancellation trips; never charges states or
/// transitions.
pub fn modk_refute(
    a: &Nfa,
    b: &Nfa,
    k: usize,
    guard: &Guard,
) -> Result<Option<Word>, AutomataError> {
    guard.check_now()?;
    if k < 2 || a.alphabet().check_compatible(b.alphabet()).is_err() {
        return Ok(None);
    }
    let letters = a.alphabet().len();
    let mut space = 1usize;
    for _ in 0..letters {
        space = match space.checked_mul(k) {
            Some(s) if s <= MODK_PAIR_CAP => s,
            _ => return Ok(None),
        };
    }
    let cap = |nfa: &Nfa| {
        nfa.state_count()
            .checked_mul(space)
            .filter(|&n| n <= MODK_PAIR_CAP)
    };
    let (Some(a_pairs), Some(b_pairs)) = (cap(a), cap(b)) else {
        return Ok(None);
    };
    let pow: Vec<usize> = (0..letters)
        .scan(1usize, |acc, _| {
            let p = *acc;
            *acc *= k;
            Some(p)
        })
        .collect();
    let step = |vec_idx: usize, sym: Symbol| {
        let digit = (vec_idx / pow[sym.index()]) % k;
        vec_idx - digit * pow[sym.index()] + ((digit + 1) % k) * pow[sym.index()]
    };

    // Residue classes `b` reaches at any state (an over-approximation of
    // its language's mod-k image, which is all soundness needs).
    let mut b_classes = vec![false; space];
    {
        let mut seen = vec![false; b_pairs];
        let mut queue = VecDeque::new();
        for &q in b.initial() {
            let pair = q * space;
            if !seen[pair] {
                seen[pair] = true;
                b_classes[0] = true;
                queue.push_back(pair);
            }
        }
        let mut polls = 0u32;
        while let Some(pair) = queue.pop_front() {
            polls += 1;
            if polls.is_multiple_of(256) {
                guard.check_now()?;
            }
            let (q, vec_idx) = (pair / space, pair % space);
            for x in b.alphabet().symbols() {
                let next_vec = step(vec_idx, x);
                for &q2 in b.successor_slice(q, x) {
                    let next = q2 * space + next_vec;
                    if !seen[next] {
                        seen[next] = true;
                        b_classes[next_vec] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
    }

    // Shortest word of `a` into a residue class `b` misses.
    let mut seen = vec![false; a_pairs];
    let mut parent: Vec<Option<(usize, Symbol)>> = vec![None; a_pairs];
    let mut queue = VecDeque::new();
    for &q in a.initial() {
        let pair = q * space;
        if !seen[pair] {
            seen[pair] = true;
            queue.push_back(pair);
        }
    }
    let mut polls = 0u32;
    while let Some(pair) = queue.pop_front() {
        polls += 1;
        if polls.is_multiple_of(256) {
            guard.check_now()?;
        }
        let (q, vec_idx) = (pair / space, pair % space);
        if a.is_accepting(q) && !b_classes[vec_idx] {
            let mut word = Vec::new();
            let mut cur = pair;
            while let Some((prev, x)) = parent[cur] {
                word.push(x);
                cur = prev;
            }
            word.reverse();
            if a.accepts(&word) && !b.accepts(&word) {
                return Ok(Some(word));
            }
            continue;
        }
        for x in a.alphabet().symbols() {
            let next_vec = step(vec_idx, x);
            for &q2 in a.successor_slice(q, x) {
                let next = q2 * space + next_vec;
                if !seen[next] {
                    seen[next] = true;
                    parent[next] = Some((pair, x));
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(None)
}

/// Structural fast-accept: whether `big` simulates `small` state-by-state,
/// which proves `L(small) ⊆ L(big)`.
///
/// The largest simulation respecting acceptance (`R(q, s)` requires that
/// `q` accepting implies `s` accepting, and every `q --x--> q'` is matched
/// by some `s --x--> s'` with `R(q', s')`) is computed as a greatest
/// fixpoint, the NFA twin of [`crate::largest_simulation`]; the answer is
/// `true` when every initial state of `small` is simulated by some initial
/// state of `big`. A `false` answer proves nothing (simulation is strictly
/// finer than inclusion); it is also returned outright when the alphabets
/// differ or the `states × states` relation exceeds an internal cap.
///
/// # Errors
///
/// Propagates guard deadline/cancellation trips; never charges states or
/// transitions.
pub fn nfa_simulates(big: &Nfa, small: &Nfa, guard: &Guard) -> Result<bool, AutomataError> {
    guard.check_now()?;
    if small.alphabet().check_compatible(big.alphabet()).is_err() {
        return Ok(false);
    }
    let (n, m) = (small.state_count(), big.state_count());
    if small.initial().is_empty() {
        return Ok(true); // empty language is included in anything
    }
    if m == 0 || n.checked_mul(m).is_none_or(|pairs| pairs > SIM_PAIR_CAP) {
        return Ok(false);
    }
    let mut related = vec![true; n * m];
    for q in 0..n {
        for s in 0..m {
            if small.is_accepting(q) && !big.is_accepting(s) {
                related[q * m + s] = false;
            }
        }
    }
    loop {
        guard.check_now()?;
        let mut changed = false;
        for q in 0..n {
            for s in 0..m {
                if !related[q * m + s] {
                    continue;
                }
                let ok = small.alphabet().symbols().all(|x| {
                    small.successor_slice(q, x).iter().all(|&q2| {
                        big.successor_slice(s, x)
                            .iter()
                            .any(|&s2| related[q2 * m + s2])
                    })
                });
                if !ok {
                    related[q * m + s] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(small
        .initial()
        .iter()
        .all(|&q| big.initial().iter().any(|&s| related[q * m + s])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn nfa(
        ab: &Alphabet,
        states: usize,
        initial: &[StateId],
        edges: &[(StateId, &str, StateId)],
    ) -> Nfa {
        // All states accepting: the prefix-closed shape the ladder runs on.
        Nfa::from_parts(
            ab.clone(),
            states,
            initial.iter().copied(),
            0..states,
            edges
                .iter()
                .map(|&(p, name, q)| (p, ab.symbol(name).unwrap(), q)),
        )
        .unwrap()
    }

    #[test]
    fn parikh_refutes_on_missing_support() {
        let ab = Alphabet::new(["a", "b", "c"]).unwrap();
        // a: can do c after an a; b: only a/b loops.
        let big = nfa(&ab, 2, &[0], &[(0, "a", 0), (0, "c", 1), (1, "b", 1)]);
        let small = nfa(&ab, 1, &[0], &[(0, "a", 0), (0, "b", 0)]);
        let g = Guard::unlimited();
        let w = parikh_refute(&big, &small, &g).unwrap().unwrap();
        assert_eq!(w, vec![ab.symbol("c").unwrap()]);
        assert!(big.accepts(&w) && !small.accepts(&w));
        // And the inclusion direction that holds is not refuted.
        assert_eq!(parikh_refute(&small, &big, &g).unwrap(), None);
    }

    #[test]
    fn parikh_refutes_by_pumping_past_a_finite_bound() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        // b fires `a` at most once per run (no cycle through it)...
        let bounded = nfa(&ab, 2, &[0], &[(0, "b", 0), (0, "a", 1), (1, "b", 1)]);
        // ...while a loops on it.
        let looper = nfa(&ab, 1, &[0], &[(0, "a", 0), (0, "b", 0)]);
        let g = Guard::unlimited();
        let w = parikh_refute(&looper, &bounded, &g).unwrap().unwrap();
        assert!(looper.accepts(&w) && !bounded.accepts(&w));
        assert_eq!(parikh_refute(&bounded, &looper, &g).unwrap(), None);
    }

    #[test]
    fn parikh_refutes_empty_right_side_with_epsilon() {
        let ab = Alphabet::new(["a"]).unwrap();
        let one = nfa(&ab, 1, &[0], &[(0, "a", 0)]);
        let empty = Nfa::new(ab);
        let g = Guard::unlimited();
        assert_eq!(parikh_refute(&one, &empty, &g).unwrap(), Some(Vec::new()));
    }

    #[test]
    fn modk_sees_a_joint_residue_support_cannot() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        // b: strict alternation — #a − #b stays in {0, 1}, both unbounded.
        let alt = nfa(&ab, 2, &[0], &[(0, "a", 1), (1, "b", 0)]);
        // a: anything.
        let any = nfa(&ab, 1, &[0], &[(0, "a", 0), (0, "b", 0)]);
        let g = Guard::unlimited();
        // Per-letter analysis is blind here...
        assert_eq!(parikh_refute(&any, &alt, &g).unwrap(), None);
        // ...k = 2 still is (all four residue pairs are reachable)...
        assert_eq!(modk_refute(&any, &alt, 2, &g).unwrap(), None);
        // ...but k = 3 rules out (#a − #b) ≡ 2 — shortest offender is "b",
        // whose residue (0, 1) the alternator never reaches.
        let w = modk_refute(&any, &alt, 3, &g).unwrap().unwrap();
        assert_eq!(w, vec![ab.symbol("b").unwrap()]);
        assert!(any.accepts(&w) && !alt.accepts(&w));
    }

    #[test]
    fn modk_declines_oversized_quotients() {
        let names: Vec<String> = (0..32).map(|i| format!("x{i}")).collect();
        let ab = Alphabet::new(names.iter().map(String::as_str)).unwrap();
        let n = nfa(&ab, 1, &[0], &[]);
        let g = Guard::unlimited();
        // 2^32 residue classes blow the cap: the kernel abstains.
        assert_eq!(modk_refute(&n, &n, 2, &g).unwrap(), None);
    }

    #[test]
    fn simulation_accepts_identical_and_looser_specs() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let alt = nfa(&ab, 2, &[0], &[(0, "a", 1), (1, "b", 0)]);
        let any = nfa(&ab, 1, &[0], &[(0, "a", 0), (0, "b", 0)]);
        let g = Guard::unlimited();
        assert!(nfa_simulates(&alt, &alt, &g).unwrap());
        assert!(nfa_simulates(&any, &alt, &g).unwrap());
        assert!(!nfa_simulates(&alt, &any, &g).unwrap());
    }

    #[test]
    fn simulation_respects_acceptance() {
        let ab = Alphabet::new(["a"]).unwrap();
        let mut acc = Nfa::new(ab.clone());
        let q = acc.add_state(true);
        acc.set_initial(q);
        let mut rej = Nfa::new(ab);
        let r = rej.add_state(false);
        rej.set_initial(r);
        let g = Guard::unlimited();
        // ε ∈ L(acc) but L(rej) = ∅: no simulation may claim inclusion.
        assert!(!nfa_simulates(&rej, &acc, &g).unwrap());
        assert!(nfa_simulates(&acc, &rej, &g).unwrap());
    }

    #[test]
    fn kernels_poll_cancellation() {
        use crate::guard::{Budget, CancelToken};
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let n = nfa(&ab, 2, &[0], &[(0, "a", 1), (1, "b", 0)]);
        let token = CancelToken::new();
        token.cancel();
        let g = Guard::with_cancel(Budget::unlimited(), token);
        assert!(parikh_refute(&n, &n, &g).is_err());
        assert!(modk_refute(&n, &n, 2, &g).is_err());
        assert!(nfa_simulates(&n, &n, &g).is_err());
    }
}
