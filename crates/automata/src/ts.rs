//! Labeled transition systems: finite-state systems without acceptance.
//!
//! Section 6 of the paper considers "finite-state transition systems without
//! acceptance conditions. Hence the finite-word languages accepted by the
//! systems we consider are the prefix-closed regular languages, and the
//! ω-languages they accept are the limits of prefix-closed regular
//! languages." [`TransitionSystem`] is exactly that object.

use std::collections::{BTreeMap, VecDeque};

use crate::alphabet::{Alphabet, Symbol};
use crate::error::AutomataError;
use crate::nfa::Nfa;
use crate::word::Word;
use crate::StateId;

/// A finite labeled transition system with a single initial state and no
/// acceptance condition.
///
/// Its finite-word language `L` (all firing sequences) is prefix closed; its
/// infinite behaviors are `lim(L)` (see `rl-buchi`). States may carry an
/// optional display label (e.g. a Petri-net marking).
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, TransitionSystem};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["tick", "tock"])?;
/// let tick = ab.symbol("tick").unwrap();
/// let tock = ab.symbol("tock").unwrap();
/// let mut ts = TransitionSystem::new(ab);
/// let s0 = ts.add_state();
/// let s1 = ts.add_state();
/// ts.set_initial(s0);
/// ts.add_transition(s0, tick, s1);
/// ts.add_transition(s1, tock, s0);
/// assert!(ts.to_nfa().accepts(&[tick, tock, tick]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionSystem {
    alphabet: Alphabet,
    initial: StateId,
    labels: Vec<Option<String>>,
    delta: Vec<BTreeMap<Symbol, Vec<StateId>>>,
}

impl TransitionSystem {
    /// Creates an empty system over `alphabet`.
    pub fn new(alphabet: Alphabet) -> TransitionSystem {
        TransitionSystem {
            alphabet,
            initial: 0,
            labels: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        self.labels.push(None);
        self.delta.push(BTreeMap::new());
        self.labels.len() - 1
    }

    /// Adds a state with a display label.
    pub fn add_labeled_state(&mut self, label: impl Into<String>) -> StateId {
        let id = self.add_state();
        self.labels[id] = Some(label.into());
        id
    }

    /// Sets the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.initial = q;
    }

    /// Adds the transition `from --symbol--> to` (duplicates are merged).
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(from < self.state_count(), "invalid state {from}");
        assert!(to < self.state_count(), "invalid state {to}");
        let row = self.delta[from].entry(symbol).or_default();
        if !row.contains(&to) {
            row.push(to);
            row.sort_unstable();
        }
    }

    /// The system's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.labels.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The display label of `q`, if set.
    pub fn state_label(&self, q: StateId) -> Option<String> {
        self.labels[q].clone()
    }

    /// Enabled `(symbol, successor)` pairs in state `q`, sorted.
    pub fn enabled(&self, q: StateId) -> Vec<(Symbol, StateId)> {
        self.delta[q]
            .iter()
            .flat_map(|(&a, tos)| tos.iter().map(move |&t| (a, t)))
            .collect()
    }

    /// Whether `q` is a deadlock (no enabled transitions).
    pub fn is_deadlock(&self, q: StateId) -> bool {
        self.delta[q].values().all(|tos| tos.is_empty())
    }

    /// Iterates over all transitions in sorted order.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .flat_map(move |(&a, tos)| tos.iter().map(move |&q| (p, a, q)))
        })
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions().count()
    }

    /// The prefix-closed finite-word language of the system, as an NFA with
    /// every state accepting.
    pub fn to_nfa(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        for _ in 0..self.state_count() {
            out.add_state(true);
        }
        if self.state_count() > 0 {
            out.set_initial(self.initial);
        }
        for (p, a, q) in self.transitions() {
            out.add_transition(p, a, q);
        }
        out
    }

    /// Builds a system from an NFA by forgetting acceptance and keeping the
    /// states reachable from a single merged initial state.
    ///
    /// This is only faithful when the NFA's language is prefix closed and the
    /// NFA has a single initial state; it is meant for round trips with
    /// [`TransitionSystem::to_nfa`] and for adopting determinized abstract
    /// behaviors (whose DFA always has a single initial state).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] when the NFA has no initial
    /// state.
    pub fn from_nfa(nfa: &Nfa) -> Result<TransitionSystem, AutomataError> {
        let &q0 = nfa
            .initial()
            .iter()
            .next()
            .ok_or(AutomataError::InvalidState(0))?;
        let mut ts = TransitionSystem::new(nfa.alphabet().clone());
        for _ in 0..nfa.state_count() {
            ts.add_state();
        }
        ts.set_initial(q0);
        for (p, a, q) in nfa.transitions() {
            ts.add_transition(p, a, q);
        }
        Ok(ts)
    }

    /// Runs the system on a word (following all nondeterministic choices),
    /// returning the set of states reached, or an empty vector when the word
    /// is not a firing sequence.
    pub fn run(&self, word: &[Symbol]) -> Vec<StateId> {
        let mut cur = vec![self.initial];
        for &a in word {
            let mut next: Vec<StateId> = Vec::new();
            for &q in &cur {
                if let Some(tos) = self.delta[q].get(&a) {
                    for &t in tos {
                        if !next.contains(&t) {
                            next.push(t);
                        }
                    }
                }
            }
            next.sort_unstable();
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }

    /// Whether `word` is a firing sequence (i.e. in the language `L`).
    pub fn admits(&self, word: &[Symbol]) -> bool {
        !self.run(word).is_empty()
    }

    /// Synchronous composition of two systems.
    ///
    /// The composite alphabet is the union (in `self`-then-`other` name
    /// order). Shared actions synchronize; exclusive actions interleave. This
    /// mirrors the compositional system construction of Ochsenschläger that
    /// the paper builds on.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for uniformity with
    /// other combinators.
    pub fn compose(&self, other: &TransitionSystem) -> Result<TransitionSystem, AutomataError> {
        let mut names = self.alphabet.names();
        for n in other.alphabet.names() {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        let alphabet = Alphabet::new(names)?;
        // Symbol translation tables into the composite alphabet.
        let lmap: Vec<Symbol> = self
            .alphabet
            .names()
            .iter()
            .map(|n| alphabet.symbol(n).expect("union alphabet"))
            .collect();
        let rmap: Vec<Symbol> = other
            .alphabet
            .names()
            .iter()
            .map(|n| alphabet.symbol(n).expect("union alphabet"))
            .collect();
        let shared: Vec<bool> = alphabet
            .names()
            .iter()
            .map(|n| self.alphabet.symbol(n).is_some() && other.alphabet.symbol(n).is_some())
            .collect();

        let mut out = TransitionSystem::new(alphabet);
        let mut index: BTreeMap<(StateId, StateId), StateId> = BTreeMap::new();
        let mut work = VecDeque::new();
        let s0 = out.add_state();
        index.insert((self.initial, other.initial), s0);
        out.set_initial(s0);
        work.push_back((self.initial, other.initial));
        while let Some((p, q)) = work.pop_front() {
            let id = index[&(p, q)];
            let mut moves: Vec<(Symbol, StateId, StateId)> = Vec::new();
            for (a, p2) in self.enabled(p) {
                let ca = lmap[a.index()];
                if shared[ca.index()] {
                    // Synchronize: the right side must also move on this name.
                    let ra = other
                        .alphabet
                        .symbol(out.alphabet.name(ca))
                        .expect("shared");
                    if let Some(tos) = other.delta[q].get(&ra) {
                        for &q2 in tos {
                            moves.push((ca, p2, q2));
                        }
                    }
                } else {
                    moves.push((ca, p2, q));
                }
            }
            for (a, q2) in other.enabled(q) {
                let ca = rmap[a.index()];
                if !shared[ca.index()] {
                    moves.push((ca, p, q2));
                }
            }
            for (a, p2, q2) in moves {
                let nid = *index.entry((p2, q2)).or_insert_with(|| {
                    let nid = out.add_state();
                    work.push_back((p2, q2));
                    nid
                });
                out.add_transition(id, a, nid);
            }
        }
        Ok(out)
    }

    /// All firing sequences of length at most `max_len` (for tests/examples).
    pub fn firing_sequences_up_to(&self, max_len: usize) -> Vec<Word> {
        self.to_nfa().words_up_to(max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> (TransitionSystem, Symbol, Symbol) {
        let ab = Alphabet::new(["tick", "tock"]).unwrap();
        let tick = ab.symbol("tick").unwrap();
        let tock = ab.symbol("tock").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, tick, s1);
        ts.add_transition(s1, tock, s0);
        (ts, tick, tock)
    }

    #[test]
    fn language_is_prefix_closed() {
        let (ts, tick, tock) = clock();
        let nfa = ts.to_nfa();
        assert!(nfa.is_prefix_closed());
        assert!(ts.admits(&[]));
        assert!(ts.admits(&[tick]));
        assert!(ts.admits(&[tick, tock]));
        assert!(!ts.admits(&[tock]));
    }

    #[test]
    fn roundtrip_via_nfa() {
        let (ts, _, _) = clock();
        let back = TransitionSystem::from_nfa(&ts.to_nfa()).unwrap();
        assert_eq!(ts.state_count(), back.state_count());
        assert_eq!(ts.transition_count(), back.transition_count());
    }

    #[test]
    fn deadlock_detection() {
        let ab = Alphabet::new(["go"]).unwrap();
        let go = ab.symbol("go").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, go, s1);
        assert!(!ts.is_deadlock(s0));
        assert!(ts.is_deadlock(s1));
    }

    #[test]
    fn composition_synchronizes_shared_actions() {
        // Producer: (produce handoff)*, Consumer: (handoff consume)*.
        let pab = Alphabet::new(["produce", "handoff"]).unwrap();
        let cab = Alphabet::new(["handoff", "consume"]).unwrap();
        let (pp, ph) = (
            pab.symbol("produce").unwrap(),
            pab.symbol("handoff").unwrap(),
        );
        let (ch, cc) = (
            cab.symbol("handoff").unwrap(),
            cab.symbol("consume").unwrap(),
        );
        let mut prod = TransitionSystem::new(pab);
        let p0 = prod.add_state();
        let p1 = prod.add_state();
        prod.set_initial(p0);
        prod.add_transition(p0, pp, p1);
        prod.add_transition(p1, ph, p0);
        let mut cons = TransitionSystem::new(cab);
        let c0 = cons.add_state();
        let c1 = cons.add_state();
        cons.set_initial(c0);
        cons.add_transition(c0, ch, c1);
        cons.add_transition(c1, cc, c0);

        let sys = prod.compose(&cons).unwrap();
        let ab = sys.alphabet().clone();
        let produce = ab.symbol("produce").unwrap();
        let handoff = ab.symbol("handoff").unwrap();
        let consume = ab.symbol("consume").unwrap();
        // handoff can only happen after produce, consume only after handoff.
        assert!(sys.admits(&[produce, handoff, consume]));
        assert!(sys.admits(&[produce, handoff, produce, consume]));
        assert!(!sys.admits(&[handoff]));
        assert!(!sys.admits(&[produce, consume]));
        assert_eq!(sys.state_count(), 4);
    }

    #[test]
    fn labeled_states_render() {
        let ab = Alphabet::new(["x"]).unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s = ts.add_labeled_state("idle");
        ts.set_initial(s);
        assert_eq!(ts.state_label(s).as_deref(), Some("idle"));
        assert!(ts.to_dot("g").contains("idle"));
    }
}
