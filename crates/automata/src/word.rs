//! Finite words over an alphabet.

use crate::alphabet::{Alphabet, Symbol};
use crate::error::AutomataError;

/// A finite word: a sequence of symbols.
///
/// This is a plain type alias — words are just symbol vectors; the helpers in
/// this module ([`parse_word`], [`format_word`]) convert between words and
/// whitespace- or dot-separated name strings.
pub type Word = Vec<Symbol>;

/// Parses a word from symbol names separated by whitespace or `.`.
///
/// The empty string denotes the empty word `ε`.
///
/// # Errors
///
/// Returns [`AutomataError::UnknownSymbol`] when a name is not in `alphabet`.
///
/// # Example
///
/// ```
/// use rl_automata::{parse_word, Alphabet};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["lock", "request", "no"])?;
/// let w = parse_word(&ab, "lock.request.no")?;
/// assert_eq!(w.len(), 3);
/// assert_eq!(parse_word(&ab, "")?.len(), 0);
/// # Ok(())
/// # }
/// ```
pub fn parse_word(alphabet: &Alphabet, text: &str) -> Result<Word, AutomataError> {
    text.split(|c: char| c.is_whitespace() || c == '.')
        .filter(|part| !part.is_empty())
        .map(|part| alphabet.require(part))
        .collect()
}

/// Formats a word as dot-separated symbol names; the empty word prints as `ε`.
///
/// # Example
///
/// ```
/// use rl_automata::{format_word, parse_word, Alphabet};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let w = parse_word(&ab, "a b a")?;
/// assert_eq!(format_word(&ab, &w), "a.b.a");
/// assert_eq!(format_word(&ab, &[]), "ε");
/// # Ok(())
/// # }
/// ```
pub fn format_word(alphabet: &Alphabet, word: &[Symbol]) -> String {
    if word.is_empty() {
        return "ε".to_owned();
    }
    word.iter()
        .map(|&s| alphabet.name(s))
        .collect::<Vec<_>>()
        .join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let ab = Alphabet::new(["a", "b", "c"]).unwrap();
        let w = parse_word(&ab, "a.c.b.b").unwrap();
        assert_eq!(format_word(&ab, &w), "a.c.b.b");
    }

    #[test]
    fn whitespace_separators_work() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        assert_eq!(
            parse_word(&ab, "a b").unwrap(),
            parse_word(&ab, "a.b").unwrap()
        );
    }

    #[test]
    fn unknown_symbol_errors() {
        let ab = Alphabet::new(["a"]).unwrap();
        assert!(parse_word(&ab, "a.zz").is_err());
    }
}
