//! Graphviz/DOT rendering of automata, for debugging and documentation.

use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::ts::TransitionSystem;

fn header(out: &mut String, name: &str) {
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
}

impl Nfa {
    /// Renders the automaton in Graphviz DOT syntax.
    ///
    /// Accepting states are doubly circled; initial states have an arrow from
    /// an invisible source.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        header(&mut out, name);
        for q in 0..self.state_count() {
            let shape = if self.is_accepting(q) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{q} [shape={shape}, label=\"{q}\"];");
        }
        for (i, &q) in self.initial().iter().enumerate() {
            let _ = writeln!(out, "  init{i} [shape=none, label=\"\"];");
            let _ = writeln!(out, "  init{i} -> q{q};");
        }
        for (p, a, q) in self.transitions() {
            let _ = writeln!(
                out,
                "  q{p} -> q{q} [label=\"{}\"];",
                self.alphabet().name(a)
            );
        }
        out.push_str("}\n");
        out
    }
}

impl Dfa {
    /// Renders the automaton in Graphviz DOT syntax.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        header(&mut out, name);
        for q in 0..self.state_count() {
            let shape = if self.is_accepting(q) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{q} [shape={shape}, label=\"{q}\"];");
        }
        let _ = writeln!(out, "  init [shape=none, label=\"\"];");
        let _ = writeln!(out, "  init -> q{};", self.initial());
        for (p, a, q) in self.transitions() {
            let _ = writeln!(
                out,
                "  q{p} -> q{q} [label=\"{}\"];",
                self.alphabet().name(a)
            );
        }
        out.push_str("}\n");
        out
    }
}

impl TransitionSystem {
    /// Renders the system in Graphviz DOT syntax; the initial state is shaded
    /// grey like in the paper's figures.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        header(&mut out, name);
        for q in 0..self.state_count() {
            let style = if q == self.initial() {
                ", style=filled, fillcolor=lightgrey"
            } else {
                ""
            };
            let label = self.state_label(q).unwrap_or_else(|| q.to_string());
            let _ = writeln!(out, "  q{q} [label=\"{label}\"{style}];");
        }
        for (p, a, q) in self.transitions() {
            let _ = writeln!(
                out,
                "  q{p} -> q{q} [label=\"{}\"];",
                self.alphabet().name(a)
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Alphabet, Nfa};

    #[test]
    fn dot_contains_all_parts() {
        let ab = Alphabet::new(["go"]).unwrap();
        let g = ab.symbol("go").unwrap();
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(true);
        n.set_initial(q0);
        n.add_transition(q0, g, q1);
        let dot = n.to_dot("demo");
        assert!(dot.contains("digraph demo"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("label=\"go\""));
        assert!(dot.contains("q0 -> q1"));
    }
}
