//! Nondeterministic finite automata over finite words.

use std::collections::{BTreeSet, VecDeque};
use std::hash::Hasher;
use std::sync::Arc;

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::guard::Guard;
use crate::mem::MemFootprint;
use crate::stateset::{FxHasher, Interner, PairTable, StateSet};
use crate::word::Word;
use crate::StateId;

/// Minimum BFS-layer width at which the parallel kernels fan a layer out
/// across the guard's pool; narrower layers are expanded on the calling
/// thread, where per-task overhead would dominate. Purely a performance
/// knob: outputs are identical on both sides of the threshold.
pub(crate) const PAR_LAYER_THRESHOLD: usize = 16;

/// A nondeterministic finite automaton (NFA) over finite words.
///
/// States are dense indices. The transition relation is a flat
/// alphabet-indexed table: per state, one sorted successor list per symbol
/// index, so lookup is two array probes and all iteration is deterministic
/// (symbols in index order, successors ascending).
///
/// An `Nfa` may have several initial states. A word is accepted when some run
/// from an initial state ends in an accepting state.
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Nfa};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let (a, b) = (ab.symbol("a").unwrap(), ab.symbol("b").unwrap());
/// let mut n = Nfa::new(ab);
/// let q0 = n.add_state(true);
/// let q1 = n.add_state(false);
/// n.set_initial(q0);
/// n.add_transition(q0, a, q1);
/// n.add_transition(q1, b, q0);
/// assert!(n.accepts(&[]));
/// assert!(n.accepts(&[a, b]));
/// assert!(!n.accepts(&[a]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    alphabet: Alphabet,
    initial: BTreeSet<StateId>,
    accepting: Vec<bool>,
    /// `delta[q][a.index()]` = sorted, deduplicated successors of `q` on `a`.
    delta: Vec<Vec<Vec<StateId>>>,
}

impl MemFootprint for Nfa {
    fn heap_bytes(&self) -> usize {
        // The alphabet is interned per system (an `Arc` handle) and charged
        // where it was created, so it weighs as a pointer here.
        self.initial.heap_bytes() + self.accepting.heap_bytes() + self.delta.heap_bytes()
    }
}

impl Nfa {
    /// Creates an empty automaton (no states) over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Nfa {
        Nfa {
            alphabet,
            initial: BTreeSet::new(),
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Builds an NFA from raw parts, validating all indices.
    ///
    /// `transitions` is a list of `(from, symbol, to)` triples. This is the
    /// constructor of choice for randomized/property tests.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] for an out-of-range state.
    pub fn from_parts(
        alphabet: Alphabet,
        state_count: usize,
        initial: impl IntoIterator<Item = StateId>,
        accepting: impl IntoIterator<Item = StateId>,
        transitions: impl IntoIterator<Item = (StateId, Symbol, StateId)>,
    ) -> Result<Nfa, AutomataError> {
        let mut nfa = Nfa::new(alphabet);
        for _ in 0..state_count {
            nfa.add_state(false);
        }
        for q in initial {
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            nfa.initial.insert(q);
        }
        for q in accepting {
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            nfa.accepting[q] = true;
        }
        for (p, a, q) in transitions {
            if p >= state_count {
                return Err(AutomataError::InvalidState(p));
            }
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            nfa.add_transition(p, a, q);
        }
        Ok(nfa)
    }

    /// Builds an NFA from transitions that may be labeled `None` (the empty
    /// word `ε`), eliminating the ε-transitions.
    ///
    /// This is the workhorse behind homomorphic images: relabel a machine,
    /// mapping hidden actions to `None`, and call this to get a plain NFA for
    /// the image language.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] for an out-of-range state.
    pub fn from_epsilon_parts(
        alphabet: Alphabet,
        state_count: usize,
        initial: impl IntoIterator<Item = StateId>,
        accepting: impl IntoIterator<Item = StateId>,
        transitions: impl IntoIterator<Item = (StateId, Option<Symbol>, StateId)>,
    ) -> Result<Nfa, AutomataError> {
        let mut eps: Vec<Vec<StateId>> = vec![Vec::new(); state_count];
        let mut real: Vec<Vec<(Symbol, StateId)>> = vec![Vec::new(); state_count];
        for (p, label, q) in transitions {
            if p >= state_count {
                return Err(AutomataError::InvalidState(p));
            }
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            match label {
                Some(sym) => real[p].push((sym, q)),
                None => eps[p].push(q),
            }
        }
        // Transitive ε-closure per state (small machines: BFS per state).
        let closure: Vec<StateSet> = (0..state_count)
            .map(|s| {
                let mut seen = StateSet::with_universe(state_count);
                let mut queue = VecDeque::from([s]);
                seen.insert(s);
                while let Some(p) = queue.pop_front() {
                    for &q in &eps[p] {
                        if seen.insert(q) {
                            queue.push_back(q);
                        }
                    }
                }
                seen
            })
            .collect();

        let accepting: BTreeSet<StateId> = accepting.into_iter().collect();
        for &q in &accepting {
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
        }
        let mut nfa = Nfa::new(alphabet);
        for _ in 0..state_count {
            nfa.add_state(false);
        }
        // A state accepts if its ε-closure meets the accepting set.
        for (s, cl) in closure.iter().enumerate().take(state_count) {
            if cl.iter().any(|q| accepting.contains(&q)) {
                nfa.accepting[s] = true;
            }
        }
        for q in initial {
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            nfa.initial.insert(q);
        }
        // delta'(s, a) = ε-closure targets of real transitions leaving the
        // ε-closure of s.
        for s in 0..state_count {
            for p in closure[s].iter() {
                for &(a, q) in &real[p] {
                    for r in closure[q].iter() {
                        nfa.add_transition(s, a, r);
                    }
                }
            }
        }
        Ok(nfa)
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.accepting.push(accepting);
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        self.accepting.len() - 1
    }

    /// Marks `q` as (the only new) initial state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.initial.insert(q);
    }

    /// Sets whether `q` accepts.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.accepting[q] = accepting;
    }

    /// Adds the transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(from < self.state_count(), "invalid state {from}");
        assert!(to < self.state_count(), "invalid state {to}");
        let row = &mut self.delta[from][symbol.index()];
        if let Err(pos) = row.binary_search(&to) {
            row.insert(pos, to);
        }
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// The set of initial states.
    pub fn initial(&self) -> &BTreeSet<StateId> {
        &self.initial
    }

    /// Whether `q` accepts.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q]
    }

    /// Successors of `q` on `symbol`, in ascending order.
    pub fn successors(&self, q: StateId, symbol: Symbol) -> impl Iterator<Item = StateId> + '_ {
        self.delta[q][symbol.index()].iter().copied()
    }

    /// Sorted successor list of `q` on `symbol`, as a slice.
    pub(crate) fn successor_slice(&self, q: StateId, symbol: Symbol) -> &[StateId] {
        &self.delta[q][symbol.index()]
    }

    /// Iterates over all transitions `(from, symbol, to)` in sorted order.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .flat_map(move |(ai, tos)| tos.iter().map(move |&q| (p, Symbol::from_index(ai), q)))
        })
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions().count()
    }

    /// One simultaneous step of the subset semantics.
    pub fn step(&self, set: &BTreeSet<StateId>, symbol: Symbol) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &q in set {
            next.extend(self.successors(q, symbol));
        }
        next
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut set = self.initial.clone();
        for &a in word {
            if set.is_empty() {
                return false;
            }
            set = self.step(&set, a);
        }
        set.iter().any(|&q| self.accepting[q])
    }

    /// States reachable from the initial states.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.state_count()];
        let mut queue: VecDeque<StateId> = self.initial.iter().copied().collect();
        for &q in &self.initial {
            seen[q] = true;
        }
        while let Some(p) = queue.pop_front() {
            for tos in &self.delta[p] {
                for &q in tos {
                    if !seen[q] {
                        seen[q] = true;
                        queue.push_back(q);
                    }
                }
            }
        }
        seen
    }

    /// States from which an accepting state is reachable (co-reachable).
    pub fn coreachable(&self) -> Vec<bool> {
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.state_count()];
        for (p, _, q) in self.transitions() {
            rev[q].push(p);
        }
        let mut seen = vec![false; self.state_count()];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                seen[q] = true;
                queue.push_back(q);
            }
        }
        while let Some(p) = queue.pop_front() {
            for &r in &rev[p] {
                if !seen[r] {
                    seen[r] = true;
                    queue.push_back(r);
                }
            }
        }
        seen
    }

    /// Removes states that are unreachable or cannot reach acceptance.
    ///
    /// The language is unchanged. Returns the trimmed automaton (possibly with
    /// zero states, when the language is empty).
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable();
        let coreach = self.coreachable();
        let keep: Vec<bool> = reach.iter().zip(&coreach).map(|(&r, &c)| r && c).collect();
        self.restrict(&keep)
    }

    /// Keeps exactly the states with `keep[q] == true`, re-indexing.
    pub fn restrict(&self, keep: &[bool]) -> Nfa {
        let mut map: Vec<Option<StateId>> = vec![None; self.state_count()];
        let mut out = Nfa::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            if keep[q] {
                map[q] = Some(out.add_state(self.accepting[q]));
            }
        }
        for &q in &self.initial {
            if let Some(nq) = map[q] {
                out.initial.insert(nq);
            }
        }
        for (p, a, q) in self.transitions() {
            if let (Some(np), Some(nq)) = (map[p], map[q]) {
                out.add_transition(np, a, nq);
            }
        }
        out
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        let reach = self.reachable();
        !(0..self.state_count()).any(|q| reach[q] && self.accepting[q])
    }

    /// A shortest accepted word, when the language is non-empty.
    pub fn shortest_accepted(&self) -> Option<Word> {
        // BFS over states, remembering the first-discovered path.
        let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for &q in &self.initial {
            seen[q] = true;
            queue.push_back(q);
        }
        let mut hit = None;
        'bfs: while let Some(p) = queue.pop_front() {
            if self.accepting[p] {
                hit = Some(p);
                break 'bfs;
            }
            for (ai, tos) in self.delta[p].iter().enumerate() {
                let a = Symbol::from_index(ai);
                for &q in tos {
                    if !seen[q] {
                        seen[q] = true;
                        parent[q] = Some((p, a));
                        queue.push_back(q);
                    }
                }
            }
        }
        let mut q = hit?;
        let mut word = Vec::new();
        while let Some((p, a)) = parent[q] {
            word.push(a);
            q = p;
        }
        word.reverse();
        Some(word)
    }

    /// Marks every co-reachable state accepting: the language becomes the set
    /// of *prefixes* of the original language, `pre(L)`.
    pub fn prefix_closure(&self) -> Nfa {
        let coreach = self.coreachable();
        let mut out = self.clone();
        for (q, &live) in coreach.iter().enumerate() {
            if live {
                out.accepting[q] = true;
            }
        }
        out
    }

    /// Whether the language is prefix closed (`L = pre(L)`).
    pub fn is_prefix_closed(&self) -> bool {
        self.is_prefix_closed_with(&Guard::unlimited())
            .expect("an unlimited guard never trips")
    }

    /// [`Nfa::is_prefix_closed`] under a resource [`Guard`] (the check
    /// determinizes the language twice).
    ///
    /// # Errors
    ///
    /// Returns a budget error when the guard trips during determinization.
    pub fn is_prefix_closed_with(&self, guard: &Guard) -> Result<bool, AutomataError> {
        let _span = guard.span("prefix_closed");
        Ok(crate::equiv::dfa_equivalent(
            &self.determinize_with(guard)?,
            &self.prefix_closure().determinize_with(guard)?,
        ))
    }

    /// Subset construction: an equivalent [`Dfa`].
    ///
    /// Only subsets reachable from the initial subset are materialized. The
    /// empty subset is never materialized (the DFA is partial).
    ///
    /// Worst-case exponential (`2^n` subsets); use
    /// [`Nfa::determinize_with`] to bound the blow-up.
    pub fn determinize(&self) -> Dfa {
        self.determinize_with(&Guard::unlimited())
            .expect("an unlimited guard never trips")
    }

    /// Subset construction under a resource [`Guard`].
    ///
    /// Each materialized subset state and DFA transition is charged against
    /// the guard's budget, and the wall clock/cancellation flag is polled
    /// periodically. When the guard carries an [`crate::OpCache`], a repeated
    /// determinization of a structurally equal NFA is answered from the memo
    /// table (and counted as a cache hit) instead of being re-run.
    ///
    /// # Errors
    ///
    /// [`AutomataError::BudgetExceeded`] or [`AutomataError::Cancelled`]
    /// when the guard trips; the error carries partial diagnostics.
    pub fn determinize_with(&self, guard: &Guard) -> Result<Dfa, AutomataError> {
        if guard.op_cache().is_none() {
            return self.determinize_inner(guard);
        }
        let hash = self.structural_hash();
        let entry = guard.cached::<(Arc<Nfa>, Dfa), AutomataError>(
            "nfa_determinize",
            hash,
            |e| *e.0 == *self,
            || Ok((guard.operand(hash, self), self.determinize_inner(guard)?)),
        )?;
        Ok(entry.1.clone())
    }

    fn determinize_inner(&self, guard: &Guard) -> Result<Dfa, AutomataError> {
        let _span = guard.span("determinize");
        let n = self.state_count();
        let mut index: Interner<StateSet> = Interner::new();
        let mut dfa = Dfa::new(self.alphabet.clone());

        let start: StateSet = self.initial.iter().copied().collect();
        guard.charge_state()?;
        let q0 = dfa.add_state(start.iter().any(|q| self.accepting[q]));
        index.intern(start);
        dfa.set_initial(q0);

        if let Some(pool) = guard.par_pool() {
            let pool = pool.clone();
            return self.determinize_layered(guard, &pool, index, dfa, q0);
        }

        let mut next = StateSet::with_universe(n);
        let mut work = VecDeque::from([q0]);
        while let Some(d) = work.pop_front() {
            guard.note_frontier(work.len());
            let subset = index.key(d).clone();
            for a in self.alphabet.symbols() {
                next.clear();
                for q in subset.iter() {
                    for &q2 in self.successor_slice(q, a) {
                        next.insert(q2);
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let nd = match index.get(&next) {
                    Some(nd) => nd,
                    None => {
                        guard.charge_state()?;
                        let nd = dfa.add_state(next.iter().any(|q| self.accepting[q]));
                        index.intern(next.clone());
                        work.push_back(nd);
                        nd
                    }
                };
                guard.charge_transition()?;
                dfa.set_transition(d, a, nd);
            }
        }
        Ok(dfa)
    }

    /// Layer-synchronous subset construction: the parallel twin of the FIFO
    /// loop in [`Nfa::determinize_inner`], bit-for-bit equivalent to it.
    ///
    /// A FIFO worklist processes subset states in discovery (= id) order, so
    /// the queue is a sequence of BFS layers. Each layer's successor rows are
    /// *pure* computations — workers expand them across the pool (polling
    /// the guard's probe so cancellation/deadline stops them) — while all
    /// effects (interning, state numbering, every `charge_*` call,
    /// `note_frontier`) happen in a sequential merge that walks the rows in
    /// exactly the order the FIFO loop would have: emitted DFAs, charge
    /// sequences, and budget trip points are identical for every thread
    /// count. See `DESIGN.md` §10.
    fn determinize_layered(
        &self,
        guard: &Guard,
        pool: &Arc<crate::par::Pool>,
        mut index: Interner<StateSet>,
        mut dfa: Dfa,
        q0: StateId,
    ) -> Result<Dfa, AutomataError> {
        /// Row type a worker produces for one subset: per symbol, the
        /// successor subset and its acceptance flag (`None` for the empty
        /// set — the sequential loop emits no transition there).
        type Row = Vec<Option<(StateSet, bool)>>;

        let shared = Arc::new(self.clone());
        let probe = guard.probe();
        let symbols: Vec<Symbol> = self.alphabet.symbols().collect();
        let mut layer: Vec<StateId> = vec![q0];
        while !layer.is_empty() {
            guard.trace_instant("determinize-layer", Some(("width", layer.len() as u64)));
            let subsets: Arc<Vec<StateSet>> =
                Arc::new(layer.iter().map(|&d| index.key(d).clone()).collect());
            let expand = {
                let nfa = shared.clone();
                let probe = probe.clone();
                let symbols = symbols.clone();
                move |i: usize| -> Result<Row, AutomataError> {
                    probe.check()?;
                    let mut row = Vec::with_capacity(symbols.len());
                    let mut next = StateSet::with_universe(nfa.state_count());
                    for &a in &symbols {
                        next.clear();
                        for q in subsets[i].iter() {
                            for &q2 in nfa.successor_slice(q, a) {
                                next.insert(q2);
                            }
                        }
                        row.push(if next.is_empty() {
                            None
                        } else {
                            let acc = next.iter().any(|q| nfa.accepting[q]);
                            Some((next.clone(), acc))
                        });
                    }
                    Ok(row)
                }
            };
            let rows: Vec<Result<Row, AutomataError>> = if layer.len() >= PAR_LAYER_THRESHOLD {
                pool.map_indexed(layer.len(), Arc::new(expand))
            } else {
                (0..layer.len()).map(expand).collect()
            };

            // Sequential merge, in FIFO order: at the moment the FIFO loop
            // pops layer item `li`, its queue holds the rest of this layer
            // plus the next-layer states discovered so far.
            let m = layer.len();
            let mut next_layer: Vec<StateId> = Vec::new();
            for (li, (&d, row)) in layer.iter().zip(rows).enumerate() {
                guard.note_frontier((m - 1 - li) + next_layer.len());
                for (&a, cell) in symbols.iter().zip(row?) {
                    let Some((next, acc)) = cell else { continue };
                    let nd = match index.get(&next) {
                        Some(nd) => nd,
                        None => {
                            guard.charge_state()?;
                            let nd = dfa.add_state(acc);
                            index.intern(next);
                            next_layer.push(nd);
                            nd
                        }
                    };
                    guard.charge_transition()?;
                    dfa.set_transition(d, a, nd);
                }
            }
            layer = next_layer;
        }
        Ok(dfa)
    }

    /// A deterministic structural hash of the automaton (alphabet names,
    /// state count, initial/accepting sets, and the full transition table).
    ///
    /// Structurally equal automata hash equal; the converse can fail, so the
    /// hash is only ever a *key* — cache lookups re-check full equality.
    pub fn structural_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.state_count());
        for (_, name) in self.alphabet.iter() {
            h.write(name.as_bytes());
        }
        for &q in &self.initial {
            h.write_usize(q);
        }
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                h.write_usize(q);
            }
        }
        for (p, a, q) in self.transitions() {
            h.write_usize(p);
            h.write_usize(a.index());
            h.write_usize(q);
        }
        h.finish()
    }

    /// Product automaton for the intersection `L(self) ∩ L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn intersection(&self, other: &Nfa) -> Result<Nfa, AutomataError> {
        self.intersection_with(other, &Guard::unlimited())
    }

    /// Intersection product under a resource [`Guard`].
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets
    /// differ, [`AutomataError::BudgetExceeded`]/[`AutomataError::Cancelled`]
    /// when the guard trips.
    pub fn intersection_with(&self, other: &Nfa, guard: &Guard) -> Result<Nfa, AutomataError> {
        let _span = guard.span("nfa_intersection");
        self.alphabet.check_compatible(&other.alphabet)?;
        let mut index = PairTable::new(self.state_count(), other.state_count());
        let mut out = Nfa::new(self.alphabet.clone());
        let mut work = VecDeque::new();
        for &p in &self.initial {
            for &q in &other.initial {
                guard.charge_state()?;
                let id = out.add_state(self.accepting[p] && other.accepting[q]);
                index.set(p, q, id);
                out.initial.insert(id);
                work.push_back((p, q));
            }
        }
        while let Some((p, q)) = work.pop_front() {
            guard.note_frontier(work.len());
            let id = index.get(p, q).expect("worklist pairs are interned");
            for a in self.alphabet.symbols() {
                for &p2 in self.successor_slice(p, a) {
                    for &q2 in other.successor_slice(q, a) {
                        let nid = match index.get(p2, q2) {
                            Some(nid) => nid,
                            None => {
                                guard.charge_state()?;
                                let nid = out.add_state(self.accepting[p2] && other.accepting[q2]);
                                index.set(p2, q2, nid);
                                work.push_back((p2, q2));
                                nid
                            }
                        };
                        guard.charge_transition()?;
                        out.add_transition(id, a, nid);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Disjoint union: `L(self) ∪ L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn union(&self, other: &Nfa) -> Result<Nfa, AutomataError> {
        self.alphabet.check_compatible(&other.alphabet)?;
        let mut out = self.clone();
        let offset = out.state_count();
        for q in 0..other.state_count() {
            out.add_state(other.accepting[q]);
        }
        for &q in &other.initial {
            out.initial.insert(q + offset);
        }
        for (p, a, q) in other.transitions() {
            out.add_transition(p + offset, a, q + offset);
        }
        Ok(out)
    }

    /// The reversal automaton: accepts `w` iff `self` accepts `w` reversed.
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            out.add_state(self.initial.contains(&q));
        }
        for q in 0..self.state_count() {
            if self.accepting[q] {
                out.initial.insert(q);
            }
        }
        for (p, a, q) in self.transitions() {
            out.add_transition(q, a, p);
        }
        out
    }

    /// Enumerates all accepted words of length at most `max_len`, in
    /// length-lexicographic order. Exponential; intended for tests.
    pub fn words_up_to(&self, max_len: usize) -> Vec<Word> {
        let mut out = Vec::new();
        let mut layer: Vec<(Word, BTreeSet<StateId>)> = vec![(Vec::new(), self.initial.clone())];
        if self.initial.iter().any(|&q| self.accepting[q]) {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next_layer = Vec::new();
            for (w, set) in &layer {
                for a in self.alphabet.symbols() {
                    let next = self.step(set, a);
                    if next.is_empty() {
                        continue;
                    }
                    let mut w2 = w.clone();
                    w2.push(a);
                    if next.iter().any(|&q| self.accepting[q]) {
                        out.push(w2.clone());
                    }
                    next_layer.push((w2, next));
                }
            }
            layer = next_layer;
            if layer.is_empty() {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Budget;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        (ab, a, b)
    }

    /// L = (ab)*
    fn ab_star() -> Nfa {
        let (ab, a, b) = ab2();
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(true);
        let q1 = n.add_state(false);
        n.set_initial(q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, b, q0);
        n
    }

    #[test]
    fn accepts_basic() {
        let (_, a, b) = ab2();
        let n = ab_star();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[a, b]));
        assert!(n.accepts(&[a, b, a, b]));
        assert!(!n.accepts(&[b]));
        assert!(!n.accepts(&[a, a]));
    }

    #[test]
    fn determinize_agrees_on_words() {
        let n = ab_star();
        let d = n.determinize();
        for w in n.words_up_to(5) {
            assert!(d.accepts(&w));
        }
        let (_, a, b) = ab2();
        assert!(!d.accepts(&[b, a]));
        assert!(!d.accepts(&[a]));
    }

    #[test]
    fn trim_preserves_language() {
        let (ab, a, b) = ab2();
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(true);
        let dead = n.add_state(false); // unreachable-from-acceptance sink
        n.set_initial(q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q0, b, dead);
        n.add_transition(dead, b, dead);
        let t = n.trim();
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts(&[a]));
        assert!(!t.accepts(&[b]));
    }

    #[test]
    fn prefix_closure_yields_prefixes() {
        let (ab, a, b) = ab2();
        // L = { ab } exactly.
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        n.set_initial(q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, b, q2);
        assert!(!n.is_prefix_closed());
        let p = n.prefix_closure();
        assert!(p.accepts(&[]));
        assert!(p.accepts(&[a]));
        assert!(p.accepts(&[a, b]));
        assert!(!p.accepts(&[b]));
        assert!(p.is_prefix_closed());
    }

    #[test]
    fn intersection_and_union() {
        let (ab, a, b) = ab2();
        let star = ab_star();
        // M = words of even length
        let mut even = Nfa::new(ab);
        let e0 = even.add_state(true);
        let e1 = even.add_state(false);
        even.set_initial(e0);
        for s in [a, b] {
            even.add_transition(e0, s, e1);
            even.add_transition(e1, s, e0);
        }
        let inter = star.intersection(&even).unwrap();
        // (ab)* is all even length, so intersection == (ab)*.
        assert!(crate::equiv::dfa_equivalent(
            &inter.determinize(),
            &star.determinize()
        ));
        let uni = star.union(&even).unwrap();
        assert!(uni.accepts(&[b, b]));
        assert!(uni.accepts(&[a, b]));
        assert!(!uni.accepts(&[a]));
    }

    #[test]
    fn reverse_reverses() {
        let (ab, a, b) = ab2();
        // L = a.b*
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(true);
        n.set_initial(q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, b, q1);
        let r = n.reverse();
        assert!(r.accepts(&[a]));
        assert!(r.accepts(&[b, b, a]));
        assert!(!r.accepts(&[a, b]));
    }

    #[test]
    fn epsilon_elimination() {
        let (ab, a, b) = ab2();
        // Machine: q0 --a--> q1 --ε--> q2 --b--> q3(acc), q0 --ε--> q2.
        let n = Nfa::from_epsilon_parts(
            ab,
            4,
            [0],
            [3],
            [(0, Some(a), 1), (1, None, 2), (2, Some(b), 3), (0, None, 2)],
        )
        .unwrap();
        assert!(n.accepts(&[a, b]));
        assert!(n.accepts(&[b]));
        assert!(!n.accepts(&[a]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn epsilon_acceptance_through_closure() {
        let (ab, a, _) = ab2();
        // q0 --a--> q1 --ε--> q2(acc): "a" must be accepted.
        let n = Nfa::from_epsilon_parts(ab, 3, [0], [2], [(0, Some(a), 1), (1, None, 2)]).unwrap();
        assert!(n.accepts(&[a]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn shortest_accepted_is_shortest() {
        let (ab, a, b) = ab2();
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        n.set_initial(q0);
        n.add_transition(q0, a, q1);
        n.add_transition(q1, a, q2);
        n.add_transition(q0, b, q2);
        assert_eq!(n.shortest_accepted().unwrap(), vec![b]);
    }

    #[test]
    fn empty_language_detected() {
        let (ab, a, _) = ab2();
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        n.set_initial(q0);
        n.add_transition(q0, a, q0);
        assert!(n.is_empty_language());
        assert_eq!(n.shortest_accepted(), None);
    }

    #[test]
    fn from_parts_validates() {
        let (ab, a, _) = ab2();
        let err = Nfa::from_parts(ab, 2, [0], [5], [(0, a, 1)]).unwrap_err();
        assert_eq!(err, AutomataError::InvalidState(5));
    }

    #[test]
    fn words_up_to_enumerates_in_order() {
        let (_, a, b) = ab2();
        let n = ab_star();
        let ws = n.words_up_to(4);
        assert_eq!(ws, vec![vec![], vec![a, b], vec![a, b, a, b]]);
    }

    /// The "nth symbol from the end is an a" NFA: n+1 states, 2^n subset
    /// states after determinization.
    fn nth_from_end(n: usize) -> Nfa {
        let (ab, a, b) = ab2();
        let mut nfa = Nfa::new(ab);
        let q0 = nfa.add_state(false);
        nfa.set_initial(q0);
        nfa.add_transition(q0, a, q0);
        nfa.add_transition(q0, b, q0);
        let mut prev = q0;
        for i in 0..n {
            let q = nfa.add_state(i == n - 1);
            if prev == q0 {
                nfa.add_transition(q0, a, q);
            } else {
                nfa.add_transition(prev, a, q);
                nfa.add_transition(prev, b, q);
            }
            prev = q;
        }
        nfa
    }

    #[test]
    fn tiny_state_budget_trips_subset_construction_deterministically() {
        let nfa = nth_from_end(12); // 2^12 = 4096 subset states
        let guard = Guard::new(Budget::unlimited().with_max_states(100));
        let err = nfa.determinize_with(&guard).unwrap_err();
        match &err {
            AutomataError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => {
                assert_eq!(*resource, crate::guard::Resource::States);
                assert_eq!(*limit, 100);
                assert_eq!(*spent, 101);
                assert_eq!(partial.states, 101);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Deterministic: a second run trips at exactly the same point
        // (elapsed wall-clock aside).
        let guard2 = Guard::new(Budget::unlimited().with_max_states(100));
        match (nfa.determinize_with(&guard2).unwrap_err(), err) {
            (
                AutomataError::BudgetExceeded {
                    resource: r2,
                    spent: s2,
                    limit: l2,
                    partial: p2,
                },
                AutomataError::BudgetExceeded {
                    resource: r1,
                    spent: s1,
                    limit: l1,
                    partial: p1,
                },
            ) => {
                assert_eq!((r2, s2, l2), (r1, s1, l1));
                assert_eq!(
                    (p2.states, p2.transitions, p2.frontier),
                    (p1.states, p1.transitions, p1.frontier)
                );
            }
            other => panic!("expected two BudgetExceeded errors, got {other:?}"),
        }
    }

    #[test]
    fn sufficient_budget_matches_unbudgeted_result() {
        let nfa = nth_from_end(6);
        let guard = Guard::new(Budget::unlimited().with_max_states(1 << 10));
        let budgeted = nfa.determinize_with(&guard).unwrap();
        assert!(crate::equiv::dfa_equivalent(&budgeted, &nfa.determinize()));
    }

    #[test]
    fn parallel_determinize_is_bit_for_bit_sequential() {
        use crate::par::Pool;
        use rl_obs::{Metric, MetricsRegistry};
        // Wide enough (2^10 subset states) to exercise the pool path well
        // past PAR_LAYER_THRESHOLD.
        let nfa = nth_from_end(10);
        let run = |pool: Option<Arc<Pool>>| {
            let m = MetricsRegistry::new();
            let mut guard = Guard::unlimited().with_metrics(m.clone());
            if let Some(pool) = pool {
                guard = guard.with_pool(pool);
            }
            let dfa = nfa.determinize_with(&guard).unwrap();
            (
                dfa,
                m.total(Metric::States),
                m.total(Metric::Transitions),
                m.total(Metric::GuardCharges),
            )
        };
        let seq = run(None);
        for threads in [2, 4] {
            let par = run(Some(Arc::new(Pool::new(threads))));
            // Structural equality — same state numbering, same transition
            // tables — not just language equivalence; and the deterministic
            // counters agree exactly.
            assert_eq!(par.0, seq.0, "{threads} threads");
            assert_eq!((par.1, par.2, par.3), (seq.1, seq.2, seq.3));
        }
    }

    #[test]
    fn parallel_budget_trip_matches_sequential_trip_point() {
        use crate::par::Pool;
        let nfa = nth_from_end(12);
        let trip = |pool: Option<Arc<Pool>>| {
            let mut guard = Guard::new(Budget::unlimited().with_max_states(100));
            if let Some(pool) = pool {
                guard = guard.with_pool(pool);
            }
            match nfa.determinize_with(&guard).unwrap_err() {
                AutomataError::BudgetExceeded { spent, partial, .. } => {
                    (spent, partial.states, partial.transitions, partial.frontier)
                }
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        };
        let seq = trip(None);
        let par = trip(Some(Arc::new(Pool::new(4))));
        assert_eq!(par, seq, "budget trips at the same charge, same frontier");
    }
}
