//! JSON persistence (via the in-tree `rl-json` crate).
//!
//! Machines serialize with a stable, human-readable shape — symbols by
//! index, transitions as triples — so the encodings survive internal
//! representation changes:
//!
//! ```json
//! {
//!   "alphabet": ["a", "b"],
//!   "state_count": 2,
//!   "initial": [0],
//!   "accepting": [1],
//!   "transitions": [[0, 0, 1], [1, 1, 0]]
//! }
//! ```
//!
//! Deserialization re-validates every index through the ordinary
//! constructors, so a corrupted document cannot produce an inconsistent
//! machine.

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::ts::TransitionSystem;

impl ToJson for Alphabet {
    fn to_json(&self) -> Json {
        self.names().to_json()
    }
}

impl FromJson for Alphabet {
    fn from_json(value: &Json) -> Result<Alphabet, JsonError> {
        let names = Vec::<String>::from_json(value)?;
        Alphabet::new(names).map_err(JsonError::custom)
    }
}

impl ToJson for Symbol {
    fn to_json(&self) -> Json {
        self.index().to_json()
    }
}

impl FromJson for Symbol {
    fn from_json(value: &Json) -> Result<Symbol, JsonError> {
        Ok(Symbol::from_index(usize::from_json(value)?))
    }
}

fn symbol_triples(
    transitions: impl Iterator<Item = (usize, Symbol, usize)>,
) -> Vec<(usize, usize, usize)> {
    transitions.map(|(p, a, q)| (p, a.index(), q)).collect()
}

impl ToJson for Nfa {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("alphabet", self.alphabet().names())
            .field("state_count", self.state_count())
            .field(
                "initial",
                self.initial().iter().copied().collect::<Vec<_>>(),
            )
            .field(
                "accepting",
                (0..self.state_count())
                    .filter(|&q| self.is_accepting(q))
                    .collect::<Vec<_>>(),
            )
            .field("transitions", symbol_triples(self.transitions()))
            .build()
    }
}

impl FromJson for Nfa {
    fn from_json(value: &Json) -> Result<Nfa, JsonError> {
        let alphabet = Alphabet::from_json(value.field("alphabet")?)?;
        let state_count = usize::from_json(value.field("state_count")?)?;
        let initial = Vec::<usize>::from_json(value.field("initial")?)?;
        let accepting = Vec::<usize>::from_json(value.field("accepting")?)?;
        let transitions = Vec::<(usize, usize, usize)>::from_json(value.field("transitions")?)?;
        let k = alphabet.len();
        for &(_, a, _) in &transitions {
            if a >= k {
                return Err(JsonError::custom(format!("invalid symbol {a}")));
            }
        }
        Nfa::from_parts(
            alphabet,
            state_count,
            initial,
            accepting,
            transitions
                .into_iter()
                .map(|(p, a, q)| (p, Symbol::from_index(a), q)),
        )
        .map_err(JsonError::custom)
    }
}

impl ToJson for Dfa {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("alphabet", self.alphabet().names())
            .field("state_count", self.state_count())
            .field("initial", self.initial())
            .field(
                "accepting",
                (0..self.state_count())
                    .filter(|&q| self.is_accepting(q))
                    .collect::<Vec<_>>(),
            )
            .field("transitions", symbol_triples(self.transitions()))
            .build()
    }
}

impl FromJson for Dfa {
    fn from_json(value: &Json) -> Result<Dfa, JsonError> {
        let alphabet = Alphabet::from_json(value.field("alphabet")?)?;
        let state_count = usize::from_json(value.field("state_count")?)?;
        let initial = usize::from_json(value.field("initial")?)?;
        let accepting = Vec::<usize>::from_json(value.field("accepting")?)?;
        let transitions = Vec::<(usize, usize, usize)>::from_json(value.field("transitions")?)?;
        let k = alphabet.len();
        // Reject duplicate transitions per (state, symbol): a DFA document
        // with conflicting edges is corrupt, not "last one wins".
        let mut seen = std::collections::BTreeSet::new();
        for &(p, a, _) in &transitions {
            if a >= k {
                return Err(JsonError::custom(format!("invalid symbol {a}")));
            }
            if !seen.insert((p, a)) {
                return Err(JsonError::custom(format!(
                    "duplicate transition from state {p} on symbol {a}"
                )));
            }
        }
        Dfa::from_parts(
            alphabet,
            state_count,
            initial,
            accepting,
            transitions
                .into_iter()
                .map(|(p, a, q)| (p, Symbol::from_index(a), q)),
        )
        .map_err(JsonError::custom)
    }
}

impl ToJson for TransitionSystem {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("alphabet", self.alphabet().names())
            .field("initial", self.initial())
            .field(
                "labels",
                (0..self.state_count())
                    .map(|q| self.state_label(q))
                    .collect::<Vec<_>>(),
            )
            .field("transitions", symbol_triples(self.transitions()))
            .build()
    }
}

impl FromJson for TransitionSystem {
    fn from_json(value: &Json) -> Result<TransitionSystem, JsonError> {
        let alphabet = Alphabet::from_json(value.field("alphabet")?)?;
        let initial = usize::from_json(value.field("initial")?)?;
        let labels = Vec::<Option<String>>::from_json(value.field("labels")?)?;
        let transitions = Vec::<(usize, usize, usize)>::from_json(value.field("transitions")?)?;
        let n = labels.len();
        let mut ts = TransitionSystem::new(alphabet.clone());
        for label in &labels {
            match label {
                Some(text) => ts.add_labeled_state(text.clone()),
                None => ts.add_state(),
            };
        }
        if initial >= n {
            return Err(JsonError::custom(format!(
                "initial state {initial} out of range"
            )));
        }
        ts.set_initial(initial);
        for (p, a, q) in transitions {
            if p >= n || q >= n || a >= alphabet.len() {
                return Err(JsonError::custom(format!(
                    "transition ({p}, {a}, {q}) out of range"
                )));
            }
            ts.add_transition(p, Symbol::from_index(a), q);
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    // Round-trip tests live in the umbrella crate's tests/serde_roundtrip.rs;
    // here we only check that the impls exist for every persistent type.
    use super::*;

    fn assert_json<T: ToJson + FromJson>() {}

    #[test]
    fn impls_exist() {
        assert_json::<Alphabet>();
        assert_json::<Symbol>();
        assert_json::<Nfa>();
        assert_json::<Dfa>();
        assert_json::<TransitionSystem>();
    }
}
