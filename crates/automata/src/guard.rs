//! Execution governance for potentially exponential constructions: resource
//! [`Budget`]s, wall-clock deadlines, and cooperative cancellation.
//!
//! Every worst-case-exponential procedure in this workspace (subset
//! construction, products, Büchi complementation, the simplicity check, …)
//! has a `*_with(&Guard)` variant that charges each materialized state and
//! transition against a [`Budget`] and periodically consults the wall clock
//! and a [`CancelToken`]. When a limit is hit the construction stops with
//! [`AutomataError::BudgetExceeded`] carrying a [`Progress`] snapshot
//! (states explored, frontier size, elapsed time) instead of looping or
//! exhausting memory. The un-suffixed entry points delegate to the guarded
//! ones with [`Guard::unlimited`], so existing callers are unaffected.
//!
//! A single [`Guard`] is intended to be threaded through *all* phases of one
//! logical check, so the budget covers the end-to-end run rather than each
//! construction separately.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use rl_automata::{Budget, Guard};
//!
//! let budget = Budget::unlimited()
//!     .with_max_states(10_000)
//!     .with_deadline(Duration::from_secs(5));
//! let guard = Guard::new(budget);
//! assert!(guard.charge_state().is_ok());
//! assert_eq!(guard.progress().states, 1);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rl_obs::{HistogramRegistry, Metric, MetricsRegistry, Span};

use crate::error::AutomataError;
use crate::opcache::OpCache;
use crate::par::Pool;

/// The resource dimensions a [`Budget`] can cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Materialized automaton states.
    States,
    /// Materialized transitions.
    Transitions,
    /// Wall-clock time (reported in milliseconds).
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::States => write!(f, "states"),
            Resource::Transitions => write!(f, "transitions"),
            Resource::WallClock => write!(f, "wall-clock milliseconds"),
        }
    }
}

/// Declarative resource limits for a run of the decision procedures.
///
/// `None` in a field means "unlimited". Budgets are plain data; attach one
/// to a [`Guard`] to enforce it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole guarded run.
    pub deadline: Option<Duration>,
    /// Cap on states materialized across all guarded constructions.
    pub max_states: Option<usize>,
    /// Cap on transitions materialized across all guarded constructions.
    pub max_transitions: Option<usize>,
}

impl Budget {
    /// A budget with no limits at all.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            max_states: None,
            max_transitions: None,
        }
    }

    /// Returns the budget with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the budget with a cap on materialized states.
    pub fn with_max_states(mut self, max_states: usize) -> Budget {
        self.max_states = Some(max_states);
        self
    }

    /// Returns the budget with a cap on materialized transitions.
    pub fn with_max_transitions(mut self, max_transitions: usize) -> Budget {
        self.max_transitions = Some(max_transitions);
        self
    }

    /// Whether no limit is set in any dimension.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_states.is_none() && self.max_transitions.is_none()
    }
}

/// A shared flag for cooperative cancellation.
///
/// Clone the token, hand one clone to the checking thread (inside a
/// [`Guard`]) and keep the other; calling [`CancelToken::cancel`] makes the
/// next guard check fail with [`AutomataError::Cancelled`].
///
/// # Example
///
/// ```
/// use rl_automata::{Budget, CancelToken, Guard};
///
/// let token = CancelToken::new();
/// let guard = Guard::with_cancel(Budget::unlimited(), token.clone());
/// assert!(guard.check_now().is_ok());
/// token.cancel();
/// assert!(guard.check_now().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; all guards holding this token trip at their
    /// next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Snapshot of the work a guarded run had performed when it was interrupted
/// (or queried): the partial diagnostics carried by
/// [`AutomataError::BudgetExceeded`] and [`AutomataError::Cancelled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    /// States materialized so far.
    pub states: usize,
    /// Transitions materialized so far.
    pub transitions: usize,
    /// Size of the active worklist/frontier at the last report.
    pub frontier: usize,
    /// Wall-clock time since the guard was created.
    pub elapsed: Duration,
    /// Slash-joined path of the phase that was active when the snapshot was
    /// taken (e.g. `check/relative_liveness/determinize`), when the guard
    /// had a [`MetricsRegistry`] attached and a span was open — so
    /// budget-exhaustion reports name the phase that blew the budget, not
    /// just global counters.
    pub phase: Option<String>,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions explored (frontier {}) in {:?}",
            self.states, self.transitions, self.frontier, self.elapsed
        )?;
        if let Some(phase) = &self.phase {
            write!(f, ", in phase {phase}")?;
        }
        Ok(())
    }
}

/// The budget-enforcement core shared by a [`Guard`] and its
/// [`GuardProbe`]s: the limits, the clock, the cancel token, and atomic
/// spend counters.
///
/// Counters are relaxed atomics so one budget governs every worker of a
/// parallel kernel: the merge thread charges, workers only *read* (through a
/// probe) to decorate their deadline/cancellation errors with accurate
/// partial diagnostics. On the sequential path the atomics are uncontended,
/// so charging costs the same few nanoseconds as the old `Cell` fields.
#[derive(Debug)]
struct GuardCore {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    states: AtomicUsize,
    transitions: AtomicUsize,
    frontier: AtomicUsize,
    until_clock_check: AtomicU32,
}

impl GuardCore {
    fn progress(&self, phase: Option<String>) -> Progress {
        Progress {
            states: self.states.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            frontier: self.frontier.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
            phase,
        }
    }

    /// Polls the cancel token and the wall-clock deadline; `phase` is
    /// evaluated only when building an error's diagnostics.
    fn check_now(&self, phase: impl FnOnce() -> Option<String>) -> Result<(), AutomataError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(AutomataError::Cancelled(self.progress(phase())));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(AutomataError::BudgetExceeded {
                    resource: Resource::WallClock,
                    spent: elapsed.as_millis() as u64,
                    limit: deadline.as_millis() as u64,
                    partial: self.progress(phase()),
                });
            }
        }
        Ok(())
    }
}

/// A `Send + Sync` window onto a [`Guard`]'s core, for the workers of a
/// parallel kernel.
///
/// Workers hold a probe instead of the guard itself: [`GuardProbe::check`]
/// polls the shared deadline and cancel token (like [`Guard::check_now`],
/// without touching metrics — those stay on the owning thread), so a single
/// `--timeout` or [`CancelToken`] observably stops every worker. Cloning is
/// an `Arc` bump.
#[derive(Debug, Clone)]
pub struct GuardProbe {
    core: Arc<GuardCore>,
}

impl GuardProbe {
    /// Immediately polls the shared cancel token and wall-clock deadline.
    ///
    /// # Errors
    ///
    /// [`AutomataError::Cancelled`] when the token has been cancelled,
    /// [`AutomataError::BudgetExceeded`] when the deadline has passed — both
    /// carrying the core's current [`Progress`] (phase-less: the phase span
    /// lives with the owning [`Guard`]).
    pub fn check(&self) -> Result<(), AutomataError> {
        self.core.check_now(|| None)
    }

    /// Whether polling can ever fail: probes of an undeadlined,
    /// uncancellable guard need not be consulted at all.
    pub fn is_armed(&self) -> bool {
        self.core.cancel.is_some() || self.core.budget.deadline.is_some()
    }

    /// A phase-less snapshot of the shared counters — the live-progress
    /// feed: heartbeat reporters sample this off-thread while the owning
    /// guard keeps checking.
    pub fn progress(&self) -> Progress {
        self.core.progress(None)
    }

    /// The budget the shared core enforces, for reporting consumed
    /// fractions against its limits.
    pub fn budget(&self) -> &Budget {
        &self.core.budget
    }

    /// One heartbeat sample of the shared atomics: progress plus the
    /// budget limits that are set, in the serialization shared by
    /// `--progress` and the serve wire stream. Cache residency and the
    /// job id are the caller's to fill in — the probe knows neither.
    pub fn heartbeat(&self) -> rl_obs::Heartbeat {
        let p = self.progress();
        let b = self.budget();
        rl_obs::Heartbeat {
            job: None,
            elapsed_us: p.elapsed.as_micros() as u64,
            states: p.states as u64,
            transitions: p.transitions as u64,
            frontier: p.frontier as u64,
            states_limit: b.max_states.map(|n| n as u64),
            deadline_us: b.deadline.map(|d| d.as_micros() as u64),
            cache_resident_bytes: None,
            cache_evictions: None,
            cache_hits: None,
            cache_misses: None,
        }
    }
}

/// The cheap per-iteration handle that construction loops tick.
///
/// The budget/clock/counter core is `Arc`-shared (see [`GuardProbe`]); the
/// guard itself additionally carries the thread-local observability hooks
/// ([`MetricsRegistry`], [`OpCache`], a parallel [`Pool`]). The wall clock
/// and the cancel flag are consulted only every [`Guard::CHECK_INTERVAL`]
/// charges, so guarding adds a few nanoseconds per iteration.
#[derive(Debug)]
pub struct Guard {
    core: Arc<GuardCore>,
    metrics: Option<MetricsRegistry>,
    hists: Option<HistogramRegistry>,
    op_cache: Option<OpCache>,
    pool: Option<Arc<Pool>>,
    lazy: bool,
    filters: bool,
}

impl Guard {
    /// How many cheap checks elapse between wall-clock/cancellation polls.
    pub const CHECK_INTERVAL: u32 = 256;

    /// A guard enforcing `budget`, with the clock starting now.
    pub fn new(budget: Budget) -> Guard {
        Guard {
            core: Arc::new(GuardCore {
                budget,
                cancel: None,
                start: Instant::now(),
                states: AtomicUsize::new(0),
                transitions: AtomicUsize::new(0),
                frontier: AtomicUsize::new(0),
                until_clock_check: AtomicU32::new(Self::CHECK_INTERVAL),
            }),
            metrics: None,
            hists: None,
            op_cache: None,
            pool: None,
            lazy: true,
            filters: true,
        }
    }

    /// A guard with no limits (never trips).
    pub fn unlimited() -> Guard {
        Guard::new(Budget::unlimited())
    }

    /// A guard that additionally trips when `token` is cancelled.
    pub fn with_cancel(budget: Budget, token: CancelToken) -> Guard {
        Guard {
            core: Arc::new(GuardCore {
                budget,
                cancel: Some(token),
                start: Instant::now(),
                states: AtomicUsize::new(0),
                transitions: AtomicUsize::new(0),
                frontier: AtomicUsize::new(0),
                until_clock_check: AtomicU32::new(Self::CHECK_INTERVAL),
            }),
            metrics: None,
            hists: None,
            op_cache: None,
            pool: None,
            lazy: true,
            filters: true,
        }
    }

    /// Selects between the lazy fused decision pipeline (the default) and
    /// the fully materializing one.
    ///
    /// With `lazy` on, the relative-liveness and relative-safety deciders
    /// skip the subset constructions entirely: behaviors are taken as the
    /// transition system's graph read with Büchi semantics, the Lemma 4.3
    /// prefix inclusion runs as an antichain-pruned on-the-fly search (see
    /// [`crate::lazy`]), and the Lemma 4.4 limit reuses the prefix NFA
    /// verbatim. `with_lazy(false)` (the CLI's `--no-lazy`) restores the
    /// materializing determinize → difference → emptiness pipeline.
    pub fn with_lazy(mut self, lazy: bool) -> Guard {
        self.lazy = lazy;
        self
    }

    /// Whether the lazy fused pipeline is selected (see [`Guard::with_lazy`]).
    pub fn lazy_enabled(&self) -> bool {
        self.lazy
    }

    /// Selects whether the semidecision pre-filter ladder (the default) runs
    /// before the exact inclusion deciders.
    ///
    /// With filters on, the Lemma 4.3 prefix inclusion first passes through
    /// near-linear sound abstractions — letter-count (Parikh) refutation,
    /// counts-mod-k refutation, and a simulation fast-accept — and only falls
    /// back to the exact (lazy or eager) decider when every stage returns
    /// `Unknown`. `with_filters(false)` (the CLI's `--no-filters`) disables
    /// the ladder entirely.
    pub fn with_filters(mut self, filters: bool) -> Guard {
        self.filters = filters;
        self
    }

    /// Whether the pre-filter ladder is selected (see [`Guard::with_filters`]).
    pub fn filters_enabled(&self) -> bool {
        self.filters
    }

    /// Attaches a [`MetricsRegistry`]: every subsequent charge is mirrored
    /// into the registry's counters, [`Guard::span`] opens real phases, and
    /// [`Progress`] snapshots carry the active span path.
    ///
    /// Without this call the guard's observability hooks are no-ops (a
    /// single branch per charge — no allocation, no atomics).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Guard {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Attaches a [`HistogramRegistry`]: latency-instrumented call sites
    /// (the pre-filter ladder's per-stage elapsed, and whatever else the
    /// embedding service wires in) record percentile samples into it.
    ///
    /// Histograms are pure telemetry on a separate registry: they never
    /// touch the metric counters, so the deterministic totals are
    /// bit-for-bit identical with and without one attached.
    pub fn with_histograms(mut self, hists: HistogramRegistry) -> Guard {
        self.hists = Some(hists);
        self
    }

    /// The attached histogram registry, if any.
    pub fn histograms(&self) -> Option<&HistogramRegistry> {
        self.hists.as_ref()
    }

    /// Attaches an [`OpCache`]: guarded constructions memoize their results
    /// per operand (structural hash, verified by full equality), and repeated
    /// determinizations/products within one pipeline are answered from the
    /// table. Hits are recorded via [`Guard::note_cache_hit`].
    ///
    /// Without this call every construction runs afresh (the library
    /// default), so results and charge counters are exactly those of the
    /// uncached algorithms.
    pub fn with_op_cache(mut self, cache: OpCache) -> Guard {
        self.op_cache = Some(cache);
        self
    }

    /// The attached operation cache, if any.
    pub fn op_cache(&self) -> Option<&OpCache> {
        self.op_cache.as_ref()
    }

    /// Attaches a worker [`Pool`]: guarded kernels above their parallel
    /// threshold fan frontier expansion out across it (results are
    /// bit-for-bit those of the sequential path — see `DESIGN.md` §10), and
    /// the batch front end uses it to run whole checks concurrently.
    ///
    /// Without this call (or with a one-thread pool) every construction runs
    /// on the calling thread, exactly as before.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Guard {
        self.pool = Some(pool);
        self
    }

    /// The attached worker pool, if any.
    pub fn pool(&self) -> Option<&Arc<Pool>> {
        self.pool.as_ref()
    }

    /// The pool to fan work out on, when one is attached with at least two
    /// workers — the kernels' "should I parallelize?" query.
    pub fn par_pool(&self) -> Option<&Arc<Pool>> {
        self.pool.as_ref().filter(|p| p.threads() >= 2)
    }

    /// A `Send + Sync` probe onto this guard's deadline/cancel state, for
    /// handing to pool workers.
    pub fn probe(&self) -> GuardProbe {
        GuardProbe {
            core: self.core.clone(),
        }
    }

    /// Memoizes `build` through the attached [`OpCache`].
    ///
    /// With no cache attached this just runs `build` (wrapped in an `Arc` so
    /// both paths return the same type). On a verified hit the guard notes a
    /// cache hit on its metrics; `matches` must check full operand equality
    /// (see the [`OpCache`] soundness contract).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error.
    pub fn cached<T: crate::mem::MemFootprint + Send + Sync + 'static, E>(
        &self,
        op: &'static str,
        key: u64,
        matches: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        match &self.op_cache {
            None => Ok(Arc::new(build()?)),
            Some(cache) => {
                let (value, hit) = cache.get_or_insert_with(op, key, matches, build)?;
                if hit {
                    self.note_cache_hit();
                }
                Ok(value)
            }
        }
    }

    /// Interns an operand for memo entries: returns an `Arc` of `value`
    /// deduplicated through the attached [`OpCache`] (by `hash`, verified by
    /// equality), so every cached operation on the same operand shares one
    /// allocation instead of each entry cloning it.
    ///
    /// Without a cache this is a plain `Arc::new(value.clone())`.
    pub fn operand<T>(&self, hash: u64, value: &T) -> Arc<T>
    where
        T: Clone + PartialEq + crate::mem::MemFootprint + Send + Sync + 'static,
    {
        match &self.op_cache {
            None => Arc::new(value.clone()),
            Some(cache) => cache.intern_operand(hash, value),
        }
    }

    /// Opens a named phase span on the attached registry, or the inert
    /// [`Span::disabled`] when observability is off.
    ///
    /// Constructions hold the returned guard for their whole run:
    ///
    /// ```
    /// # use rl_automata::Guard;
    /// # fn construction(guard: &Guard) {
    /// let _span = guard.span("determinize");
    /// // ... materialize states, charging the guard ...
    /// # }
    /// ```
    pub fn span(&self, name: &'static str) -> Span {
        match &self.metrics {
            Some(m) => m.enter(name),
            None => Span::disabled(),
        }
    }

    /// Records a memoization hit on the attached registry (no-op when
    /// observability is off).
    pub fn note_cache_hit(&self) {
        if let Some(m) = &self.metrics {
            m.inc(Metric::CacheHits);
        }
    }

    /// Records a kernel timeline instant (e.g. per-layer width samples of
    /// the parallel frontier expansions) on the registry's attached tracer.
    /// A no-op unless both a registry and a tracer are attached — in
    /// particular, it never touches the metric counters, so tracing cannot
    /// perturb deterministic totals.
    pub fn trace_instant(&self, name: &'static str, arg: Option<(&'static str, u64)>) {
        if let Some(m) = &self.metrics {
            if let Some(t) = m.tracer() {
                t.instant("kernel", name, arg);
            }
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.core.budget
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.core.start.elapsed()
    }

    /// Snapshot of the work charged so far.
    pub fn progress(&self) -> Progress {
        self.core
            .progress(self.metrics.as_ref().and_then(|m| m.current_path()))
    }

    /// Records the current worklist size, for partial diagnostics.
    pub fn note_frontier(&self, len: usize) {
        self.core.frontier.store(len, Ordering::Relaxed);
    }

    /// Charges one materialized state against the budget.
    ///
    /// # Errors
    ///
    /// [`AutomataError::BudgetExceeded`] when the state cap is exceeded;
    /// also performs the periodic deadline/cancellation check of
    /// [`Guard::tick`].
    pub fn charge_state(&self) -> Result<(), AutomataError> {
        let n = self.core.states.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = &self.metrics {
            m.inc(Metric::States);
        }
        if let Some(limit) = self.core.budget.max_states {
            if n > limit {
                return Err(self.exceeded(Resource::States, n as u64, limit as u64));
            }
        }
        self.tick()
    }

    /// Charges one materialized transition against the budget.
    ///
    /// # Errors
    ///
    /// [`AutomataError::BudgetExceeded`] when the transition cap is
    /// exceeded; also performs the periodic check of [`Guard::tick`].
    pub fn charge_transition(&self) -> Result<(), AutomataError> {
        let n = self.core.transitions.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = &self.metrics {
            m.inc(Metric::Transitions);
        }
        if let Some(limit) = self.core.budget.max_transitions {
            if n > limit {
                return Err(self.exceeded(Resource::Transitions, n as u64, limit as u64));
            }
        }
        self.tick()
    }

    /// Cheap cooperative checkpoint for loops that allocate nothing: every
    /// [`Guard::CHECK_INTERVAL`] calls, polls the deadline and the cancel
    /// token.
    ///
    /// # Errors
    ///
    /// Propagates [`Guard::check_now`] on the polling iterations.
    pub fn tick(&self) -> Result<(), AutomataError> {
        if let Some(m) = &self.metrics {
            m.inc(Metric::GuardCharges);
        }
        // Charges happen on the guard-owning thread only (workers poll a
        // probe instead), so this load/store countdown stays exact.
        let left = self.core.until_clock_check.load(Ordering::Relaxed);
        if left > 1 {
            self.core
                .until_clock_check
                .store(left - 1, Ordering::Relaxed);
            return Ok(());
        }
        self.core
            .until_clock_check
            .store(Self::CHECK_INTERVAL, Ordering::Relaxed);
        self.check_now()
    }

    /// Immediately polls the cancel token and the wall-clock deadline.
    ///
    /// # Errors
    ///
    /// [`AutomataError::Cancelled`] when the token has been cancelled,
    /// [`AutomataError::BudgetExceeded`] when the deadline has passed.
    pub fn check_now(&self) -> Result<(), AutomataError> {
        self.core
            .check_now(|| self.metrics.as_ref().and_then(|m| m.current_path()))
    }

    fn exceeded(&self, resource: Resource, spent: u64, limit: u64) -> AutomataError {
        AutomataError::BudgetExceeded {
            resource,
            spent,
            limit,
            partial: self.progress(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            g.charge_state().unwrap();
            g.charge_transition().unwrap();
        }
        assert_eq!(g.progress().states, 10_000);
        assert_eq!(g.progress().transitions, 10_000);
    }

    #[test]
    fn state_cap_trips_exactly_past_the_limit() {
        let g = Guard::new(Budget::unlimited().with_max_states(3));
        for _ in 0..3 {
            g.charge_state().unwrap();
        }
        let err = g.charge_state().unwrap_err();
        match err {
            AutomataError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => {
                assert_eq!(resource, Resource::States);
                assert_eq!(spent, 4);
                assert_eq!(limit, 3);
                assert_eq!(partial.states, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transition_cap_trips() {
        let g = Guard::new(Budget::unlimited().with_max_transitions(2));
        g.charge_transition().unwrap();
        g.charge_transition().unwrap();
        assert!(matches!(
            g.charge_transition(),
            Err(AutomataError::BudgetExceeded {
                resource: Resource::Transitions,
                ..
            })
        ));
    }

    #[test]
    fn zero_deadline_trips_within_one_check_interval() {
        let g = Guard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..=Guard::CHECK_INTERVAL {
            if g.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline of zero must trip within one interval");
        assert!(matches!(
            g.check_now(),
            Err(AutomataError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let g = Guard::with_cancel(Budget::unlimited(), token.clone());
        assert!(g.check_now().is_ok());
        token.cancel();
        match g.check_now().unwrap_err() {
            AutomataError::Cancelled(p) => assert_eq!(p.states, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn frontier_is_reported_in_diagnostics() {
        let g = Guard::new(Budget::unlimited().with_max_states(0));
        g.note_frontier(17);
        match g.charge_state().unwrap_err() {
            AutomataError::BudgetExceeded { partial, .. } => assert_eq!(partial.frontier, 17),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn metrics_mirror_charges_and_progress_names_the_phase() {
        use rl_obs::{Metric, MetricsRegistry};
        let m = MetricsRegistry::new();
        let g = Guard::new(Budget::unlimited().with_max_states(2)).with_metrics(m.clone());
        let _outer = g.span("check");
        let _inner = g.span("determinize");
        g.charge_state().unwrap();
        g.charge_state().unwrap();
        g.charge_transition().unwrap();
        assert_eq!(m.total(Metric::States), 2);
        assert_eq!(m.total(Metric::Transitions), 1);
        assert_eq!(m.total(Metric::GuardCharges), 3);
        let err = g.charge_state().unwrap_err();
        match err {
            AutomataError::BudgetExceeded { partial, .. } => {
                assert_eq!(partial.phase.as_deref(), Some("check/determinize"));
                assert!(partial.to_string().contains("in phase check/determinize"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn no_op_sink_adds_zero_counter_traffic() {
        use rl_obs::{Metric, MetricsRegistry};
        // A registry exists in the program, but this guard runs without one
        // attached: none of its traffic may leak into the registry, and its
        // spans must be inert.
        let bystander = MetricsRegistry::new();
        let g = Guard::unlimited();
        let span = g.span("determinize");
        assert!(!span.is_enabled(), "detached guards hand out inert spans");
        for _ in 0..1_000 {
            g.charge_state().unwrap();
            g.charge_transition().unwrap();
            g.note_cache_hit();
        }
        drop(span);
        for metric in Metric::ALL {
            assert_eq!(bystander.total(metric), 0, "{}", metric.name());
        }
        assert!(bystander.records().is_empty());
        assert_eq!(g.progress().phase, None);
    }

    #[test]
    fn cache_hits_are_counted_when_attached() {
        use rl_obs::{Metric, MetricsRegistry};
        let m = MetricsRegistry::new();
        let g = Guard::unlimited().with_metrics(m.clone());
        g.note_cache_hit();
        g.note_cache_hit();
        assert_eq!(m.total(Metric::CacheHits), 2);
    }

    #[test]
    fn probe_observes_cancellation_from_another_thread() {
        let token = CancelToken::new();
        let g = Guard::with_cancel(Budget::unlimited(), token.clone());
        g.charge_state().unwrap();
        let probe = g.probe();
        assert!(probe.is_armed());
        let worker = std::thread::spawn(move || {
            // Spin until the owner cancels; the error must carry the shared
            // core's charge counters as partial diagnostics.
            loop {
                match probe.check() {
                    Ok(()) => std::thread::yield_now(),
                    Err(err) => return err,
                }
            }
        });
        token.cancel();
        match worker.join().expect("worker exits cleanly") {
            AutomataError::Cancelled(p) => assert_eq!(p.states, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn probe_of_an_unarmed_guard_never_fails() {
        let g = Guard::new(Budget::unlimited().with_max_states(1));
        let probe = g.probe();
        // State caps are enforced at charge time on the owning thread; the
        // probe polls only deadline/cancellation, and this guard has neither.
        assert!(!probe.is_armed());
        assert!(probe.check().is_ok());
    }

    #[test]
    fn par_pool_requires_two_workers() {
        use crate::par::Pool;
        let g = Guard::unlimited().with_pool(Arc::new(Pool::new(1)));
        assert!(g.pool().is_some());
        assert!(g.par_pool().is_none(), "one worker means sequential");
        let g = Guard::unlimited().with_pool(Arc::new(Pool::new(2)));
        assert_eq!(g.par_pool().map(|p| p.threads()), Some(2));
    }

    #[test]
    fn budget_builder_composes() {
        let b = Budget::unlimited()
            .with_max_states(5)
            .with_max_transitions(6)
            .with_deadline(Duration::from_secs(1));
        assert_eq!(b.max_states, Some(5));
        assert_eq!(b.max_transitions, Some(6));
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        assert!(!b.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }
}
