//! Execution governance for potentially exponential constructions: resource
//! [`Budget`]s, wall-clock deadlines, and cooperative cancellation.
//!
//! Every worst-case-exponential procedure in this workspace (subset
//! construction, products, Büchi complementation, the simplicity check, …)
//! has a `*_with(&Guard)` variant that charges each materialized state and
//! transition against a [`Budget`] and periodically consults the wall clock
//! and a [`CancelToken`]. When a limit is hit the construction stops with
//! [`AutomataError::BudgetExceeded`] carrying a [`Progress`] snapshot
//! (states explored, frontier size, elapsed time) instead of looping or
//! exhausting memory. The un-suffixed entry points delegate to the guarded
//! ones with [`Guard::unlimited`], so existing callers are unaffected.
//!
//! A single [`Guard`] is intended to be threaded through *all* phases of one
//! logical check, so the budget covers the end-to-end run rather than each
//! construction separately.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use rl_automata::{Budget, Guard};
//!
//! let budget = Budget::unlimited()
//!     .with_max_states(10_000)
//!     .with_deadline(Duration::from_secs(5));
//! let guard = Guard::new(budget);
//! assert!(guard.charge_state().is_ok());
//! assert_eq!(guard.progress().states, 1);
//! ```

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rl_obs::{Metric, MetricsRegistry, Span};

use crate::error::AutomataError;
use crate::opcache::OpCache;

/// The resource dimensions a [`Budget`] can cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Materialized automaton states.
    States,
    /// Materialized transitions.
    Transitions,
    /// Wall-clock time (reported in milliseconds).
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::States => write!(f, "states"),
            Resource::Transitions => write!(f, "transitions"),
            Resource::WallClock => write!(f, "wall-clock milliseconds"),
        }
    }
}

/// Declarative resource limits for a run of the decision procedures.
///
/// `None` in a field means "unlimited". Budgets are plain data; attach one
/// to a [`Guard`] to enforce it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole guarded run.
    pub deadline: Option<Duration>,
    /// Cap on states materialized across all guarded constructions.
    pub max_states: Option<usize>,
    /// Cap on transitions materialized across all guarded constructions.
    pub max_transitions: Option<usize>,
}

impl Budget {
    /// A budget with no limits at all.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            max_states: None,
            max_transitions: None,
        }
    }

    /// Returns the budget with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the budget with a cap on materialized states.
    pub fn with_max_states(mut self, max_states: usize) -> Budget {
        self.max_states = Some(max_states);
        self
    }

    /// Returns the budget with a cap on materialized transitions.
    pub fn with_max_transitions(mut self, max_transitions: usize) -> Budget {
        self.max_transitions = Some(max_transitions);
        self
    }

    /// Whether no limit is set in any dimension.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_states.is_none() && self.max_transitions.is_none()
    }
}

/// A shared flag for cooperative cancellation.
///
/// Clone the token, hand one clone to the checking thread (inside a
/// [`Guard`]) and keep the other; calling [`CancelToken::cancel`] makes the
/// next guard check fail with [`AutomataError::Cancelled`].
///
/// # Example
///
/// ```
/// use rl_automata::{Budget, CancelToken, Guard};
///
/// let token = CancelToken::new();
/// let guard = Guard::with_cancel(Budget::unlimited(), token.clone());
/// assert!(guard.check_now().is_ok());
/// token.cancel();
/// assert!(guard.check_now().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; all guards holding this token trip at their
    /// next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Snapshot of the work a guarded run had performed when it was interrupted
/// (or queried): the partial diagnostics carried by
/// [`AutomataError::BudgetExceeded`] and [`AutomataError::Cancelled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    /// States materialized so far.
    pub states: usize,
    /// Transitions materialized so far.
    pub transitions: usize,
    /// Size of the active worklist/frontier at the last report.
    pub frontier: usize,
    /// Wall-clock time since the guard was created.
    pub elapsed: Duration,
    /// Slash-joined path of the phase that was active when the snapshot was
    /// taken (e.g. `check/relative_liveness/determinize`), when the guard
    /// had a [`MetricsRegistry`] attached and a span was open — so
    /// budget-exhaustion reports name the phase that blew the budget, not
    /// just global counters.
    pub phase: Option<String>,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions explored (frontier {}) in {:?}",
            self.states, self.transitions, self.frontier, self.elapsed
        )?;
        if let Some(phase) = &self.phase {
            write!(f, ", in phase {phase}")?;
        }
        Ok(())
    }
}

/// The cheap per-iteration handle that construction loops tick.
///
/// State/transition counters are `Cell`s (a guard is shared by `&` within
/// one thread of work); the wall clock and the cancel flag are consulted
/// only every [`Guard::CHECK_INTERVAL`] charges, so guarding adds a few
/// nanoseconds per iteration.
#[derive(Debug)]
pub struct Guard {
    budget: Budget,
    cancel: Option<CancelToken>,
    metrics: Option<MetricsRegistry>,
    op_cache: Option<OpCache>,
    start: Instant,
    states: Cell<usize>,
    transitions: Cell<usize>,
    frontier: Cell<usize>,
    until_clock_check: Cell<u32>,
}

impl Guard {
    /// How many cheap checks elapse between wall-clock/cancellation polls.
    pub const CHECK_INTERVAL: u32 = 256;

    /// A guard enforcing `budget`, with the clock starting now.
    pub fn new(budget: Budget) -> Guard {
        Guard {
            budget,
            cancel: None,
            metrics: None,
            op_cache: None,
            start: Instant::now(),
            states: Cell::new(0),
            transitions: Cell::new(0),
            frontier: Cell::new(0),
            until_clock_check: Cell::new(Self::CHECK_INTERVAL),
        }
    }

    /// A guard with no limits (never trips).
    pub fn unlimited() -> Guard {
        Guard::new(Budget::unlimited())
    }

    /// A guard that additionally trips when `token` is cancelled.
    pub fn with_cancel(budget: Budget, token: CancelToken) -> Guard {
        let mut g = Guard::new(budget);
        g.cancel = Some(token);
        g
    }

    /// Attaches a [`MetricsRegistry`]: every subsequent charge is mirrored
    /// into the registry's counters, [`Guard::span`] opens real phases, and
    /// [`Progress`] snapshots carry the active span path.
    ///
    /// Without this call the guard's observability hooks are no-ops (a
    /// single branch per charge — no allocation, no atomics).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Guard {
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Attaches an [`OpCache`]: guarded constructions memoize their results
    /// per operand (structural hash, verified by full equality), and repeated
    /// determinizations/products within one pipeline are answered from the
    /// table. Hits are recorded via [`Guard::note_cache_hit`].
    ///
    /// Without this call every construction runs afresh (the library
    /// default), so results and charge counters are exactly those of the
    /// uncached algorithms.
    pub fn with_op_cache(mut self, cache: OpCache) -> Guard {
        self.op_cache = Some(cache);
        self
    }

    /// The attached operation cache, if any.
    pub fn op_cache(&self) -> Option<&OpCache> {
        self.op_cache.as_ref()
    }

    /// Memoizes `build` through the attached [`OpCache`].
    ///
    /// With no cache attached this just runs `build` (wrapped in an `Rc` so
    /// both paths return the same type). On a verified hit the guard notes a
    /// cache hit on its metrics; `matches` must check full operand equality
    /// (see the [`OpCache`] soundness contract).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error.
    pub fn cached<T: 'static, E>(
        &self,
        op: &'static str,
        key: u64,
        matches: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Rc<T>, E> {
        match &self.op_cache {
            None => Ok(Rc::new(build()?)),
            Some(cache) => {
                let (value, hit) = cache.get_or_insert_with(op, key, matches, build)?;
                if hit {
                    self.note_cache_hit();
                }
                Ok(value)
            }
        }
    }

    /// Opens a named phase span on the attached registry, or the inert
    /// [`Span::disabled`] when observability is off.
    ///
    /// Constructions hold the returned guard for their whole run:
    ///
    /// ```
    /// # use rl_automata::Guard;
    /// # fn construction(guard: &Guard) {
    /// let _span = guard.span("determinize");
    /// // ... materialize states, charging the guard ...
    /// # }
    /// ```
    pub fn span(&self, name: &'static str) -> Span {
        match &self.metrics {
            Some(m) => m.enter(name),
            None => Span::disabled(),
        }
    }

    /// Records a memoization hit on the attached registry (no-op when
    /// observability is off).
    pub fn note_cache_hit(&self) {
        if let Some(m) = &self.metrics {
            m.inc(Metric::CacheHits);
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Snapshot of the work charged so far.
    pub fn progress(&self) -> Progress {
        Progress {
            states: self.states.get(),
            transitions: self.transitions.get(),
            frontier: self.frontier.get(),
            elapsed: self.elapsed(),
            phase: self.metrics.as_ref().and_then(|m| m.current_path()),
        }
    }

    /// Records the current worklist size, for partial diagnostics.
    pub fn note_frontier(&self, len: usize) {
        self.frontier.set(len);
    }

    /// Charges one materialized state against the budget.
    ///
    /// # Errors
    ///
    /// [`AutomataError::BudgetExceeded`] when the state cap is exceeded;
    /// also performs the periodic deadline/cancellation check of
    /// [`Guard::tick`].
    pub fn charge_state(&self) -> Result<(), AutomataError> {
        let n = self.states.get() + 1;
        self.states.set(n);
        if let Some(m) = &self.metrics {
            m.inc(Metric::States);
        }
        if let Some(limit) = self.budget.max_states {
            if n > limit {
                return Err(self.exceeded(Resource::States, n as u64, limit as u64));
            }
        }
        self.tick()
    }

    /// Charges one materialized transition against the budget.
    ///
    /// # Errors
    ///
    /// [`AutomataError::BudgetExceeded`] when the transition cap is
    /// exceeded; also performs the periodic check of [`Guard::tick`].
    pub fn charge_transition(&self) -> Result<(), AutomataError> {
        let n = self.transitions.get() + 1;
        self.transitions.set(n);
        if let Some(m) = &self.metrics {
            m.inc(Metric::Transitions);
        }
        if let Some(limit) = self.budget.max_transitions {
            if n > limit {
                return Err(self.exceeded(Resource::Transitions, n as u64, limit as u64));
            }
        }
        self.tick()
    }

    /// Cheap cooperative checkpoint for loops that allocate nothing: every
    /// [`Guard::CHECK_INTERVAL`] calls, polls the deadline and the cancel
    /// token.
    ///
    /// # Errors
    ///
    /// Propagates [`Guard::check_now`] on the polling iterations.
    pub fn tick(&self) -> Result<(), AutomataError> {
        if let Some(m) = &self.metrics {
            m.inc(Metric::GuardCharges);
        }
        let left = self.until_clock_check.get();
        if left > 1 {
            self.until_clock_check.set(left - 1);
            return Ok(());
        }
        self.until_clock_check.set(Self::CHECK_INTERVAL);
        self.check_now()
    }

    /// Immediately polls the cancel token and the wall-clock deadline.
    ///
    /// # Errors
    ///
    /// [`AutomataError::Cancelled`] when the token has been cancelled,
    /// [`AutomataError::BudgetExceeded`] when the deadline has passed.
    pub fn check_now(&self) -> Result<(), AutomataError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(AutomataError::Cancelled(self.progress()));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(self.exceeded(
                    Resource::WallClock,
                    elapsed.as_millis() as u64,
                    deadline.as_millis() as u64,
                ));
            }
        }
        Ok(())
    }

    fn exceeded(&self, resource: Resource, spent: u64, limit: u64) -> AutomataError {
        AutomataError::BudgetExceeded {
            resource,
            spent,
            limit,
            partial: self.progress(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            g.charge_state().unwrap();
            g.charge_transition().unwrap();
        }
        assert_eq!(g.progress().states, 10_000);
        assert_eq!(g.progress().transitions, 10_000);
    }

    #[test]
    fn state_cap_trips_exactly_past_the_limit() {
        let g = Guard::new(Budget::unlimited().with_max_states(3));
        for _ in 0..3 {
            g.charge_state().unwrap();
        }
        let err = g.charge_state().unwrap_err();
        match err {
            AutomataError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => {
                assert_eq!(resource, Resource::States);
                assert_eq!(spent, 4);
                assert_eq!(limit, 3);
                assert_eq!(partial.states, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transition_cap_trips() {
        let g = Guard::new(Budget::unlimited().with_max_transitions(2));
        g.charge_transition().unwrap();
        g.charge_transition().unwrap();
        assert!(matches!(
            g.charge_transition(),
            Err(AutomataError::BudgetExceeded {
                resource: Resource::Transitions,
                ..
            })
        ));
    }

    #[test]
    fn zero_deadline_trips_within_one_check_interval() {
        let g = Guard::new(Budget::unlimited().with_deadline(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..=Guard::CHECK_INTERVAL {
            if g.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline of zero must trip within one interval");
        assert!(matches!(
            g.check_now(),
            Err(AutomataError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let g = Guard::with_cancel(Budget::unlimited(), token.clone());
        assert!(g.check_now().is_ok());
        token.cancel();
        match g.check_now().unwrap_err() {
            AutomataError::Cancelled(p) => assert_eq!(p.states, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn frontier_is_reported_in_diagnostics() {
        let g = Guard::new(Budget::unlimited().with_max_states(0));
        g.note_frontier(17);
        match g.charge_state().unwrap_err() {
            AutomataError::BudgetExceeded { partial, .. } => assert_eq!(partial.frontier, 17),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn metrics_mirror_charges_and_progress_names_the_phase() {
        use rl_obs::{Metric, MetricsRegistry};
        let m = MetricsRegistry::new();
        let g = Guard::new(Budget::unlimited().with_max_states(2)).with_metrics(m.clone());
        let _outer = g.span("check");
        let _inner = g.span("determinize");
        g.charge_state().unwrap();
        g.charge_state().unwrap();
        g.charge_transition().unwrap();
        assert_eq!(m.total(Metric::States), 2);
        assert_eq!(m.total(Metric::Transitions), 1);
        assert_eq!(m.total(Metric::GuardCharges), 3);
        let err = g.charge_state().unwrap_err();
        match err {
            AutomataError::BudgetExceeded { partial, .. } => {
                assert_eq!(partial.phase.as_deref(), Some("check/determinize"));
                assert!(partial.to_string().contains("in phase check/determinize"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn no_op_sink_adds_zero_counter_traffic() {
        use rl_obs::{Metric, MetricsRegistry};
        // A registry exists in the program, but this guard runs without one
        // attached: none of its traffic may leak into the registry, and its
        // spans must be inert.
        let bystander = MetricsRegistry::new();
        let g = Guard::unlimited();
        let span = g.span("determinize");
        assert!(!span.is_enabled(), "detached guards hand out inert spans");
        for _ in 0..1_000 {
            g.charge_state().unwrap();
            g.charge_transition().unwrap();
            g.note_cache_hit();
        }
        drop(span);
        for metric in Metric::ALL {
            assert_eq!(bystander.total(metric), 0, "{}", metric.name());
        }
        assert!(bystander.records().is_empty());
        assert_eq!(g.progress().phase, None);
    }

    #[test]
    fn cache_hits_are_counted_when_attached() {
        use rl_obs::{Metric, MetricsRegistry};
        let m = MetricsRegistry::new();
        let g = Guard::unlimited().with_metrics(m.clone());
        g.note_cache_hit();
        g.note_cache_hit();
        assert_eq!(m.total(Metric::CacheHits), 2);
    }

    #[test]
    fn budget_builder_composes() {
        let b = Budget::unlimited()
            .with_max_states(5)
            .with_max_transitions(6)
            .with_deadline(Duration::from_secs(1));
        assert_eq!(b.max_states, Some(5));
        assert_eq!(b.max_transitions, Some(6));
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        assert!(!b.is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
    }
}
