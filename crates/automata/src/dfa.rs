//! Deterministic finite automata over finite words.

use std::hash::Hasher;
use std::sync::Arc;

use crate::alphabet::{Alphabet, Symbol};
use crate::error::AutomataError;
use crate::guard::Guard;
use crate::mem::MemFootprint;
use crate::nfa::Nfa;
use crate::stateset::{FxHasher, PairTable};
use crate::word::Word;
use crate::StateId;

/// Sentinel marking an undefined transition in the flat delta table.
const NO_TRANSITION: u32 = u32::MAX;

/// A deterministic finite automaton, possibly *partial* (missing transitions
/// reject).
///
/// Produced by [`Nfa::determinize`] and consumed by the minimization and
/// equivalence algorithms. A `Dfa` always has exactly one initial state.
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Dfa};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// let mut d = Dfa::new(ab);
/// let q0 = d.add_state(false);
/// let q1 = d.add_state(true);
/// d.set_initial(q0);
/// d.set_transition(q0, a, q1);
/// assert!(d.accepts(&[a]));
/// assert!(!d.accepts(&[a, a])); // partial: missing transition rejects
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Alphabet,
    initial: StateId,
    accepting: Vec<bool>,
    /// `delta[q][a.index()]` = successor id, or [`NO_TRANSITION`] when
    /// undefined. Lookup is two array probes; no tree walks.
    delta: Vec<Vec<u32>>,
}

impl MemFootprint for Dfa {
    fn heap_bytes(&self) -> usize {
        // The alphabet weighs as a pointer (interned per system, charged at
        // its creation site).
        self.accepting.heap_bytes() + self.delta.heap_bytes()
    }
}

impl Dfa {
    /// Creates an empty automaton over `alphabet`.
    ///
    /// The initial state defaults to the first state added.
    pub fn new(alphabet: Alphabet) -> Dfa {
        Dfa {
            alphabet,
            initial: 0,
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Like [`Dfa::new`], but with state/delta storage pre-sized for
    /// `states` states, so product-style builders do not reallocate while
    /// growing toward a known bound.
    pub fn with_capacity(alphabet: Alphabet, states: usize) -> Dfa {
        Dfa {
            alphabet,
            initial: 0,
            accepting: Vec::with_capacity(states),
            delta: Vec::with_capacity(states),
        }
    }

    /// Builds a DFA from raw parts, validating all indices.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] for an out-of-range state.
    pub fn from_parts(
        alphabet: Alphabet,
        state_count: usize,
        initial: StateId,
        accepting: impl IntoIterator<Item = StateId>,
        transitions: impl IntoIterator<Item = (StateId, Symbol, StateId)>,
    ) -> Result<Dfa, AutomataError> {
        let mut dfa = Dfa::new(alphabet);
        for _ in 0..state_count {
            dfa.add_state(false);
        }
        if initial >= state_count {
            return Err(AutomataError::InvalidState(initial));
        }
        dfa.initial = initial;
        for q in accepting {
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            dfa.accepting[q] = true;
        }
        for (p, a, q) in transitions {
            if p >= state_count {
                return Err(AutomataError::InvalidState(p));
            }
            if q >= state_count {
                return Err(AutomataError::InvalidState(q));
            }
            dfa.set_transition(p, a, q);
        }
        Ok(dfa)
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.accepting.push(accepting);
        self.delta.push(vec![NO_TRANSITION; self.alphabet.len()]);
        self.accepting.len() - 1
    }

    /// Sets the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.initial = q;
    }

    /// Sets whether `q` accepts.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.accepting[q] = accepting;
    }

    /// Sets (overwrites) the transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn set_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(from < self.state_count(), "invalid state {from}");
        assert!(to < self.state_count(), "invalid state {to}");
        assert!(
            to < NO_TRANSITION as usize,
            "state id overflows delta table"
        );
        self.delta[from][symbol.index()] = to as u32;
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Whether `q` accepts.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q]
    }

    /// The successor of `q` on `symbol`, if defined.
    pub fn next(&self, q: StateId, symbol: Symbol) -> Option<StateId> {
        let t = self.delta[q][symbol.index()];
        (t != NO_TRANSITION).then_some(t as StateId)
    }

    /// Runs the automaton on `word` from the initial state, returning the
    /// state reached (or `None` if the run falls off the partial function).
    pub fn run(&self, word: &[Symbol]) -> Option<StateId> {
        self.run_from(self.initial, word)
    }

    /// Runs the automaton on `word` from `q`.
    pub fn run_from(&self, q: StateId, word: &[Symbol]) -> Option<StateId> {
        let mut cur = q;
        for &a in word {
            cur = self.next(cur, a)?;
        }
        Some(cur)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.run(word).is_some_and(|q| self.accepting[q])
    }

    /// Iterates over all transitions in sorted order.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(p, row)| {
            row.iter().enumerate().filter_map(move |(ai, &t)| {
                (t != NO_TRANSITION).then_some((p, Symbol::from_index(ai), t as StateId))
            })
        })
    }

    /// Whether the transition function is total.
    pub fn is_complete(&self) -> bool {
        self.delta
            .iter()
            .all(|row| row.iter().all(|&t| t != NO_TRANSITION))
    }

    /// Completes the transition function by adding a rejecting sink if any
    /// transition is missing. The language is unchanged.
    pub fn complete(&self) -> Dfa {
        if self.is_complete() {
            return self.clone();
        }
        let mut out = Dfa::with_capacity(self.alphabet.clone(), self.state_count() + 1);
        out.accepting.extend_from_slice(&self.accepting);
        out.delta.extend_from_slice(&self.delta);
        out.initial = self.initial;
        let sink = out.add_state(false);
        for row in &mut out.delta {
            for t in row.iter_mut() {
                if *t == NO_TRANSITION {
                    *t = sink as u32;
                }
            }
        }
        out
    }

    /// Complement automaton: accepts exactly the words `self` rejects.
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for acc in &mut out.accepting {
            *acc = !*acc;
        }
        out
    }

    /// Product automaton, combining acceptance with `combine`.
    ///
    /// With `|p, q| p && q` this is intersection; with `|p, q| p && !q` it is
    /// difference; with `|p, q| p != q` symmetric difference. Both operands
    /// are completed first so the product is total.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn product(
        &self,
        other: &Dfa,
        combine: impl Fn(bool, bool) -> bool,
    ) -> Result<Dfa, AutomataError> {
        self.product_with(other, combine, &Guard::unlimited())
    }

    /// [`Dfa::product`] under a resource [`Guard`].
    ///
    /// Every materialized pair state is charged against the guard's state
    /// budget and every product transition against its transition budget.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ,
    /// or a budget error when the guard trips.
    pub fn product_with(
        &self,
        other: &Dfa,
        combine: impl Fn(bool, bool) -> bool,
        guard: &Guard,
    ) -> Result<Dfa, AutomataError> {
        let _span = guard.span("dfa_product");
        self.alphabet.check_compatible(&other.alphabet)?;
        let a = self.complete();
        let b = other.complete();
        let bound = a.state_count().saturating_mul(b.state_count());
        let mut index = PairTable::new(a.state_count(), b.state_count());
        // Pre-size from the product bound, capped so pathological products
        // do not commit gigabytes up front.
        let mut out = Dfa::with_capacity(self.alphabet.clone(), bound.min(1 << 16));
        let mut work = vec![(a.initial, b.initial)];
        guard.charge_state()?;
        let start = out.add_state(combine(a.accepting[a.initial], b.accepting[b.initial]));
        out.set_initial(start);
        index.set(a.initial, b.initial, start);
        while let Some((p, q)) = work.pop() {
            guard.note_frontier(work.len());
            let id = index.get(p, q).expect("worklist pairs are interned");
            for s in self.alphabet.symbols() {
                let (p2, q2) = (
                    a.next(p, s).expect("complete"),
                    b.next(q, s).expect("complete"),
                );
                let nid = match index.get(p2, q2) {
                    Some(nid) => nid,
                    None => {
                        guard.charge_state()?;
                        let nid = out.add_state(combine(a.accepting[p2], b.accepting[q2]));
                        index.set(p2, q2, nid);
                        work.push((p2, q2));
                        nid
                    }
                };
                guard.charge_transition()?;
                out.set_transition(id, s, nid);
            }
        }
        Ok(out)
    }

    /// `L(self) \ L(other)` as a DFA.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn difference(&self, other: &Dfa) -> Result<Dfa, AutomataError> {
        self.product(other, |p, q| p && !q)
    }

    /// [`Dfa::difference`] under a resource [`Guard`].
    ///
    /// When the guard carries an [`crate::OpCache`], a repeated difference of
    /// structurally equal operands is answered from the memo table.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ,
    /// or a budget error when the guard trips.
    pub fn difference_with(&self, other: &Dfa, guard: &Guard) -> Result<Dfa, AutomataError> {
        if guard.op_cache().is_none() {
            return self.product_with(other, |p, q| p && !q, guard);
        }
        let (self_hash, other_hash) = (self.structural_hash(), other.structural_hash());
        let mut h = FxHasher::default();
        h.write_u64(self_hash);
        h.write_u64(other_hash);
        let entry = guard.cached::<(Arc<Dfa>, Arc<Dfa>, Dfa), AutomataError>(
            "dfa_difference",
            h.finish(),
            |e| *e.0 == *self && *e.1 == *other,
            || {
                let diff = self.product_with(other, |p, q| p && !q, guard)?;
                Ok((
                    guard.operand(self_hash, self),
                    guard.operand(other_hash, other),
                    diff,
                ))
            },
        )?;
        Ok(entry.2.clone())
    }

    /// A deterministic structural hash of the automaton (alphabet names,
    /// state count, initial state, accepting set, and transition table).
    ///
    /// Structurally equal automata hash equal; collisions are possible, so
    /// callers must re-check equality on cache hits.
    pub fn structural_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.state_count());
        for (_, name) in self.alphabet.iter() {
            h.write(name.as_bytes());
        }
        h.write_usize(self.initial);
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                h.write_usize(q);
            }
        }
        for (p, a, q) in self.transitions() {
            h.write_usize(p);
            h.write_usize(a.index());
            h.write_usize(q);
        }
        h.finish()
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.to_nfa().is_empty_language()
    }

    /// A shortest accepted word, when the language is non-empty.
    pub fn shortest_accepted(&self) -> Option<Word> {
        self.to_nfa().shortest_accepted()
    }

    /// Converts to an equivalent [`Nfa`].
    pub fn to_nfa(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            out.add_state(self.accepting[q]);
        }
        if self.state_count() > 0 {
            out.set_initial(self.initial);
        }
        for (p, a, q) in self.transitions() {
            out.add_transition(p, a, q);
        }
        out
    }

    /// Re-roots the automaton at `q`: the result accepts the left quotient
    /// `cont(w, L)` for any `w` with `run(w) == Some(q)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rooted_at(&self, q: StateId) -> Dfa {
        assert!(q < self.state_count(), "invalid state {q}");
        let mut out = self.clone();
        out.initial = q;
        out
    }

    /// The minimal complete DFA for the language (Hopcroft).
    ///
    /// The result has a canonical shape for
    /// each language (up to state numbering determined by BFS order).
    pub fn min_dfa(&self) -> Dfa {
        crate::minimize::minimize(self)
    }

    /// [`Dfa::min_dfa`] with a "minimize" phase span recorded on the guard's
    /// metrics registry (minimization itself is polynomial and is not
    /// charged against the budget).
    pub fn min_dfa_with(&self, guard: &Guard) -> Dfa {
        let _span = guard.span("minimize");
        crate::minimize::minimize(self)
    }

    /// Removes states unreachable from the initial state.
    pub fn remove_unreachable(&self) -> Dfa {
        let nfa = self.to_nfa();
        let reach = nfa.reachable();
        let mut map: Vec<Option<StateId>> = vec![None; self.state_count()];
        let mut out = Dfa::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            if reach[q] {
                map[q] = Some(out.add_state(self.accepting[q]));
            }
        }
        if let Some(ni) = map[self.initial] {
            out.set_initial(ni);
        }
        for (p, a, q) in self.transitions() {
            if let (Some(np), Some(nq)) = (map[p], map[q]) {
                out.set_transition(np, a, nq);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        (ab, a, b)
    }

    /// D accepting words with an even number of `a`s.
    fn even_a() -> Dfa {
        let (ab, a, b) = ab2();
        let mut d = Dfa::new(ab);
        let q0 = d.add_state(true);
        let q1 = d.add_state(false);
        d.set_initial(q0);
        d.set_transition(q0, a, q1);
        d.set_transition(q1, a, q0);
        d.set_transition(q0, b, q0);
        d.set_transition(q1, b, q1);
        d
    }

    #[test]
    fn complement_flips_membership() {
        let (_, a, b) = ab2();
        let d = even_a();
        let c = d.complement();
        for w in [vec![], vec![a], vec![a, a], vec![b, a, b]] {
            assert_eq!(d.accepts(&w), !c.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    fn partial_dfa_rejects_missing() {
        let (ab, a, _) = ab2();
        let mut d = Dfa::new(ab);
        let q0 = d.add_state(false);
        let q1 = d.add_state(true);
        d.set_initial(q0);
        d.set_transition(q0, a, q1);
        assert!(d.accepts(&[a]));
        assert!(!d.accepts(&[a, a]));
        assert!(!d.is_complete());
        let c = d.complete();
        assert!(c.is_complete());
        assert!(!c.accepts(&[a, a]));
        assert!(c.accepts(&[a]));
    }

    #[test]
    fn product_difference() {
        let (ab, a, b) = ab2();
        let even = even_a();
        // All words containing at least one b.
        let mut has_b = Dfa::new(ab);
        let p0 = has_b.add_state(false);
        let p1 = has_b.add_state(true);
        has_b.set_initial(p0);
        has_b.set_transition(p0, a, p0);
        has_b.set_transition(p0, b, p1);
        has_b.set_transition(p1, a, p1);
        has_b.set_transition(p1, b, p1);

        let diff = even.difference(&has_b).unwrap();
        // even #a and no b => words in a(aa)*... i.e. (aa)*
        assert!(diff.accepts(&[]));
        assert!(diff.accepts(&[a, a]));
        assert!(!diff.accepts(&[a]));
        assert!(!diff.accepts(&[a, a, b]));
    }

    #[test]
    fn rooted_at_gives_left_quotient() {
        let (_, a, b) = ab2();
        let d = even_a();
        let q = d.run(&[a]).unwrap();
        let rooted = d.rooted_at(q);
        // cont(a, L) = words with odd #a.
        assert!(rooted.accepts(&[a]));
        assert!(!rooted.accepts(&[]));
        assert!(rooted.accepts(&[b, a, b]));
    }

    #[test]
    fn min_dfa_is_minimal() {
        let (ab, a, b) = ab2();
        // A redundant 4-state automaton for "even number of a's".
        let mut d = Dfa::new(ab);
        let q0 = d.add_state(true);
        let q1 = d.add_state(false);
        let q2 = d.add_state(true);
        let q3 = d.add_state(false);
        d.set_initial(q0);
        d.set_transition(q0, a, q1);
        d.set_transition(q1, a, q2);
        d.set_transition(q2, a, q3);
        d.set_transition(q3, a, q0);
        for q in [q0, q1, q2, q3] {
            d.set_transition(q, b, q);
        }
        let m = d.min_dfa();
        assert_eq!(m.state_count(), 2);
        assert!(crate::equiv::dfa_equivalent(&m, &even_a()));
    }

    #[test]
    fn remove_unreachable_drops_orphans() {
        let (ab, a, _) = ab2();
        let mut d = Dfa::new(ab);
        let q0 = d.add_state(true);
        let _orphan = d.add_state(true);
        d.set_initial(q0);
        d.set_transition(q0, a, q0);
        let r = d.remove_unreachable();
        assert_eq!(r.state_count(), 1);
    }
}
