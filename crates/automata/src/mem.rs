//! Resident-memory estimation for cache accounting.
//!
//! The byte-budgeted [`crate::OpCache`] needs to know how much memory each
//! stored value keeps alive. [`MemFootprint`] answers that: an estimate of
//! the bytes a value occupies — its inline size plus every heap allocation
//! it owns. The estimate is *deterministic* (it depends only on the value's
//! structure, never on allocator or platform state beyond `size_of`), which
//! the eviction-determinism guarantees of the cache rely on.
//!
//! Conventions:
//!
//! * `Arc<T>` weighs as a pointer. A shared allocation is charged where it
//!   is created (e.g. [`crate::OpCache::intern_operand`] weighs the interned
//!   payload once), not at every handle that keeps it alive — otherwise one
//!   automaton shared by five memo entries would be counted five times.
//! * [`Alphabet`](crate::Alphabet) likewise weighs as a pointer: alphabets
//!   are interned per system and shared by every machine derived from it.
//! * `BTreeSet` nodes are estimated (element size plus amortized node
//!   overhead); exact B-tree layout is not observable from safe code.

use std::collections::BTreeSet;
use std::mem::size_of;
use std::sync::Arc;

/// Estimated resident bytes of a value: inline size plus owned heap.
///
/// Implementations must be deterministic — two structurally equal values
/// report the same footprint on every run.
pub trait MemFootprint {
    /// Bytes owned on the heap *beyond* `size_of_val(self)`.
    fn heap_bytes(&self) -> usize;

    /// Total estimated resident bytes: inline size plus owned heap.
    fn mem_bytes(&self) -> usize
    where
        Self: Sized,
    {
        size_of::<Self>() + self.heap_bytes()
    }
}

/// Amortized per-element overhead of a `BTreeSet` node (split slack plus
/// parent/edge bookkeeping), used by the set estimates below.
const BTREE_NODE_OVERHEAD: usize = 16;

macro_rules! inline_only {
    ($($ty:ty),* $(,)?) => {$(
        impl MemFootprint for $ty {
            fn heap_bytes(&self) -> usize {
                0
            }
        }
    )*};
}

inline_only!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char, f32, f64);

impl MemFootprint for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl MemFootprint for &'static str {
    fn heap_bytes(&self) -> usize {
        // The referent lives in static storage; only the fat pointer counts.
        0
    }
}

impl<T: MemFootprint> MemFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        // The buffer itself (including spare capacity), plus whatever each
        // element owns beyond its slot in the buffer.
        self.capacity() * size_of::<T>() + self.iter().map(MemFootprint::heap_bytes).sum::<usize>()
    }
}

impl<T: MemFootprint> MemFootprint for Arc<T> {
    fn heap_bytes(&self) -> usize {
        // Shared allocations are charged at their origin (see module docs);
        // a handle is just a pointer.
        0
    }
}

impl<T> MemFootprint for BTreeSet<T> {
    fn heap_bytes(&self) -> usize {
        self.len() * (size_of::<T>() + BTREE_NODE_OVERHEAD)
    }
}

impl MemFootprint for crate::Alphabet {
    fn heap_bytes(&self) -> usize {
        // Alphabets are interned per system (an `Arc` handle shared by every
        // machine derived from that system); the payload is charged where the
        // alphabet was created.
        0
    }
}

impl<A: MemFootprint, B: MemFootprint> MemFootprint for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<A: MemFootprint, B: MemFootprint, C: MemFootprint> MemFootprint for (A, B, C) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes() + self.2.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_inline_only() {
        assert_eq!(7u64.mem_bytes(), 8);
        assert_eq!(true.mem_bytes(), 1);
        assert_eq!("static".mem_bytes(), size_of::<&str>());
    }

    #[test]
    fn string_counts_capacity() {
        let mut s = String::with_capacity(64);
        s.push_str("ab");
        assert_eq!(s.mem_bytes(), size_of::<String>() + 64);
    }

    #[test]
    fn vec_counts_buffer_and_elements() {
        let v: Vec<u32> = Vec::with_capacity(8);
        assert_eq!(v.mem_bytes(), size_of::<Vec<u32>>() + 8 * 4);
        let nested: Vec<Vec<u32>> = vec![Vec::with_capacity(2), Vec::with_capacity(3)];
        let expect = size_of::<Vec<Vec<u32>>>() + 2 * size_of::<Vec<u32>>() + (2 + 3) * 4;
        assert_eq!(nested.mem_bytes(), expect);
    }

    #[test]
    fn arc_is_a_pointer() {
        let a = Arc::new(vec![0u64; 1024]);
        assert_eq!(a.mem_bytes(), size_of::<Arc<Vec<u64>>>());
    }

    #[test]
    fn footprint_is_deterministic_across_structurally_equal_values() {
        let a = (String::from("operand"), vec![1u64, 2, 3]);
        let b = (String::from("operand"), vec![1u64, 2, 3]);
        assert_eq!(a.mem_bytes(), b.mem_bytes());
    }
}
