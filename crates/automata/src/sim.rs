//! Simulation preorders between labeled transition systems.
//!
//! `spec` *simulates* `impl` when every step of `impl` can be matched by
//! `spec` from related states, coinductively. Simulation is a sound (not
//! complete) proof technique for trace inclusion: if the specification
//! simulates the implementation, every firing sequence of the
//! implementation is one of the specification — a cheap structural check
//! that avoids determinization.

use std::collections::BTreeSet;

use crate::ts::TransitionSystem;
use crate::StateId;

/// Computes the largest simulation relation between the states of `small`
/// and `big`: `R(q, s)` iff every `q --a--> q'` is matched by some
/// `s --a--> s'` with `R(q', s')`.
///
/// Returned as a set of `(small-state, big-state)` pairs. Both systems must
/// share an alphabet (by construction of the caller; symbols are compared
/// by identity).
pub fn largest_simulation(
    small: &TransitionSystem,
    big: &TransitionSystem,
) -> BTreeSet<(StateId, StateId)> {
    let n = small.state_count();
    let m = big.state_count();
    // Start from the full relation and refine (greatest fixpoint).
    let mut related = vec![vec![true; m]; n];
    loop {
        let mut changed = false;
        for q in 0..n {
            for s in 0..m {
                if !related[q][s] {
                    continue;
                }
                let ok = small.enabled(q).iter().all(|&(a, q2)| {
                    big.enabled(s)
                        .iter()
                        .any(|&(b, s2)| a == b && related[q2][s2])
                });
                if !ok {
                    related[q][s] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut out = BTreeSet::new();
    for (q, row) in related.iter().enumerate() {
        for (s, &r) in row.iter().enumerate() {
            if r {
                out.insert((q, s));
            }
        }
    }
    out
}

/// Whether `spec` simulates `implementation` from the initial states.
///
/// A `true` answer implies the implementation's firing-sequence language is
/// contained in the specification's (the converse does not hold: simulation
/// is finer than language inclusion).
///
/// # Example
///
/// ```
/// use rl_automata::{simulates, Alphabet, TransitionSystem};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// // Spec: anything goes.
/// let mut spec = TransitionSystem::new(ab.clone());
/// let s = spec.add_state();
/// spec.set_initial(s);
/// spec.add_transition(s, a, s);
/// spec.add_transition(s, b, s);
/// // Impl: strict alternation.
/// let mut imp = TransitionSystem::new(ab);
/// let i0 = imp.add_state();
/// let i1 = imp.add_state();
/// imp.set_initial(i0);
/// imp.add_transition(i0, a, i1);
/// imp.add_transition(i1, b, i0);
/// assert!(simulates(&spec, &imp));
/// assert!(!simulates(&imp, &spec)); // spec can do a.a, alternation cannot
/// # Ok(())
/// # }
/// ```
pub fn simulates(spec: &TransitionSystem, implementation: &TransitionSystem) -> bool {
    if spec.alphabet() != implementation.alphabet() {
        return false;
    }
    largest_simulation(implementation, spec).contains(&(implementation.initial(), spec.initial()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn two(ab: &Alphabet, edges: &[(usize, &str, usize)], states: usize) -> TransitionSystem {
        let mut ts = TransitionSystem::new(ab.clone());
        for _ in 0..states {
            ts.add_state();
        }
        ts.set_initial(0);
        for &(p, name, q) in edges {
            ts.add_transition(p, ab.symbol(name).unwrap(), q);
        }
        ts
    }

    #[test]
    fn simulation_is_reflexive_on_self() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let ts = two(&ab, &[(0, "a", 1), (1, "b", 0)], 2);
        assert!(simulates(&ts, &ts));
    }

    #[test]
    fn nondeterministic_choice_vs_early_commitment() {
        // The classic a(b+c) vs ab+ac example: the early-committing system
        // is simulated by the late-choosing one, not vice versa.
        let ab = Alphabet::new(["a", "b", "c"]).unwrap();
        // Late choice: 0 -a-> 1, 1 -b-> 2, 1 -c-> 3.
        let late = two(&ab, &[(0, "a", 1), (1, "b", 2), (1, "c", 3)], 4);
        // Early commitment: 0 -a-> 1 (-b-> 3) and 0 -a-> 2 (-c-> 4).
        let early = two(
            &ab,
            &[(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "c", 4)],
            5,
        );
        assert!(simulates(&late, &early));
        assert!(!simulates(&early, &late));
        // Languages are nevertheless equal: simulation is strictly finer.
        assert!(crate::equiv::dfa_equivalent(
            &late.to_nfa().determinize(),
            &early.to_nfa().determinize()
        ));
    }

    #[test]
    fn simulation_implies_language_inclusion() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let spec = two(&ab, &[(0, "a", 0), (0, "b", 0)], 1);
        let imp = two(&ab, &[(0, "a", 1), (1, "b", 0)], 2);
        assert!(simulates(&spec, &imp));
        assert!(crate::equiv::dfa_included(
            &imp.to_nfa().determinize(),
            &spec.to_nfa().determinize()
        )
        .is_none());
    }

    #[test]
    fn alphabet_mismatch_is_false() {
        let ab1 = Alphabet::new(["a"]).unwrap();
        let ab2 = Alphabet::new(["b"]).unwrap();
        let t1 = two(&ab1, &[(0, "a", 0)], 1);
        let t2 = {
            let mut ts = TransitionSystem::new(ab2.clone());
            let s = ts.add_state();
            ts.set_initial(s);
            ts.add_transition(s, ab2.symbol("b").unwrap(), s);
            ts
        };
        assert!(!simulates(&t1, &t2));
    }
}
