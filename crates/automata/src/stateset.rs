//! Dense bitset state sets and FxHash-style interning.
//!
//! The decision procedures of this workspace bottom out in subset
//! construction, products, and partition refinement, all of which manipulate
//! sets of [`StateId`]s. [`StateSet`] packs such a set into `Vec<u64>` words
//! so that membership is one shift-and-mask, union/intersection run over
//! `n/64` words, and iteration walks set bits with `trailing_zeros` — always
//! in ascending order, so every construction built on it keeps the
//! deterministic iteration order the B-tree containers used to provide.
//!
//! [`Interner`] maps structured keys (subset states, ranking states, product
//! pairs) to dense ids using a [`FxHasher`]-based hash map — the multiply-xor
//! hash used by rustc, implemented locally because this workspace builds
//! offline with no external crates. Lookups verify full key equality, so
//! hash collisions can never conflate two distinct states.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::StateId;

/// The multiplier of the Fx (Firefox/rustc) multiply-xor hash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] (the rustc "FxHash" scheme).
///
/// Each written word is folded in with a rotate-xor-multiply step. The hash
/// is deterministic across runs and platforms of the same word size, which
/// is all the in-process interners and caches here need.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Hashes any `Hash` value with [`FxHasher`] in one call.
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A set of [`StateId`]s stored as a dense bitset (`Vec<u64>` words).
///
/// Invariant: the word vector never ends in a zero word, so equality and
/// hashing are plain word-slice comparisons regardless of how large a
/// universe a set has touched. Iteration yields members in ascending order.
///
/// # Example
///
/// ```
/// use rl_automata::StateSet;
///
/// let mut s = StateSet::new();
/// s.insert(3);
/// s.insert(130);
/// assert!(s.contains(3) && s.contains(130) && !s.contains(64));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 130]);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StateSet {
    words: Vec<u64>,
}

impl StateSet {
    /// The empty set.
    pub fn new() -> StateSet {
        StateSet::default()
    }

    /// The empty set, with capacity for states `< universe` preallocated.
    pub fn with_universe(universe: usize) -> StateSet {
        StateSet {
            words: Vec::with_capacity(universe.div_ceil(64)),
        }
    }

    /// Removes every member, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `q` is a member.
    #[inline]
    pub fn contains(&self, q: StateId) -> bool {
        match self.words.get(q / 64) {
            Some(w) => w & (1u64 << (q % 64)) != 0,
            None => false,
        }
    }

    /// Inserts `q`; returns whether it was newly added.
    #[inline]
    pub fn insert(&mut self, q: StateId) -> bool {
        let (wi, bit) = (q / 64, 1u64 << (q % 64));
        if wi >= self.words.len() {
            self.words.resize(wi + 1, 0);
        }
        let fresh = self.words[wi] & bit == 0;
        self.words[wi] |= bit;
        fresh
    }

    /// Removes `q`; returns whether it was present.
    pub fn remove(&mut self, q: StateId) -> bool {
        let (wi, bit) = (q / 64, 1u64 << (q % 64));
        match self.words.get_mut(wi) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.trim();
                true
            }
            _ => false,
        }
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &StateSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &StateSet) {
        self.words.truncate(other.words.len());
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        self.trim();
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &StateSet) {
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        self.trim();
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &StateSet) -> StateSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &StateSet) -> StateSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Whether the sets share a member.
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether every member of `self` is in `other`.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        self.words.len() <= other.words.len()
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(&a, &b)| a & !b == 0)
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<StateId> {
        self.iter().next()
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Drops trailing zero words, restoring the normal form that makes
    /// derived `Eq`/`Hash` correct.
    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<StateId> for StateSet {
    fn from_iter<I: IntoIterator<Item = StateId>>(iter: I) -> StateSet {
        let mut s = StateSet::new();
        for q in iter {
            s.insert(q);
        }
        s
    }
}

impl Extend<StateId> for StateSet {
    fn extend<I: IntoIterator<Item = StateId>>(&mut self, iter: I) {
        for q in iter {
            self.insert(q);
        }
    }
}

/// Interns structured keys (subsets, rankings, product tuples) as dense ids.
///
/// Replaces the `BTreeMap<Key, StateId>` indexes of the exploration loops:
/// [`Interner::intern`] returns the existing id of an equal key or assigns
/// the next id (`keys` order is insertion order, which the worklist
/// algorithms rely on for deterministic numbering). Lookup verifies key
/// equality, so two keys that collide in the hash can never share an id.
///
/// # Example
///
/// ```
/// use rl_automata::{Interner, StateSet};
///
/// let mut index: Interner<StateSet> = Interner::new();
/// let (a, fresh_a) = index.intern(StateSet::from_iter([1, 2]));
/// let (b, fresh_b) = index.intern(StateSet::from_iter([2, 1]));
/// assert_eq!(a, b);
/// assert!(fresh_a && !fresh_b);
/// assert_eq!(index.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner<K> {
    map: FxHashMap<K, StateId>,
    keys: Vec<K>,
}

impl<K: Hash + Eq + Clone> Interner<K> {
    /// An empty interner.
    pub fn new() -> Interner<K> {
        Interner {
            map: FxHashMap::default(),
            keys: Vec::new(),
        }
    }

    /// An empty interner with room for `capacity` keys.
    pub fn with_capacity(capacity: usize) -> Interner<K> {
        Interner {
            map: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Returns the id of `key`, interning it when new; the flag is `true`
    /// exactly when the key was newly added.
    pub fn intern(&mut self, key: K) -> (StateId, bool) {
        match self.map.get(&key) {
            Some(&id) => (id, false),
            None => {
                let id = self.keys.len();
                self.keys.push(key.clone());
                self.map.insert(key, id);
                (id, true)
            }
        }
    }

    /// The id of `key`, when already interned.
    pub fn get(&self, key: &K) -> Option<StateId> {
        self.map.get(key).copied()
    }

    /// The key interned as `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been assigned.
    pub fn key(&self, id: StateId) -> &K {
        &self.keys[id]
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Index for product constructions: maps a state pair `(p, q)` from two
/// operand automata to the id of the materialized product state.
///
/// When the product bound `rows × cols` is small enough the table is a flat
/// pre-sized vector (one probe, no hashing, no rebalancing — this is the
/// "pre-size from the known product bound" fast path); for huge bounds it
/// falls back to an [`FxHashMap`] so memory stays proportional to the states
/// actually materialized rather than to the worst case.
///
/// # Example
///
/// ```
/// use rl_automata::PairTable;
///
/// let mut t = PairTable::new(10, 10);
/// assert_eq!(t.get(3, 4), None);
/// t.set(3, 4, 0);
/// assert_eq!(t.get(3, 4), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct PairTable {
    cols: usize,
    repr: PairRepr,
}

#[derive(Debug, Clone)]
enum PairRepr {
    /// `flat[p * cols + q]`, with `u32::MAX` meaning "absent".
    Flat(Vec<u32>),
    Sparse(FxHashMap<(StateId, StateId), StateId>),
}

impl PairTable {
    /// Largest product bound allocated flat (16 MiB of `u32`s).
    const FLAT_LIMIT: usize = 1 << 22;

    /// An empty table for pairs in `[0, rows) × [0, cols)`.
    pub fn new(rows: usize, cols: usize) -> PairTable {
        let bound = rows.checked_mul(cols);
        let repr = match bound {
            Some(b) if b <= Self::FLAT_LIMIT => PairRepr::Flat(vec![u32::MAX; b]),
            _ => PairRepr::Sparse(FxHashMap::default()),
        };
        PairTable { cols, repr }
    }

    /// The id assigned to `(p, q)`, if any.
    #[inline]
    pub fn get(&self, p: StateId, q: StateId) -> Option<StateId> {
        match &self.repr {
            PairRepr::Flat(flat) => {
                let v = flat[p * self.cols + q];
                (v != u32::MAX).then_some(v as StateId)
            }
            PairRepr::Sparse(map) => map.get(&(p, q)).copied(),
        }
    }

    /// Assigns `id` to `(p, q)`.
    ///
    /// # Panics
    ///
    /// Panics if a flat table is given an id that does not fit in the
    /// `u32` sentinel encoding (unreachable under any realistic budget).
    #[inline]
    pub fn set(&mut self, p: StateId, q: StateId, id: StateId) {
        match &mut self.repr {
            PairRepr::Flat(flat) => {
                assert!(id < u32::MAX as StateId, "product id overflow");
                flat[p * self.cols + q] = id as u32;
            }
            PairRepr::Sparse(map) => {
                map.insert((p, q), id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_behaves() {
        let s = StateSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s, StateSet::default());
    }

    #[test]
    fn word_boundary_members_63_64_65() {
        for q in [63usize, 64, 65] {
            let mut s = StateSet::new();
            assert!(s.insert(q));
            assert!(!s.insert(q), "re-insert of {q} reports not-fresh");
            assert!(s.contains(q));
            assert!(!s.contains(q - 1));
            assert!(!s.contains(q + 1));
            assert_eq!(s.len(), 1);
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![q]);
            assert!(s.remove(q));
            assert!(s.is_empty(), "removal at {q} trims back to empty");
        }
    }

    #[test]
    fn sets_larger_than_64_states() {
        let members: Vec<StateId> = (0..200).filter(|q| q % 3 == 0).collect();
        let s: StateSet = members.iter().copied().collect();
        assert_eq!(s.len(), members.len());
        assert_eq!(s.iter().collect::<Vec<_>>(), members);
        for q in 0..220 {
            assert_eq!(s.contains(q), q < 200 && q % 3 == 0, "state {q}");
        }
    }

    #[test]
    fn union_intersection_difference_match_btreeset() {
        use std::collections::BTreeSet;
        let a_members = [0usize, 5, 63, 64, 100, 191, 192];
        let b_members = [5usize, 64, 65, 100, 150, 192, 300];
        let (a, b): (StateSet, StateSet) = (
            a_members.iter().copied().collect(),
            b_members.iter().copied().collect(),
        );
        let (ba, bb): (BTreeSet<_>, BTreeSet<_>) = (
            a_members.iter().copied().collect(),
            b_members.iter().copied().collect(),
        );

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            ba.union(&bb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            ba.intersection(&bb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.difference(&b).iter().collect::<Vec<_>>(),
            ba.difference(&bb).copied().collect::<Vec<_>>()
        );
        assert!(a.intersects(&b));
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn equality_ignores_touched_universe() {
        // A set that grew to word 5 and shrank back must equal a fresh set.
        let mut big = StateSet::new();
        big.insert(320);
        big.insert(2);
        big.remove(320);
        let small = StateSet::from_iter([2]);
        assert_eq!(big, small);
        assert_eq!(fx_hash(&big), fx_hash(&small));
        let mut inter = StateSet::from_iter([2, 320]);
        inter.intersect_with(&small);
        assert_eq!(inter, small);
        let mut diff = StateSet::from_iter([2, 320]);
        diff.difference_with(&StateSet::from_iter([320]));
        assert_eq!(diff, small);
    }

    #[test]
    fn subset_checks_across_word_lengths() {
        let small = StateSet::from_iter([1, 63]);
        let large = StateSet::from_iter([1, 63, 200]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(StateSet::new().is_subset(&small));
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_seen_order() {
        let mut i: Interner<(usize, usize)> = Interner::with_capacity(4);
        assert!(i.is_empty());
        assert_eq!(i.intern((7, 7)), (0, true));
        assert_eq!(i.intern((1, 2)), (1, true));
        assert_eq!(i.intern((7, 7)), (0, false));
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(&(1, 2)), Some(1));
        assert_eq!(i.get(&(9, 9)), None);
        assert_eq!(i.key(1), &(1, 2));
    }

    #[test]
    fn pair_table_flat_and_sparse_agree() {
        // Tiny bound: flat. Astronomic bound: sparse. Same behavior.
        let mut flat = PairTable::new(8, 8);
        let mut sparse = PairTable::new(usize::MAX / 2, 4);
        for (i, (p, q)) in [(0, 0), (7, 7), (3, 4), (4, 3)].into_iter().enumerate() {
            assert_eq!(flat.get(p, q), None);
            assert_eq!(sparse.get(p, q), None);
            flat.set(p, q, i);
            sparse.set(p, q, i);
        }
        for (i, (p, q)) in [(0, 0), (7, 7), (3, 4), (4, 3)].into_iter().enumerate() {
            assert_eq!(flat.get(p, q), Some(i));
            assert_eq!(sparse.get(p, q), Some(i));
        }
        assert_eq!(flat.get(1, 1), None);
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let h1 = fx_hash(&[1u64, 2, 3][..]);
        let h2 = fx_hash(&[1u64, 2, 3][..]);
        let h3 = fx_hash(&[3u64, 2, 1][..]);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3, "order must matter");
    }
}
