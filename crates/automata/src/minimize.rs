//! DFA minimization (Hopcroft's partition-refinement algorithm).

use std::collections::VecDeque;

use crate::dfa::Dfa;
use crate::stateset::StateSet;
use crate::StateId;

/// Returns the minimal *complete* DFA for `dfa`'s language.
///
/// The input is completed and stripped of unreachable states first; the
/// output's states are Hopcroft partition blocks, numbered in discovery
/// order, so the result is canonical up to this deterministic numbering.
pub(crate) fn minimize(dfa: &Dfa) -> Dfa {
    let d = dfa.complete().remove_unreachable();
    let n = d.state_count();
    if n == 0 {
        // No states at all: represent ∅ with a single rejecting sink.
        let mut out = Dfa::new(d.alphabet().clone());
        let sink = out.add_state(false);
        out.set_initial(sink);
        for a in out.alphabet().clone().symbols() {
            out.set_transition(sink, a, sink);
        }
        return out;
    }

    // Inverse transition table: inv[a][q] = { p | δ(p, a) = q }.
    let k = d.alphabet().len();
    let mut inv: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; k];
    for (p, a, q) in d.transitions() {
        inv[a.index()][q].push(p);
    }

    // Initial partition {F, Q \ F}, dropping empty blocks.
    let mut blocks: Vec<StateSet> = Vec::new();
    let mut block_of: Vec<usize> = vec![0; n];
    let accepting: StateSet = (0..n).filter(|&q| d.is_accepting(q)).collect();
    let rejecting: StateSet = (0..n).filter(|&q| !d.is_accepting(q)).collect();
    for set in [accepting, rejecting] {
        if !set.is_empty() {
            let id = blocks.len();
            for q in set.iter() {
                block_of[q] = id;
            }
            blocks.push(set);
        }
    }

    // Worklist of (block, symbol) splitters, membership tracked in a flat
    // bit vector indexed `block * k + symbol` (grown as blocks split).
    // Seeding with every block is correct (the "smaller half" rule is only
    // an optimization).
    let mut work: VecDeque<(usize, usize)> = VecDeque::new();
    let mut in_work: Vec<bool> = vec![true; blocks.len() * k];
    for b in 0..blocks.len() {
        for a in 0..k {
            work.push_back((b, a));
        }
    }

    while let Some((bi, a)) = work.pop_front() {
        in_work[bi * k + a] = false;
        // X = δ⁻¹(blocks[bi], a)
        let mut x = StateSet::with_universe(n);
        for q in blocks[bi].iter() {
            for &p in &inv[a][q] {
                x.insert(p);
            }
        }
        if x.is_empty() {
            continue;
        }
        // Split every block that X cuts properly.
        let mut affected = StateSet::new();
        for p in x.iter() {
            affected.insert(block_of[p]);
        }
        for yi in affected.iter() {
            let inter = blocks[yi].intersection(&x);
            if inter.len() == blocks[yi].len() {
                continue; // X ⊇ Y: no split
            }
            let diff = blocks[yi].difference(&x);
            let new_id = blocks.len();
            // Keep the larger part in place, move the smaller out: then every
            // future splitter derived from the moved part is cheap.
            let (stay, moved) = if inter.len() <= diff.len() {
                (diff, inter)
            } else {
                (inter, diff)
            };
            for q in moved.iter() {
                block_of[q] = new_id;
            }
            blocks[yi] = stay;
            blocks.push(moved);
            // If (yi, c) is still queued it now denotes the kept half, so
            // queueing the moved (smaller) half covers both; if it is not
            // queued, the smaller-half rule says queueing the moved half
            // alone suffices. Either way: queue (new_id, c).
            in_work.resize(blocks.len() * k, false);
            for c in 0..k {
                if !in_work[new_id * k + c] {
                    in_work[new_id * k + c] = true;
                    work.push_back((new_id, c));
                }
            }
        }
    }

    // Quotient automaton, numbered by BFS from the initial block.
    let mut out = Dfa::new(d.alphabet().clone());
    let mut number: Vec<Option<StateId>> = vec![None; blocks.len()];
    let b0 = block_of[d.initial()];
    let rep = |b: usize, blocks: &Vec<StateSet>| -> StateId {
        blocks[b]
            .first()
            .expect("refinement keeps blocks non-empty")
    };
    let mut queue = VecDeque::from([b0]);
    let q0 = out.add_state(d.is_accepting(rep(b0, &blocks)));
    out.set_initial(q0);
    number[b0] = Some(q0);
    while let Some(b) = queue.pop_front() {
        let id = number[b].expect("every queued block was numbered first");
        let r = rep(b, &blocks);
        for a in d.alphabet().clone().symbols() {
            let t = d.next(r, a).expect("input was completed");
            let tb = block_of[t];
            let tid = match number[tb] {
                Some(tid) => tid,
                None => {
                    let tid = out.add_state(d.is_accepting(rep(tb, &blocks)));
                    number[tb] = Some(tid);
                    queue.push_back(tb);
                    tid
                }
            };
            out.set_transition(id, a, tid);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{dfa_equivalent, Alphabet, Nfa};

    #[test]
    fn minimize_is_idempotent_and_language_preserving() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        // L = words with "aa" as factor (3-state NFA → DFA → minimize).
        let mut n = Nfa::new(ab);
        let q0 = n.add_state(false);
        let q1 = n.add_state(false);
        let q2 = n.add_state(true);
        n.set_initial(q0);
        for s in [a, b] {
            n.add_transition(q0, s, q0);
            n.add_transition(q2, s, q2);
        }
        n.add_transition(q0, a, q1);
        n.add_transition(q1, a, q2);
        let d = n.determinize();
        let m = d.min_dfa();
        assert!(dfa_equivalent(&d, &m));
        let m2 = m.min_dfa();
        assert_eq!(m.state_count(), m2.state_count());
        // Known minimal size: 3 live states + no sink needed (complete).
        assert_eq!(m.state_count(), 3);
    }

    #[test]
    fn minimize_empty_language() {
        let ab = Alphabet::new(["a"]).unwrap();
        let n = Nfa::new(ab);
        let m = n.determinize().min_dfa();
        // One all-rejecting sink.
        assert_eq!(m.state_count(), 1);
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn minimize_universal_language() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut n = Nfa::new(ab.clone());
        let q0 = n.add_state(true);
        let q1 = n.add_state(true);
        n.set_initial(q0);
        for s in [a, b] {
            n.add_transition(q0, s, q1);
            n.add_transition(q1, s, q0);
        }
        let m = n.determinize().min_dfa();
        assert_eq!(m.state_count(), 1);
        assert!(m.accepts(&[a, b, b, a]));
    }
}
