//! On-the-fly language inclusion with antichain subsumption.
//!
//! The materializing pipeline decides `L(A) ⊆ L(B)` by determinizing both
//! automata, building the difference product, and searching it for an
//! accepted word — paying for every macro-state of `B`'s subset
//! construction whether or not a counterexample search would ever visit it.
//! This module fuses the three stages into one breadth-first search over
//! *(state of `A`, macro-state of `B`)* pairs generated on demand:
//!
//! * **On-the-fly product** — a node `(q, S)` means some run of `A` on the
//!   current word `w` ends in `q` while `S = δ_B(initials, w)` is the full
//!   set of `B` states reachable on `w`. Successors are computed from the
//!   transition tables directly; no automaton is ever constructed.
//! * **Counterexample check** — `w ∈ L(A) \ L(B)` exactly when `q` is
//!   accepting and `S` contains no accepting state, so each node is tested
//!   as it is generated and the search stops at the *first* hit (BFS layer
//!   order makes it a shortest one). The word is reconstructed from parent
//!   pointers into the existing witness format.
//! * **Antichain subsumption** — counterexamples reachable from `(q, S′)`
//!   are a subset of those reachable from `(q, S)` whenever `S ⊆ S′`
//!   (smaller macro-states accept fewer words), so a candidate whose
//!   macro-state is a superset of one already admitted on the same `A`
//!   state is dropped. Per `A` state only the minimal macro-states are kept
//!   ([`StateSet::is_subset`] tests); on hard inputs this collapses an
//!   exponential frontier to a handful of nodes.
//!
//! Layers above the parallel threshold fan the macro-state successor rows
//! out across the guard's [`Pool`](crate::Pool) with the same
//! sequential-merge discipline as the layered subset construction
//! (DESIGN.md §10): workers compute pure rows, and every effect — guard
//! charges, dominance checks, counters, witness bookkeeping — happens in a
//! sequential merge that walks the rows in exactly the order the
//! single-threaded loop would. Verdicts, charge sequences, and the
//! `lazy/*` counters are bit-for-bit identical at any thread count.

use std::sync::Arc;

use crate::error::AutomataError;
use crate::guard::Guard;
use crate::nfa::{Nfa, PAR_LAYER_THRESHOLD};
use crate::stateset::{FxHashMap, StateSet};
use crate::word::Word;
use crate::{StateId, Symbol};

/// One frontier node: a single `A` state paired with the `B` macro-state
/// reached on the same word, plus the edge that discovered it (for witness
/// reconstruction).
struct Node {
    left: StateId,
    right: StateSet,
    parent: Option<(usize, Symbol)>,
    /// Set when a later-admitted node dominated this one while it was still
    /// waiting in the next layer; dead nodes are dropped before expansion.
    dead: bool,
}

/// The per-symbol successor row of one node's macro-state: `Some(S′)` for
/// symbols on which the node's `A` state has at least one successor (the
/// only ones that generate candidates), `None` otherwise.
type Row = Vec<Option<StateSet>>;

struct Search<'x> {
    a: &'x Nfa,
    b: &'x Nfa,
    guard: &'x Guard,
    nodes: Vec<Node>,
    /// Per `A` state, the minimal (antichain) macro-states admitted so far,
    /// each tagged with the node that owns it (so displacing an entry can
    /// mark the owner dead).
    antichain: FxHashMap<StateId, Vec<(StateSet, usize)>>,
}

impl Search<'_> {
    fn count(&self, name: &'static str) {
        if let Some(m) = self.guard.metrics() {
            m.counter(name).inc();
        }
    }

    /// The word spelled by the parent chain ending at `parent`.
    fn witness(&self, mut parent: Option<(usize, Symbol)>) -> Word {
        let mut w = Vec::new();
        while let Some((pi, sym)) = parent {
            w.push(sym);
            parent = self.nodes[pi].parent;
        }
        w.reverse();
        w
    }

    /// Tests a candidate node and either reports it as a counterexample,
    /// drops it as subsumed, or admits it into `next_layer`.
    fn admit(
        &mut self,
        left: StateId,
        right: &StateSet,
        parent: Option<(usize, Symbol)>,
        next_layer: &mut Vec<usize>,
    ) -> Result<Option<Word>, AutomataError> {
        if self.a.is_accepting(left) && !right.iter().any(|q| self.b.is_accepting(q)) {
            self.count("lazy/early_exit");
            return Ok(Some(self.witness(parent)));
        }
        let chain = self.antichain.entry(left).or_default();
        if chain.iter().any(|(t, _)| t.is_subset(right)) {
            self.count("lazy/subsumed");
            return Ok(None);
        }
        // Keep the antichain minimal, and *retro-prune*: a displaced entry's
        // owner node is marked dead, so if it is still waiting in the next
        // layer it is dropped before expansion. This matters when admission
        // order works against the search (symbol order can deliver every
        // superset before the minimal macro-state that dominates them);
        // without it the frontier degenerates to the full subset
        // construction. The mark-and-filter happens entirely inside the
        // sequential merge, so it is deterministic at any thread count.
        let id = self.nodes.len();
        let mut displaced = Vec::new();
        chain.retain(|(t, owner)| {
            let drop = right.is_subset(t);
            if drop {
                displaced.push(*owner);
            }
            !drop
        });
        chain.push((right.clone(), id));
        for owner in displaced {
            self.nodes[owner].dead = true;
        }
        self.guard.charge_state()?;
        self.nodes.push(Node {
            left,
            right: right.clone(),
            parent,
            dead: false,
        });
        next_layer.push(id);
        Ok(None)
    }
}

/// Decides `L(a) ⊆ L(b)` by lazy antichain search; on failure returns a
/// shortest witness word in `L(a) \ L(b)`.
///
/// Semantically equivalent to determinizing both automata and running
/// [`crate::dfa_included_with`], but only ever expands (state, macro-state)
/// pairs the counterexample search actually reaches, prunes
/// subset-dominated frontier nodes, and exits on the first hit. Expanded
/// pairs are charged as states and generated candidates as transitions
/// against the guard; with a metrics registry attached the search reports
/// `lazy/expanded`, `lazy/subsumed`, and `lazy/early_exit` counters plus
/// per-layer `lazy-layer`/`lazy-prune` trace instants.
///
/// Note the witness is a shortest word of `L(a) \ L(b)`, like the eager
/// path's, but among equal-length witnesses the tie-break may differ from
/// the difference-product search.
///
/// # Errors
///
/// [`AutomataError::BudgetExceeded`] or [`AutomataError::Cancelled`] when
/// the guard trips.
pub fn nfa_included_lazy(a: &Nfa, b: &Nfa, guard: &Guard) -> Result<Option<Word>, AutomataError> {
    let _span = guard.span("lazy_inclusion");
    let symbols: Vec<Symbol> = a.alphabet().symbols().collect();
    let mut search = Search {
        a,
        b,
        guard,
        nodes: Vec::new(),
        antichain: FxHashMap::default(),
    };

    let s0: StateSet = b.initial().iter().copied().collect();
    let mut layer: Vec<usize> = Vec::new();
    for &q in a.initial() {
        if let Some(w) = search.admit(q, &s0, None, &mut layer)? {
            return Ok(Some(w));
        }
    }

    let shared_a = Arc::new(a.clone());
    let shared_b = Arc::new(b.clone());
    let probe = guard.probe();
    let mut subsumed_before = 0u64;
    loop {
        // Retro-prune: drop nodes that a later admission dominated while
        // they waited in this layer. They were never expanded, so skipping
        // them loses no counterexamples — any word escaping from a dominated
        // node also escapes from its (same-or-earlier-layer) dominator.
        let admitted = layer.len();
        layer.retain(|&ni| !search.nodes[ni].dead);
        for _ in layer.len()..admitted {
            search.count("lazy/subsumed");
        }
        if layer.is_empty() {
            break;
        }
        guard.trace_instant("lazy-layer", Some(("width", layer.len() as u64)));
        let items: Arc<Vec<(StateId, StateSet)>> = Arc::new(
            layer
                .iter()
                .map(|&ni| (search.nodes[ni].left, search.nodes[ni].right.clone()))
                .collect(),
        );
        let expand = {
            let a = Arc::clone(&shared_a);
            let b = Arc::clone(&shared_b);
            let probe = probe.clone();
            let symbols = symbols.clone();
            move |i: usize| -> Result<Row, AutomataError> {
                probe.check()?;
                let (left, right) = &items[i];
                let mut row = Vec::with_capacity(symbols.len());
                for &sym in &symbols {
                    if a.successor_slice(*left, sym).is_empty() {
                        row.push(None);
                        continue;
                    }
                    let mut next = StateSet::with_universe(b.state_count());
                    for q in right.iter() {
                        for &q2 in b.successor_slice(q, sym) {
                            next.insert(q2);
                        }
                    }
                    row.push(Some(next));
                }
                Ok(row)
            }
        };
        let rows: Vec<Result<Row, AutomataError>> = match guard.par_pool() {
            Some(pool) if layer.len() >= PAR_LAYER_THRESHOLD => {
                pool.map_indexed(layer.len(), Arc::new(expand))
            }
            _ => (0..layer.len()).map(expand).collect(),
        };

        // Sequential merge, in FIFO order: every effect — charges,
        // dominance tests, counters, node numbering — happens here, so the
        // parallel path is bit-for-bit the sequential one.
        let m = layer.len();
        let mut next_layer: Vec<usize> = Vec::new();
        for (li, (&ni, row)) in layer.iter().zip(rows).enumerate() {
            guard.note_frontier((m - 1 - li) + next_layer.len());
            search.count("lazy/expanded");
            let left = search.nodes[ni].left;
            for (&sym, cell) in symbols.iter().zip(row?) {
                let Some(next) = cell else { continue };
                for &q2 in a.successor_slice(left, sym) {
                    guard.charge_transition()?;
                    if let Some(w) = search.admit(q2, &next, Some((ni, sym)), &mut next_layer)? {
                        return Ok(Some(w));
                    }
                }
            }
        }
        let subsumed_now = search
            .guard
            .metrics()
            .map_or(0, |m| m.counter("lazy/subsumed").get());
        if subsumed_now > subsumed_before {
            guard.trace_instant(
                "lazy-prune",
                Some(("count", subsumed_now - subsumed_before)),
            );
            subsumed_before = subsumed_now;
        }
        layer = next_layer;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Alphabet, Nfa};

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    /// The eager reference: determinize both sides and difference them.
    fn eager(a: &Nfa, b: &Nfa) -> Option<Word> {
        crate::dfa_included(&a.determinize(), &b.determinize())
    }

    #[test]
    fn agrees_with_eager_on_small_machines() {
        let (ab, a, b) = ab2();
        let univ = Nfa::from_parts(ab.clone(), 1, [0], [0], [(0, a, 0), (0, b, 0)]).unwrap();
        let no_bb = Nfa::from_parts(
            ab.clone(),
            2,
            [0],
            [0, 1],
            [(0, a, 0), (0, b, 1), (1, a, 0)],
        )
        .unwrap();
        let g = Guard::unlimited();
        assert_eq!(nfa_included_lazy(&no_bb, &univ, &g).unwrap(), None);
        // Both searches find a shortest witness; `bb` is the unique one.
        assert_eq!(
            nfa_included_lazy(&univ, &no_bb, &g).unwrap(),
            Some(vec![b, b])
        );
        assert_eq!(eager(&univ, &no_bb), Some(vec![b, b]));
    }

    #[test]
    fn empty_left_language_is_always_included() {
        let (ab, a, _) = ab2();
        let empty = Nfa::new(ab.clone());
        let l1 = Nfa::from_parts(ab, 2, [0], [1], [(0, a, 1)]).unwrap();
        let g = Guard::unlimited();
        assert_eq!(nfa_included_lazy(&empty, &l1, &g).unwrap(), None);
        // The reverse fails on the shortest word of L1.
        assert_eq!(nfa_included_lazy(&l1, &empty, &g).unwrap(), Some(vec![a]));
    }

    #[test]
    fn epsilon_witness_when_right_is_empty() {
        let (ab, a, _) = ab2();
        // L(a*) with all states accepting vs the empty language: ε escapes.
        let l = Nfa::from_parts(ab.clone(), 1, [0], [0], [(0, a, 0)]).unwrap();
        let none = Nfa::new(ab);
        let g = Guard::unlimited();
        assert_eq!(nfa_included_lazy(&l, &none, &g).unwrap(), Some(vec![]));
    }

    #[test]
    fn budget_trips_deterministically() {
        let (ab, a, b) = ab2();
        // Included languages, so the search must explore (no early exit).
        let l = Nfa::from_parts(
            ab.clone(),
            3,
            [0],
            [0, 1, 2],
            [(0, a, 1), (1, b, 2), (2, a, 0), (0, b, 0)],
        )
        .unwrap();
        let univ = Nfa::from_parts(ab, 1, [0], [0], [(0, a, 0), (0, b, 0)]).unwrap();
        let budget = crate::Budget::unlimited().with_max_states(1);
        let g1 = Guard::new(budget.clone());
        let g2 = Guard::new(budget);
        let e1 = format!("{}", nfa_included_lazy(&l, &univ, &g1).unwrap_err());
        let e2 = format!("{}", nfa_included_lazy(&l, &univ, &g2).unwrap_err());
        // Identical trip points up to the (wall-clock) elapsed suffix.
        assert_eq!(e1.split(" in ").next(), e2.split(" in ").next());
    }

    #[test]
    fn subsumption_prunes_dominated_macrostates() {
        let (ab, a, b) = ab2();
        // A: universal over {a,b} (one all-accepting state). B: after any
        // `a` the macro-state grows; the all-b macro-state stays minimal and
        // subsumes every superset on the shared A state.
        let univ = Nfa::from_parts(ab.clone(), 1, [0], [0], [(0, a, 0), (0, b, 0)]).unwrap();
        let big = Nfa::from_parts(
            ab,
            3,
            [0],
            [0, 1, 2],
            [
                (0, a, 0),
                (0, b, 0),
                (0, a, 1),
                (1, a, 2),
                (1, b, 2),
                (2, a, 2),
                (2, b, 2),
            ],
        )
        .unwrap();
        let reg = rl_obs::MetricsRegistry::new();
        let g = Guard::unlimited().with_metrics(reg.clone());
        assert_eq!(nfa_included_lazy(&univ, &big, &g).unwrap(), None);
        assert!(reg.counter("lazy/subsumed").get() > 0);
        assert!(reg.counter("lazy/expanded").get() > 0);
        assert_eq!(reg.counter("lazy/early_exit").get(), 0);
    }
}
