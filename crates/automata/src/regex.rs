//! Regular expressions over action alphabets, compiled to NFAs by the
//! Thompson construction.
//!
//! Used throughout the test suites and examples to state languages
//! compactly; the ω-side (`U·V^ω` expressions) lives in `rl-buchi`.
//!
//! # Syntax
//!
//! ```text
//! expr   := term ('+' term)*          alternation (also '|')
//! term   := factor*                   concatenation (also explicit '.')
//! factor := atom ('*' | '+'? …)       '*' star, '?' option
//! atom   := symbol-name | 'ε' | '()' | '(' expr ')'
//! ```
//!
//! Symbol names are identifiers; whitespace separates adjacent names (so
//! `lock free` or `lock.free` is the concatenation of two actions). `ε`
//! (or `eps`) is the empty word.

use std::fmt;

use crate::alphabet::{Alphabet, Symbol};
use crate::error::AutomataError;
use crate::nfa::Nfa;

/// A regular expression over an [`Alphabet`].
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Regex};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["lock", "free", "request"])?;
/// // (lock free)* request
/// let re = Regex::parse(&ab, "(lock free)* request")?;
/// let nfa = re.to_nfa();
/// let w = rl_automata::parse_word(&ab, "lock.free.lock.free.request")?;
/// assert!(nfa.accepts(&w));
/// let bad = rl_automata::parse_word(&ab, "lock.request")?;
/// assert!(!nfa.accepts(&bad));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Symbol(
        /// The alphabet the symbol belongs to.
        Alphabet,
        /// The symbol itself.
        Symbol,
    ),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation (union).
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// A single-symbol expression.
    pub fn symbol(alphabet: &Alphabet, sym: Symbol) -> Regex {
        Regex::Symbol(alphabet.clone(), sym)
    }

    /// Concatenation `self · other`.
    pub fn then(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// Alternation `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn or(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// Kleene star `self*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// Option `self?` = `self + ε`.
    pub fn opt(self) -> Regex {
        self.or(Regex::Epsilon)
    }

    /// One-or-more `self⁺` = `self · self*`.
    pub fn plus(self) -> Regex {
        self.clone().then(self.star())
    }

    /// The alphabet the expression mentions, if any symbol occurs.
    fn alphabet(&self) -> Option<&Alphabet> {
        match self {
            Regex::Empty | Regex::Epsilon => None,
            Regex::Symbol(ab, _) => Some(ab),
            Regex::Concat(x, y) | Regex::Alt(x, y) => x.alphabet().or_else(|| y.alphabet()),
            Regex::Star(x) => x.alphabet(),
        }
    }

    /// Parses an expression over `alphabet` (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownSymbol`] for names outside the
    /// alphabet and [`AutomataError::InvalidState`] (with position `0`) for
    /// syntax errors; the error message names the problem.
    pub fn parse(alphabet: &Alphabet, text: &str) -> Result<Regex, AutomataError> {
        let mut parser = ReParser {
            alphabet: alphabet.clone(),
            chars: text.chars().collect(),
            pos: 0,
        };
        let re = parser.alt()?;
        parser.skip_ws();
        if parser.pos != parser.chars.len() {
            return Err(AutomataError::UnknownSymbol(format!(
                "trailing input at {}",
                parser.pos
            )));
        }
        Ok(re)
    }

    /// Compiles to an NFA (Thompson construction + ε-elimination).
    ///
    /// When the expression mentions no symbol at all (`ε`, `∅`) the NFA is
    /// built over a one-symbol placeholder alphabet; use
    /// [`Regex::to_nfa_over`] to pin the alphabet explicitly.
    pub fn to_nfa(&self) -> Nfa {
        let alphabet = self
            .alphabet()
            .cloned()
            .unwrap_or_else(|| Alphabet::new(["⊥"]).expect("fallback alphabet"));
        self.to_nfa_with(alphabet)
    }

    /// Compiles to an NFA over the given alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the expression
    /// mentions symbols of a different alphabet.
    pub fn to_nfa_over(&self, alphabet: &Alphabet) -> Result<Nfa, AutomataError> {
        if let Some(own) = self.alphabet() {
            own.check_compatible(alphabet)?;
        }
        Ok(self.to_nfa_with(alphabet.clone()))
    }

    /// Whether the expression matches the empty word.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Symbol(..) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(x, y) => x.nullable() && y.nullable(),
            Regex::Alt(x, y) => x.nullable() || y.nullable(),
        }
    }

    /// The Brzozowski derivative `∂_sym(self)`: the expression matching
    /// exactly the words `w` with `sym·w` matched by `self`.
    pub fn derivative(&self, sym: Symbol) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Symbol(_, s) => {
                if *s == sym {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(x, y) => {
                let head = x.derivative(sym).then((**y).clone());
                if x.nullable() {
                    head.or(y.derivative(sym))
                } else {
                    head
                }
            }
            Regex::Alt(x, y) => x.derivative(sym).or(y.derivative(sym)),
            Regex::Star(x) => x.derivative(sym).then(self.clone()),
        }
    }

    /// Direct matching by Brzozowski derivatives — an implementation
    /// independent of the Thompson construction, used to cross-validate
    /// [`Regex::to_nfa`] in the property tests.
    ///
    /// # Example
    ///
    /// ```
    /// use rl_automata::{Alphabet, Regex};
    ///
    /// # fn main() -> Result<(), rl_automata::AutomataError> {
    /// let ab = Alphabet::new(["a", "b"])?;
    /// let re = Regex::parse(&ab, "(a b)*")?;
    /// let w = rl_automata::parse_word(&ab, "a.b.a.b")?;
    /// assert!(re.matches(&w));
    /// # Ok(())
    /// # }
    /// ```
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut cur = self.clone();
        for &sym in word {
            cur = cur.derivative(sym);
        }
        cur.nullable()
    }

    fn to_nfa_with(&self, alphabet: Alphabet) -> Nfa {
        // Thompson fragments over ε-transitions.
        let mut transitions: Vec<(usize, Option<Symbol>, usize)> = Vec::new();
        let mut next = 0usize;
        let mut fresh = || {
            let s = next;
            next += 1;
            s
        };
        // Build returns (start, finish).
        fn build(
            re: &Regex,
            transitions: &mut Vec<(usize, Option<Symbol>, usize)>,
            fresh: &mut dyn FnMut() -> usize,
        ) -> (usize, usize) {
            match re {
                Regex::Empty => (fresh(), fresh()),
                Regex::Epsilon => {
                    let s = fresh();
                    let f = fresh();
                    transitions.push((s, None, f));
                    (s, f)
                }
                Regex::Symbol(_, sym) => {
                    let s = fresh();
                    let f = fresh();
                    transitions.push((s, Some(*sym), f));
                    (s, f)
                }
                Regex::Concat(x, y) => {
                    let (sx, fx) = build(x, transitions, fresh);
                    let (sy, fy) = build(y, transitions, fresh);
                    transitions.push((fx, None, sy));
                    (sx, fy)
                }
                Regex::Alt(x, y) => {
                    let s = fresh();
                    let f = fresh();
                    let (sx, fx) = build(x, transitions, fresh);
                    let (sy, fy) = build(y, transitions, fresh);
                    transitions.push((s, None, sx));
                    transitions.push((s, None, sy));
                    transitions.push((fx, None, f));
                    transitions.push((fy, None, f));
                    (s, f)
                }
                Regex::Star(x) => {
                    let s = fresh();
                    let f = fresh();
                    let (sx, fx) = build(x, transitions, fresh);
                    transitions.push((s, None, sx));
                    transitions.push((s, None, f));
                    transitions.push((fx, None, sx));
                    transitions.push((fx, None, f));
                    (s, f)
                }
            }
        }
        let (start, finish) = build(self, &mut transitions, &mut fresh);
        Nfa::from_epsilon_parts(alphabet, next, [start], [finish], transitions)
            .expect("thompson indices are dense")
    }
}

impl Regex {
    /// Converts a DFA back into an equivalent regular expression by state
    /// elimination (Kleene's construction) — the converse of
    /// [`Regex::to_nfa`].
    ///
    /// The result can be exponentially large in the automaton size; use for
    /// presentation and round-trip testing, not as a data structure.
    ///
    /// # Example
    ///
    /// ```
    /// use rl_automata::{dfa_equivalent, Alphabet, Regex};
    ///
    /// # fn main() -> Result<(), rl_automata::AutomataError> {
    /// let ab = Alphabet::new(["a", "b"])?;
    /// let d = Regex::parse(&ab, "(a b)* a?")?.to_nfa().determinize();
    /// let back = Regex::from_dfa(&d);
    /// assert!(dfa_equivalent(&back.to_nfa().determinize(), &d));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_dfa(dfa: &crate::dfa::Dfa) -> Regex {
        let alphabet = dfa.alphabet().clone();
        let n = dfa.state_count();
        if n == 0 {
            return Regex::Empty;
        }
        // Generalized NFA over expressions: edge[i][j] = Regex for i→j, with
        // two virtual states: n = start, n+1 = finish.
        let total = n + 2;
        let (start, finish) = (n, n + 1);
        let mut edge: Vec<Vec<Option<Regex>>> = vec![vec![None; total]; total];
        let connect = |edges: &mut Vec<Vec<Option<Regex>>>, i: usize, j: usize, r: Regex| {
            edges[i][j] = Some(match edges[i][j].take() {
                None => r,
                Some(prev) => prev.or(r),
            });
        };
        for (p, a, q) in dfa.transitions() {
            connect(&mut edge, p, q, Regex::symbol(&alphabet, a));
        }
        connect(&mut edge, start, dfa.initial(), Regex::Epsilon);
        for q in 0..n {
            if dfa.is_accepting(q) {
                connect(&mut edge, q, finish, Regex::Epsilon);
            }
        }
        // Eliminate the real states one by one.
        for k in 0..n {
            let self_loop = edge[k][k].take();
            let star = self_loop.map(Regex::star);
            let ins: Vec<(usize, Regex)> = (0..total)
                .filter(|&i| i != k)
                .filter_map(|i| edge[i][k].clone().map(|r| (i, r)))
                .collect();
            let outs: Vec<(usize, Regex)> = (0..total)
                .filter(|&j| j != k)
                .filter_map(|j| edge[k][j].clone().map(|r| (j, r)))
                .collect();
            for (i, rin) in &ins {
                for (j, rout) in &outs {
                    let mut path = rin.clone();
                    if let Some(s) = &star {
                        path = path.then(s.clone());
                    }
                    path = path.then(rout.clone());
                    connect(&mut edge, *i, *j, path);
                }
            }
            for row in edge.iter_mut().take(total) {
                row[k] = None;
            }
            for cell in edge[k].iter_mut().take(total) {
                *cell = None;
            }
        }
        edge[start][finish].take().unwrap_or(Regex::Empty)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Alt(..) => 0,
                Regex::Concat(..) => 1,
                _ => 2,
            }
        }
        fn child(f: &mut fmt::Formatter<'_>, parent: u8, c: &Regex) -> fmt::Result {
            if prec(c) < parent {
                write!(f, "({c})")
            } else {
                write!(f, "{c}")
            }
        }
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Symbol(ab, s) => write!(f, "{}", ab.name(*s)),
            Regex::Concat(x, y) => {
                child(f, 1, x)?;
                write!(f, " ")?;
                child(f, 1, y)
            }
            Regex::Alt(x, y) => {
                child(f, 0, x)?;
                write!(f, " + ")?;
                child(f, 0, y)
            }
            Regex::Star(x) => {
                child(f, 2, x)?;
                write!(f, "*")
            }
        }
    }
}

struct ReParser {
    alphabet: Alphabet,
    chars: Vec<char>,
    pos: usize,
}

impl ReParser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_whitespace() || *c == '.')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn alt(&mut self) -> Result<Regex, AutomataError> {
        let mut left = self.concat()?;
        while matches!(self.peek(), Some('+') | Some('|')) {
            self.pos += 1;
            let right = self.concat()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn concat(&mut self) -> Result<Regex, AutomataError> {
        let mut parts: Vec<Regex> = Vec::new();
        loop {
            match self.peek() {
                Some(c) if c == '(' || c.is_alphanumeric() || c == '_' || c == 'ε' => {
                    parts.push(self.postfix()?);
                }
                _ => break,
            }
        }
        Ok(match parts.len() {
            0 => Regex::Epsilon,
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("non-empty");
                it.fold(first, Regex::then)
            }
        })
    }

    fn postfix(&mut self) -> Result<Regex, AutomataError> {
        let mut base = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    base = base.star();
                }
                Some('?') => {
                    self.pos += 1;
                    base = base.opt();
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Regex, AutomataError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                if self.peek() == Some(')') {
                    self.pos += 1;
                    return Ok(Regex::Epsilon);
                }
                let inner = self.alt()?;
                if self.peek() != Some(')') {
                    return Err(AutomataError::UnknownSymbol("expected ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some('ε') => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                if name == "eps" {
                    return Ok(Regex::Epsilon);
                }
                let sym = self.alphabet.require(&name)?;
                Ok(Regex::symbol(&self.alphabet, sym))
            }
            other => Err(AutomataError::UnknownSymbol(format!(
                "expected an atom, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::parse_word;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b", "c"]).unwrap()
    }

    fn accepts(re: &str, word: &str) -> bool {
        let ab = ab();
        let r = Regex::parse(&ab, re).unwrap();
        let w = parse_word(&ab, word).unwrap();
        r.to_nfa().accepts(&w)
    }

    #[test]
    fn basic_operations() {
        assert!(accepts("a", "a"));
        assert!(!accepts("a", "b"));
        assert!(accepts("a b", "a.b"));
        assert!(accepts("a + b", "b"));
        assert!(accepts("a*", ""));
        assert!(accepts("a*", "a.a.a"));
        assert!(accepts("a? b", "b"));
        assert!(accepts("a? b", "a.b"));
        assert!(!accepts("a? b", "a.a.b"));
    }

    #[test]
    fn grouping_and_precedence() {
        // Concatenation binds tighter than alternation.
        assert!(accepts("a b + c", "a.b"));
        assert!(accepts("a b + c", "c"));
        assert!(!accepts("a b + c", "a.c"));
        assert!(accepts("a (b + c)", "a.c"));
        assert!(accepts("(a b)*", "a.b.a.b"));
        assert!(!accepts("(a b)*", "a"));
    }

    #[test]
    fn epsilon_and_empty() {
        assert!(accepts("ε", ""));
        assert!(accepts("()", ""));
        assert!(accepts("eps + a", "a"));
        let r = Regex::Empty;
        assert!(r.to_nfa().is_empty_language());
    }

    #[test]
    fn plus_is_one_or_more() {
        let ab = ab();
        let a = ab.symbol("a").unwrap();
        let re = Regex::symbol(&ab, a).plus();
        let nfa = re.to_nfa();
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[a]));
        assert!(nfa.accepts(&[a, a, a]));
    }

    #[test]
    fn display_parse_roundtrip() {
        let ab = ab();
        for text in ["a (b + c)* a", "a b + c", "(a + b) (a + c)", "a* b*"] {
            let r = Regex::parse(&ab, text).unwrap();
            let again = Regex::parse(&ab, &r.to_string()).unwrap();
            // Compare languages (structure may re-associate).
            assert!(crate::equiv::dfa_equivalent(
                &r.to_nfa().determinize(),
                &again.to_nfa().determinize()
            ));
        }
    }

    #[test]
    fn unknown_symbol_rejected() {
        let ab = ab();
        assert!(Regex::parse(&ab, "a zz").is_err());
        assert!(Regex::parse(&ab, "a (").is_err());
        assert!(Regex::parse(&ab, "a )").is_err());
    }

    #[test]
    fn matches_equivalent_hand_built_nfa() {
        // (a+b)* c — compare against a direct NFA.
        let ab = ab();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let c = ab.symbol("c").unwrap();
        let re = Regex::parse(&ab, "(a + b)* c").unwrap();
        let direct =
            Nfa::from_parts(ab.clone(), 2, [0], [1], [(0, a, 0), (0, b, 0), (0, c, 1)]).unwrap();
        assert!(crate::equiv::dfa_equivalent(
            &re.to_nfa().determinize(),
            &direct.determinize()
        ));
    }
}

#[cfg(test)]
mod from_dfa_tests {
    use super::*;
    use crate::equiv::dfa_equivalent;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_language() {
        let ab = ab();
        for text in ["(a b)*", "a* b a*", "(a + b)* a", "a?", "a b + b a"] {
            let d = Regex::parse(&ab, text).unwrap().to_nfa().determinize();
            let back = Regex::from_dfa(&d);
            assert!(
                dfa_equivalent(&back.to_nfa_over(&ab).unwrap().determinize(), &d),
                "round trip changed the language of {text}: got {back}"
            );
        }
    }

    #[test]
    fn empty_and_trivial_dfas() {
        let ab = ab();
        let empty = crate::nfa::Nfa::new(ab.clone()).determinize();
        let r = Regex::from_dfa(&empty);
        assert!(r.to_nfa_over(&ab).unwrap().is_empty_language());
        // ε-only language.
        let eps = Regex::Epsilon.to_nfa_over(&ab).unwrap().determinize();
        let r2 = Regex::from_dfa(&eps);
        let nfa = r2.to_nfa_over(&ab).unwrap();
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&[ab.symbol("a").unwrap()]));
    }
}
