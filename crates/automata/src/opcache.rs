//! Per-pipeline memoization of expensive automaton operations.
//!
//! One end-to-end check runs the classical, relative-liveness and
//! relative-safety deciders in sequence, and each of them re-derives the same
//! intermediate machines: the system/property intersection, the prefix
//! language's subset construction, the negated property's complement. An
//! [`OpCache`] attached to a [`crate::Guard`] lets the guarded constructions
//! memoize those results for the lifetime of the pipeline.
//!
//! Keys are structural hashes ([`crate::fx_hash`] over the operand's states,
//! transitions, and alphabet). Hashing alone would be unsound — two distinct
//! automata may collide — so every cache entry stores a clone of its operands
//! and a hit requires full structural equality, checked by the caller-supplied
//! `matches` predicate. A collision therefore costs one extra comparison,
//! never a wrong answer.
//!
//! The cache is reference-counted and single-threaded (like the rest of a
//! [`crate::Guard`], whose counters are `Cell`s): clone the handle freely
//! within one pipeline, but do not send it across threads.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::stateset::FxHashMap;

/// Shared memo table for automaton-level operations.
///
/// Cheap to clone (the handle is reference counted); all clones share one
/// table. See the module docs for the soundness contract.
///
/// # Example
///
/// ```
/// use rl_automata::{Budget, Guard, Nfa, OpCache, Alphabet};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// let nfa = Nfa::from_parts(ab, 2, [0], [1], [(0, a, 1), (1, a, 0)])?;
/// let guard = Guard::new(Budget::unlimited()).with_op_cache(OpCache::new());
/// let d1 = nfa.determinize_with(&guard)?;
/// let d2 = nfa.determinize_with(&guard)?; // memo hit: no re-construction
/// assert_eq!(d1, d2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct OpCache {
    inner: Rc<RefCell<Table>>,
}

#[derive(Default)]
struct Table {
    /// `(operation, structural hash)` → entries. A bucket holds more than
    /// one entry only on hash collision.
    entries: FxHashMap<(&'static str, u64), Vec<Rc<dyn Any>>>,
    hits: usize,
    misses: usize,
}

impl OpCache {
    /// An empty cache.
    pub fn new() -> OpCache {
        OpCache::default()
    }

    /// Looks up `(op, key)`; on miss, runs `build`, stores the result, and
    /// returns it. The boolean is `true` on a hit.
    ///
    /// `matches` must compare the entry's stored operands with the current
    /// ones — returning `true` for structurally different operands breaks
    /// the cache's soundness contract.
    ///
    /// The table lock is *not* held while `build` runs, so a construction may
    /// itself consult the cache (products calling determinization, say).
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is stored in that case.
    pub fn get_or_insert_with<T: 'static, E>(
        &self,
        op: &'static str,
        key: u64,
        matches: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Rc<T>, bool), E> {
        let found = {
            let table = self.inner.borrow();
            table.entries.get(&(op, key)).and_then(|bucket| {
                bucket
                    .iter()
                    .filter_map(|e| e.clone().downcast::<T>().ok())
                    .find(|v| matches(v))
            })
        };
        if let Some(hit) = found {
            self.inner.borrow_mut().hits += 1;
            return Ok((hit, true));
        }
        let value = Rc::new(build()?);
        let mut table = self.inner.borrow_mut();
        table.misses += 1;
        table
            .entries
            .entry((op, key))
            .or_default()
            .push(value.clone() as Rc<dyn Any>);
        Ok((value, false))
    }

    /// Number of lookups answered from the table so far.
    pub fn hits(&self) -> usize {
        self.inner.borrow().hits
    }

    /// Number of lookups that had to build (and then stored) a result.
    pub fn misses(&self) -> usize {
        self.inner.borrow().misses
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.values().map(Vec::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for OpCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let table = self.inner.borrow();
        f.debug_struct("OpCache")
            .field(
                "entries",
                &table.entries.values().map(Vec::len).sum::<usize>(),
            )
            .field("hits", &table.hits)
            .field("misses", &table.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_builds_then_hit_reuses() {
        let cache = OpCache::new();
        let mut built = 0;
        for round in 0..3 {
            let (v, hit) = cache
                .get_or_insert_with::<i64, ()>(
                    "op",
                    42,
                    |&v| v == 7,
                    || {
                        built += 1;
                        Ok(7)
                    },
                )
                .unwrap();
            assert_eq!(*v, 7);
            assert_eq!(hit, round > 0);
        }
        assert_eq!(built, 1);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (2, 1, 1));
    }

    #[test]
    fn colliding_keys_are_kept_apart_by_matches() {
        let cache = OpCache::new();
        // Same (op, key) — as under a real hash collision — but the stored
        // operand differs, so `matches` must reject the first entry.
        let (a, _) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 1,
                || Ok((1, "first")),
            )
            .unwrap();
        let (b, hit) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 2,
                || Ok((2, "second")),
            )
            .unwrap();
        assert!(!hit);
        assert_eq!((a.1, b.1), ("first", "second"));
        assert_eq!(cache.len(), 2);
        // And the first entry is still retrievable.
        let (a2, hit2) = cache
            .get_or_insert_with::<(u8, &'static str), ()>("op", 1, |e| e.0 == 1, || Ok((9, "no")))
            .unwrap();
        assert!(hit2);
        assert_eq!(a2.1, "first");
    }

    #[test]
    fn distinct_ops_do_not_share_entries() {
        let cache = OpCache::new();
        cache
            .get_or_insert_with::<u8, ()>("left", 5, |_| true, || Ok(1))
            .unwrap();
        let (v, hit) = cache
            .get_or_insert_with::<u8, ()>("right", 5, |_| true, || Ok(2))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = OpCache::new();
        let err: Result<_, &str> =
            cache.get_or_insert_with::<u8, _>("op", 3, |_| true, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let (v, hit) = cache
            .get_or_insert_with::<u8, &str>("op", 3, |_| true, || Ok(4))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 4);
    }

    #[test]
    fn clones_share_one_table() {
        let cache = OpCache::new();
        let alias = cache.clone();
        alias
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(3))
            .unwrap();
        let (_, hit) = cache
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(0))
            .unwrap();
        assert!(hit);
        assert!(format!("{cache:?}").contains("hits"));
    }
}
