//! Per-pipeline memoization of expensive automaton operations.
//!
//! One end-to-end check runs the classical, relative-liveness and
//! relative-safety deciders in sequence, and each of them re-derives the same
//! intermediate machines: the system/property intersection, the prefix
//! language's subset construction, the negated property's complement. An
//! [`OpCache`] attached to a [`crate::Guard`] lets the guarded constructions
//! memoize those results for the lifetime of the pipeline.
//!
//! Keys are structural hashes ([`crate::fx_hash`] over the operand's states,
//! transitions, and alphabet). Hashing alone would be unsound — two distinct
//! automata may collide — so every cache entry stores its operands (as
//! interned `Arc`s, see [`OpCache::intern_operand`]) and a hit requires full
//! structural equality, checked by the caller-supplied `matches` predicate.
//! A collision therefore costs one extra comparison, never a wrong answer.
//!
//! The cache is thread-safe and **sharded**: entries are distributed over
//! [`SHARDS`] independently locked tables by the top bits of the key hash,
//! so concurrent pipeline stages — the jobs of a `rlcheck --jobs` batch, or
//! parallel kernels consulting the cache mid-construction — share memoized
//! results without serializing on one lock. Clone the handle freely; all
//! clones (across threads) share one logical table.
//!
//! # Memory accounting and eviction
//!
//! A cache that lives for one CLI invocation can grow without limit; a cache
//! shared by a resident `rlcheck serve` process cannot. Every stored value
//! therefore carries a deterministic byte estimate ([`crate::MemFootprint`]),
//! and a cache built with a byte budget ([`OpCache::with_limits`]) evicts
//! under **cost-aware LRU**: when a shard's resident bytes exceed its slice
//! of the budget (`budget / SHARDS`), the least-recently-touched entry goes
//! first, and among equally old entries the largest goes first — recency is
//! the primary signal, byte cost breaks ties toward freeing the most memory
//! per eviction. Eviction only ever drops memoized results; correctness is
//! untouched because every lookup that misses simply rebuilds. Accounting
//! invariant: after every insert, each shard's tracked resident bytes are at
//! or below its budget slice, so the whole table never exceeds the
//! configured budget.
//!
//! The `opcache-evict` fault point ([`crate::fault`]) forcibly clears every
//! shard on the n-th lookup, so tests can prove mid-job eviction changes no
//! verdict.

use std::any::Any;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rl_obs::{HistogramRegistry, Tracer};

use crate::fault;
use crate::mem::MemFootprint;
use crate::stateset::FxHashMap;

/// Number of independently locked sub-tables. A power of two well above the
/// worker counts we deploy (pools default to the core count), so two
/// concurrent lookups rarely contend.
pub const SHARDS: usize = 16;

/// Amortized bookkeeping bytes charged per stored entry on top of the
/// value's own footprint: the bucket key, the `Vec` slot, and the `Arc`
/// control block.
const ENTRY_OVERHEAD: usize = 64;

/// One stored cache entry: the `Arc`-erased value plus its accounting state.
struct Stored {
    value: Arc<dyn Any + Send + Sync>,
    /// Deterministic byte estimate charged against the shard budget.
    bytes: usize,
    /// Last-touch stamp from the shard's logical clock (unique per shard:
    /// every touch increments the clock, so LRU order is a total order).
    stamp: u64,
}

/// Shared memo table for automaton-level operations.
///
/// Cheap to clone (the handle is reference counted); all clones share one
/// sharded table and may live on different threads. See the module docs for
/// the soundness contract and the eviction policy.
///
/// # Example
///
/// ```
/// use rl_automata::{Budget, Guard, Nfa, OpCache, Alphabet};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// let nfa = Nfa::from_parts(ab, 2, [0], [1], [(0, a, 1), (1, a, 0)])?;
/// let guard = Guard::new(Budget::unlimited()).with_op_cache(OpCache::new());
/// let d1 = nfa.determinize_with(&guard)?;
/// let d2 = nfa.determinize_with(&guard)?; // memo hit: no re-construction
/// assert_eq!(d1, d2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct OpCache {
    inner: Arc<CacheInner>,
}

struct CacheInner {
    shards: [Mutex<Table>; SHARDS],
    /// Optional timeline tracer; hit/miss/adoption/eviction instants carry
    /// the shard index so contention concentrating on one shard is visible.
    tracer: Option<Arc<Tracer>>,
    /// Per-shard byte ceiling (`total budget / SHARDS`); `None` = unbounded.
    shard_budget: Option<usize>,
    /// Optional percentile plane: when set, lookups record
    /// `opcache/probe_us` and `opcache/lock_wait_us` samples. A `OnceLock`
    /// so the hot path pays one lock-free load when detached.
    hists: OnceLock<HistogramRegistry>,
}

impl Default for CacheInner {
    fn default() -> CacheInner {
        CacheInner {
            shards: std::array::from_fn(|_| Mutex::new(Table::default())),
            tracer: None,
            shard_budget: None,
            hists: OnceLock::new(),
        }
    }
}

#[derive(Default)]
struct Table {
    /// `(operation, structural hash)` → entries. A bucket holds more than
    /// one entry only on hash collision.
    entries: FxHashMap<(&'static str, u64), Vec<Stored>>,
    hits: usize,
    misses: usize,
    /// Hits resolved on the insert-side re-check: this thread built the
    /// value, lost the race, and adopted the winner's entry instead.
    adoptions: usize,
    /// Entries dropped to stay under the shard's byte budget (or by a forced
    /// fault-injection clear).
    evictions: usize,
    /// Tracked resident bytes of all stored entries.
    resident: usize,
    /// Logical touch clock driving LRU stamps.
    clock: u64,
}

impl Table {
    /// Finds a matching entry and refreshes its LRU stamp.
    fn touch<T: Send + Sync + 'static>(
        &mut self,
        bucket_key: (&'static str, u64),
        matches: impl Fn(&T) -> bool,
    ) -> Option<Arc<T>> {
        let clock = &mut self.clock;
        let entry = self
            .entries
            .get_mut(&bucket_key)?
            .iter_mut()
            .find(|e| e.value.clone().downcast::<T>().is_ok_and(|v| matches(&v)))?;
        *clock += 1;
        entry.stamp = *clock;
        entry.value.clone().downcast::<T>().ok()
    }

    /// Stores `value` under `bucket_key`, charging `bytes` to the shard.
    fn insert(
        &mut self,
        bucket_key: (&'static str, u64),
        value: Arc<dyn Any + Send + Sync>,
        bytes: usize,
    ) {
        self.clock += 1;
        let stamp = self.clock;
        self.resident += bytes;
        self.entries.entry(bucket_key).or_default().push(Stored {
            value,
            bytes,
            stamp,
        });
    }

    /// Evicts cost-aware-LRU victims until resident bytes fit `budget`.
    /// Returns how many entries were dropped.
    fn evict_to(&mut self, budget: usize) -> usize {
        let mut dropped = 0;
        while self.resident > budget {
            // Victim: oldest stamp; stamps are unique per shard so this is a
            // total order. (Equal stamps cannot happen, but the byte
            // tie-break documents the intent and guards refactors.)
            let victim = self
                .entries
                .iter()
                .flat_map(|(k, bucket)| {
                    bucket
                        .iter()
                        .enumerate()
                        .map(move |(i, e)| (e.stamp, std::cmp::Reverse(e.bytes), *k, i))
                })
                .min();
            let Some((_, _, key, index)) = victim else {
                break; // accounting drift safety valve: nothing left to drop
            };
            let bucket = self.entries.get_mut(&key).expect("victim bucket exists");
            let removed = bucket.remove(index);
            self.resident = self.resident.saturating_sub(removed.bytes);
            if bucket.is_empty() {
                self.entries.remove(&key);
            }
            self.evictions += 1;
            dropped += 1;
        }
        dropped
    }

    /// Drops every entry (forced eviction), returning the count.
    fn clear(&mut self) -> usize {
        let n: usize = self.entries.values().map(Vec::len).sum();
        self.entries.clear();
        self.resident = 0;
        self.evictions += n;
        n
    }
}

impl OpCache {
    /// An empty, unbounded cache.
    pub fn new() -> OpCache {
        OpCache::with_limits(None, None)
    }

    /// An empty, unbounded cache whose lookups additionally record timeline
    /// instants (`hit`/`miss`/`adopt`/`evict`, tagged with the shard index)
    /// to `tracer`.
    pub fn with_tracer(tracer: Arc<Tracer>) -> OpCache {
        OpCache::with_limits(Some(tracer), None)
    }

    /// The general constructor: an optional timeline tracer and an optional
    /// resident-byte budget. With a budget, each of the `SHARDS` shards
    /// caps its tracked resident bytes at `budget / SHARDS` (at least one
    /// byte, so a tiny budget degrades to "cache nothing", never divides to
    /// a zero-progress loop) and evicts cost-aware-LRU victims on insert.
    pub fn with_limits(tracer: Option<Arc<Tracer>>, byte_budget: Option<usize>) -> OpCache {
        OpCache {
            inner: Arc::new(CacheInner {
                shards: std::array::from_fn(|_| Mutex::new(Table::default())),
                tracer,
                shard_budget: byte_budget.map(|b| (b / SHARDS).max(1)),
                hists: OnceLock::new(),
            }),
        }
    }

    /// Attaches a [`HistogramRegistry`]: subsequent lookups record
    /// `opcache/probe_us` (time to resolve a lookup, excluding builds) and
    /// `opcache/lock_wait_us` (shard-lock acquisition wait). First call
    /// wins; later calls on the same logical table are no-ops. Detached
    /// caches pay one lock-free load per lookup and take no timestamps.
    pub fn set_histograms(&self, hists: HistogramRegistry) {
        let _ = self.inner.hists.set(hists);
    }

    /// The configured total byte budget, if any (shard granularity rounds
    /// down: `SHARDS * (budget / SHARDS)`).
    pub fn byte_budget(&self) -> Option<usize> {
        self.inner.shard_budget.map(|b| b * SHARDS)
    }

    /// The shard index responsible for `key`. Keys are FxHash outputs whose
    /// entropy concentrates in the high bits, so shard selection uses the
    /// top nibble.
    fn shard_index(key: u64) -> usize {
        (key >> 60) as usize % SHARDS
    }

    /// The shard responsible for `key`.
    fn shard(&self, key: u64) -> &Mutex<Table> {
        &self.inner.shards[Self::shard_index(key)]
    }

    /// Records a lookup-outcome instant (no-op without a tracer). Called
    /// after the shard lock is released so event recording never extends a
    /// critical section.
    fn trace(&self, outcome: &'static str, key: u64) {
        if let Some(t) = &self.inner.tracer {
            t.instant(
                "opcache",
                outcome,
                Some(("shard", Self::shard_index(key) as u64)),
            );
        }
    }

    /// Evicts from `table` if it now exceeds the shard budget; traces the
    /// evictions (after the caller releases the lock — this only counts).
    fn evict_if_over(&self, table: &mut Table) -> usize {
        match self.inner.shard_budget {
            Some(budget) => table.evict_to(budget),
            None => 0,
        }
    }

    /// Looks up `(op, key)`; on miss, runs `build`, stores the result, and
    /// returns it. The boolean is `true` on a hit.
    ///
    /// `matches` must compare the entry's stored operands with the current
    /// ones — returning `true` for structurally different operands breaks
    /// the cache's soundness contract.
    ///
    /// The shard lock is *not* held while `build` runs, so a construction
    /// may itself consult the cache (products calling determinization, say).
    /// Two threads missing on the same key may both build; the insert
    /// re-checks the bucket and keeps the first finisher's entry, so both
    /// threads still return structurally equal values.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is stored in that case.
    pub fn get_or_insert_with<T: MemFootprint + Send + Sync + 'static, E>(
        &self,
        op: &'static str,
        key: u64,
        matches: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        if fault::fires("opcache-evict") {
            self.evict_all();
        }
        let hists = self.inner.hists.get();
        let probe_started = hists.map(|_| Instant::now());
        let shard = self.shard(key);
        {
            let lock_started = hists.map(|_| Instant::now());
            if let Ok(mut table) = shard.lock() {
                if let (Some(h), Some(t0)) = (hists, lock_started) {
                    h.hist("opcache/lock_wait_us").record_elapsed_us(t0);
                }
                if let Some(hit) = table.touch((op, key), &matches) {
                    table.hits += 1;
                    drop(table);
                    if let (Some(h), Some(t0)) = (hists, probe_started) {
                        h.hist("opcache/probe_us").record_elapsed_us(t0);
                    }
                    self.trace("hit", key);
                    return Ok((hit, true));
                }
            }
        }
        // The probe is over once we know we must build; the build itself is
        // accounted by the construction's own spans, not the cache.
        if let (Some(h), Some(t0)) = (hists, probe_started) {
            h.hist("opcache/probe_us").record_elapsed_us(t0);
        }
        let value = Arc::new(build()?);
        // Explicitly the *payload*'s footprint: a method call on the `Arc`
        // would resolve to the handle impl (a pointer) instead.
        let bytes = ENTRY_OVERHEAD + <T as MemFootprint>::mem_bytes(&value);
        let lock_started = hists.map(|_| Instant::now());
        let Ok(mut table) = shard.lock() else {
            return Ok((value, false));
        };
        if let (Some(h), Some(t0)) = (hists, lock_started) {
            h.hist("opcache/lock_wait_us").record_elapsed_us(t0);
        }
        // Re-check: another thread may have finished the same build while we
        // ran unlocked. Keeping its entry (and dropping ours) makes repeated
        // lookups converge on one allocation.
        if let Some(hit) = table.touch((op, key), &matches) {
            table.hits += 1;
            table.adoptions += 1;
            drop(table);
            self.trace("adopt", key);
            return Ok((hit, true));
        }
        table.misses += 1;
        table.insert(
            (op, key),
            value.clone() as Arc<dyn Any + Send + Sync>,
            bytes,
        );
        let evicted = self.evict_if_over(&mut table);
        drop(table);
        self.trace("miss", key);
        for _ in 0..evicted {
            self.trace("evict", key);
        }
        Ok((value, false))
    }

    /// Interns an operand by structural `hash`: returns the `Arc` already
    /// stored for an equal value, or stores (a clone of) `value` and returns
    /// that. Memo entries hold these shared `Arc`s instead of each cloning
    /// the operand, so sharding doesn't multiply operand memory — and
    /// operand equality checks between entries of one operand are pointer
    /// comparisons on the fast path.
    ///
    /// The operand's footprint is charged here, where the shared allocation
    /// is created; the `Arc` handles memo entries hold weigh as pointers
    /// (see [`crate::mem`]). Evicting an interned operand only drops the
    /// intern table's handle — entries still holding it keep it alive, and
    /// the allocation is freed when the last of them goes.
    ///
    /// Not counted in [`OpCache::hits`]/[`OpCache::misses`] (it is interning,
    /// not memoization) but included in [`OpCache::len`].
    pub fn intern_operand<T>(&self, hash: u64, value: &T) -> Arc<T>
    where
        T: Clone + PartialEq + MemFootprint + Send + Sync + 'static,
    {
        const OP: &str = "__operand";
        let shard = self.shard(hash);
        let Ok(mut table) = shard.lock() else {
            return Arc::new(value.clone());
        };
        if let Some(existing) = table.touch((OP, hash), |v: &T| v == value) {
            return existing;
        }
        let interned = Arc::new(value.clone());
        let bytes = ENTRY_OVERHEAD + <T as MemFootprint>::mem_bytes(&interned);
        table.insert(
            (OP, hash),
            interned.clone() as Arc<dyn Any + Send + Sync>,
            bytes,
        );
        let evicted = self.evict_if_over(&mut table);
        drop(table);
        for _ in 0..evicted {
            self.trace("evict", hash);
        }
        interned
    }

    /// Forcibly evicts every entry from every shard (the `opcache-evict`
    /// fault point, and available to resident servers that want to shed
    /// memory between bursts). Counted in [`OpCache::evictions`].
    pub fn evict_all(&self) {
        let mut dropped = 0;
        for shard in &self.inner.shards {
            if let Ok(mut table) = shard.lock() {
                dropped += table.clear();
            }
        }
        if dropped > 0 {
            self.trace("evict", 0);
        }
    }

    /// Number of lookups answered from the table so far.
    pub fn hits(&self) -> usize {
        self.fold(|t| t.hits)
    }

    /// Number of lookups that had to build (and then stored) a result.
    pub fn misses(&self) -> usize {
        self.fold(|t| t.misses)
    }

    /// Number of hits resolved by adopting a racing thread's entry after a
    /// redundant build (a subset of [`OpCache::hits`]). Nonzero only when
    /// concurrent lookups miss on the same key.
    pub fn adoptions(&self) -> usize {
        self.fold(|t| t.adoptions)
    }

    /// Number of entries evicted so far (budget pressure or forced clears).
    pub fn evictions(&self) -> usize {
        self.fold(|t| t.evictions)
    }

    /// Tracked resident bytes of all stored entries (the deterministic
    /// [`crate::MemFootprint`] estimate plus fixed per-entry overhead).
    /// Never exceeds [`OpCache::byte_budget`] when one is set.
    pub fn resident_bytes(&self) -> usize {
        self.fold(|t| t.resident)
    }

    /// Number of stored entries (memo results and interned operands).
    pub fn len(&self) -> usize {
        self.fold(|t| t.entries.values().map(Vec::len).sum())
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn fold(&self, per_shard: impl Fn(&Table) -> usize) -> usize {
        self.inner
            .shards
            .iter()
            .filter_map(|s| s.lock().ok())
            .map(|t| per_shard(&t))
            .sum()
    }
}

impl fmt::Debug for OpCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("resident_bytes", &self.resident_bytes())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_builds_then_hit_reuses() {
        let cache = OpCache::new();
        let mut built = 0;
        for round in 0..3 {
            let (v, hit) = cache
                .get_or_insert_with::<i64, ()>(
                    "op",
                    42,
                    |&v| v == 7,
                    || {
                        built += 1;
                        Ok(7)
                    },
                )
                .unwrap();
            assert_eq!(*v, 7);
            assert_eq!(hit, round > 0);
        }
        assert_eq!(built, 1);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (2, 1, 1));
    }

    #[test]
    fn colliding_keys_are_kept_apart_by_matches() {
        let cache = OpCache::new();
        // Same (op, key) — as under a real hash collision — but the stored
        // operand differs, so `matches` must reject the first entry.
        let (a, _) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 1,
                || Ok((1, "first")),
            )
            .unwrap();
        let (b, hit) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 2,
                || Ok((2, "second")),
            )
            .unwrap();
        assert!(!hit);
        assert_eq!((a.1, b.1), ("first", "second"));
        assert_eq!(cache.len(), 2);
        // And the first entry is still retrievable.
        let (a2, hit2) = cache
            .get_or_insert_with::<(u8, &'static str), ()>("op", 1, |e| e.0 == 1, || Ok((9, "no")))
            .unwrap();
        assert!(hit2);
        assert_eq!(a2.1, "first");
    }

    #[test]
    fn distinct_ops_do_not_share_entries() {
        let cache = OpCache::new();
        cache
            .get_or_insert_with::<u8, ()>("left", 5, |_| true, || Ok(1))
            .unwrap();
        let (v, hit) = cache
            .get_or_insert_with::<u8, ()>("right", 5, |_| true, || Ok(2))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = OpCache::new();
        let err: Result<_, &str> =
            cache.get_or_insert_with::<u8, _>("op", 3, |_| true, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let (v, hit) = cache
            .get_or_insert_with::<u8, &str>("op", 3, |_| true, || Ok(4))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 4);
    }

    #[test]
    fn clones_share_one_table() {
        let cache = OpCache::new();
        let alias = cache.clone();
        alias
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(3))
            .unwrap();
        let (_, hit) = cache
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(0))
            .unwrap();
        assert!(hit);
        assert!(format!("{cache:?}").contains("hits"));
    }

    #[test]
    fn keys_spread_across_shards_and_totals_aggregate() {
        let cache = OpCache::new();
        // Keys differing in their top nibble land in different shards; the
        // counters must still read as one logical table.
        for i in 0..SHARDS as u64 {
            cache
                .get_or_insert_with::<u64, ()>("op", i << 60, |_| true, || Ok(i))
                .unwrap();
        }
        assert_eq!(cache.misses(), SHARDS);
        assert_eq!(cache.len(), SHARDS);
        for i in 0..SHARDS as u64 {
            let (v, hit) = cache
                .get_or_insert_with::<u64, ()>("op", i << 60, |_| true, || Ok(999))
                .unwrap();
            assert!(hit);
            assert_eq!(*v, i);
        }
        assert_eq!(cache.hits(), SHARDS);
    }

    #[test]
    fn intern_operand_dedupes_equal_values() {
        let cache = OpCache::new();
        let a = cache.intern_operand(77, &String::from("operand"));
        let b = cache.intern_operand(77, &String::from("operand"));
        assert!(Arc::ptr_eq(&a, &b), "equal operands share one allocation");
        // A colliding hash with a different value must not unify.
        let c = cache.intern_operand(77, &String::from("other"));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, "other");
        // Interning is invisible to memo statistics but occupies entries.
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 2));
    }

    #[test]
    fn racer_adoption_is_counted_and_traced() {
        let tracer = Arc::new(Tracer::new());
        let cache = OpCache::with_tracer(tracer.clone());
        // Simulate losing a build race deterministically: the build runs
        // unlocked, so a nested insert of the same key lands first and the
        // outer insert's re-check must adopt it.
        let (v, hit) = cache
            .get_or_insert_with::<u64, ()>(
                "op",
                5,
                |&v| v == 42,
                || {
                    let _ = cache.get_or_insert_with::<u64, ()>("op", 5, |&v| v == 42, || Ok(42));
                    Ok(42)
                },
            )
            .unwrap();
        assert!(hit, "adoption reports as a hit");
        assert_eq!(*v, 42);
        assert_eq!((cache.hits(), cache.misses(), cache.adoptions()), (1, 1, 1));
        let events = tracer.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["miss", "adopt"]);
        assert!(events.iter().all(|e| matches!(e.arg, Some(("shard", _)))));
    }

    #[test]
    fn concurrent_hammering_is_coherent() {
        let cache = OpCache::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        let key = round % 8;
                        let (v, _) = cache
                            .get_or_insert_with::<u64, ()>(
                                "stress",
                                key << 57, // straddle shard boundaries
                                |&v| v == key,
                                || Ok(key),
                            )
                            .unwrap();
                        assert_eq!(*v, key, "thread {t}");
                        let op = cache.intern_operand(key, &key);
                        assert_eq!(*op, key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every lookup after the first per key is a hit; racing first
        // lookups may each build, but at most one entry per key survives
        // observation — all values agreed above.
        assert_eq!(cache.hits() + cache.misses(), 4 * 200);
        assert!(cache.len() >= 16, "8 memo keys + 8 interned operands");
    }

    // ------------------------------------------------------------------
    // Byte accounting and eviction
    // ------------------------------------------------------------------

    #[test]
    fn resident_bytes_track_inserts() {
        let cache = OpCache::new();
        assert_eq!(cache.resident_bytes(), 0);
        cache
            .get_or_insert_with::<String, ()>(
                "op",
                1,
                |_| true,
                || Ok(String::from("x").repeat(100)),
            )
            .unwrap();
        let one = cache.resident_bytes();
        assert!(one >= 100, "payload bytes are counted: {one}");
        cache
            .get_or_insert_with::<String, ()>(
                "op",
                2,
                |_| true,
                || Ok(String::from("y").repeat(100)),
            )
            .unwrap();
        assert!(cache.resident_bytes() > one, "second entry adds bytes");
        // Hits never change residency.
        let before = cache.resident_bytes();
        cache
            .get_or_insert_with::<String, ()>("op", 1, |_| true, || Ok(String::new()))
            .unwrap();
        assert_eq!(cache.resident_bytes(), before);
    }

    #[test]
    fn budgeted_cache_never_exceeds_budget_and_evicts_lru_first() {
        // All keys in one shard (same top nibble) so the LRU order is fully
        // observable through one budget slice.
        let budget = SHARDS * 4096; // 4 KiB per shard
        let cache = OpCache::with_limits(None, Some(budget));
        assert_eq!(cache.byte_budget(), Some(budget));
        let big = || Ok::<_, ()>(vec![0u8; 1500]);
        for key in 0..4u64 {
            cache
                .get_or_insert_with::<Vec<u8>, ()>("op", key, |_| true, big)
                .unwrap();
            assert!(
                cache.resident_bytes() <= budget / SHARDS,
                "shard stays within its slice after every insert"
            );
        }
        assert!(cache.evictions() >= 1, "budget pressure evicted something");
        // Key 0 was inserted first and never touched again: it must be gone,
        // while the most recent key is still resident.
        let (_, hit_old) = cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 0, |_| true, big)
            .unwrap();
        assert!(!hit_old, "LRU victim was evicted");
        let (_, hit_new) = cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 3, |_| true, big)
            .unwrap();
        assert!(hit_new, "most recently inserted entry survives");
    }

    #[test]
    fn hits_refresh_lru_order() {
        let cache = OpCache::with_limits(None, Some(SHARDS * 4096));
        let big = || Ok::<_, ()>(vec![0u8; 1500]);
        cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 0, |_| true, big)
            .unwrap();
        cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 1, |_| true, big)
            .unwrap();
        // Touch key 0: key 1 becomes the LRU victim.
        cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 0, |_| true, big)
            .unwrap();
        cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 2, |_| true, big)
            .unwrap();
        let (_, hit0) = cache
            .get_or_insert_with::<Vec<u8>, ()>("op", 0, |_| true, big)
            .unwrap();
        assert!(hit0, "recently touched entry survives eviction");
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        let run = || {
            let cache = OpCache::with_limits(None, Some(SHARDS * 2048));
            for key in 0..16u64 {
                cache
                    .get_or_insert_with::<Vec<u8>, ()>("op", key, |_| true, || Ok(vec![0u8; 700]))
                    .unwrap();
            }
            (cache.evictions(), cache.resident_bytes(), cache.len())
        };
        assert_eq!(run(), run(), "same op sequence, same eviction outcome");
    }

    #[test]
    fn evict_all_clears_and_counts() {
        let cache = OpCache::new();
        for key in 0..4u64 {
            cache
                .get_or_insert_with::<u64, ()>("op", key, |_| true, || Ok(key))
                .unwrap();
        }
        cache.evict_all();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.evictions(), 4);
        // The cache keeps working after a forced clear.
        let (_, hit) = cache
            .get_or_insert_with::<u64, ()>("op", 0, |_| true, || Ok(0))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = OpCache::new();
        for key in 0..64u64 {
            cache
                .get_or_insert_with::<Vec<u8>, ()>("op", key, |_| true, || Ok(vec![0u8; 4096]))
                .unwrap();
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.byte_budget(), None);
    }

    #[test]
    fn attached_histograms_record_probe_and_lock_wait() {
        let cache = OpCache::new();
        let hists = HistogramRegistry::new();
        cache.set_histograms(hists.clone());
        for round in 0..3u64 {
            cache
                .get_or_insert_with::<u64, ()>("op", 11, |&v| v == 1, || Ok(1))
                .unwrap();
            let _ = round;
        }
        let snaps: std::collections::BTreeMap<String, _> = hists.snapshot().into_iter().collect();
        // One probe per lookup; at least one lock wait per lookup (misses
        // take the shard lock twice: probe then insert).
        assert_eq!(snaps["opcache/probe_us"].count, 3);
        assert!(snaps["opcache/lock_wait_us"].count >= 3);
        // Detached caches keep working and record nothing.
        let plain = OpCache::new();
        plain
            .get_or_insert_with::<u64, ()>("op", 1, |_| true, || Ok(1))
            .unwrap();
    }

    #[test]
    fn evictions_are_traced() {
        let tracer = Arc::new(Tracer::new());
        let cache = OpCache::with_limits(Some(tracer.clone()), Some(SHARDS * 2048));
        for key in 0..4u64 {
            cache
                .get_or_insert_with::<Vec<u8>, ()>("op", key, |_| true, || Ok(vec![0u8; 1500]))
                .unwrap();
        }
        assert!(cache.evictions() >= 1);
        let events = tracer.events();
        assert!(
            events.iter().any(|e| e.name == "evict"),
            "evictions leave timeline instants"
        );
    }
}
