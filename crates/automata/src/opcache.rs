//! Per-pipeline memoization of expensive automaton operations.
//!
//! One end-to-end check runs the classical, relative-liveness and
//! relative-safety deciders in sequence, and each of them re-derives the same
//! intermediate machines: the system/property intersection, the prefix
//! language's subset construction, the negated property's complement. An
//! [`OpCache`] attached to a [`crate::Guard`] lets the guarded constructions
//! memoize those results for the lifetime of the pipeline.
//!
//! Keys are structural hashes ([`crate::fx_hash`] over the operand's states,
//! transitions, and alphabet). Hashing alone would be unsound — two distinct
//! automata may collide — so every cache entry stores its operands (as
//! interned `Arc`s, see [`OpCache::intern_operand`]) and a hit requires full
//! structural equality, checked by the caller-supplied `matches` predicate.
//! A collision therefore costs one extra comparison, never a wrong answer.
//!
//! The cache is thread-safe and **sharded**: entries are distributed over
//! [`SHARDS`] independently locked tables by the top bits of the key hash,
//! so concurrent pipeline stages — the jobs of a `rlcheck --jobs` batch, or
//! parallel kernels consulting the cache mid-construction — share memoized
//! results without serializing on one lock. Clone the handle freely; all
//! clones (across threads) share one logical table.

use std::any::Any;
use std::fmt;
use std::sync::{Arc, Mutex};

use rl_obs::Tracer;

use crate::stateset::FxHashMap;

/// Number of independently locked sub-tables. A power of two well above the
/// worker counts we deploy (pools default to the core count), so two
/// concurrent lookups rarely contend.
pub const SHARDS: usize = 16;

/// One `Arc`-erased cache entry.
type Entry = Arc<dyn Any + Send + Sync>;

/// Shared memo table for automaton-level operations.
///
/// Cheap to clone (the handle is reference counted); all clones share one
/// sharded table and may live on different threads. See the module docs for
/// the soundness contract.
///
/// # Example
///
/// ```
/// use rl_automata::{Budget, Guard, Nfa, OpCache, Alphabet};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a"])?;
/// let a = ab.symbol("a").unwrap();
/// let nfa = Nfa::from_parts(ab, 2, [0], [1], [(0, a, 1), (1, a, 0)])?;
/// let guard = Guard::new(Budget::unlimited()).with_op_cache(OpCache::new());
/// let d1 = nfa.determinize_with(&guard)?;
/// let d2 = nfa.determinize_with(&guard)?; // memo hit: no re-construction
/// assert_eq!(d1, d2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct OpCache {
    inner: Arc<CacheInner>,
}

struct CacheInner {
    shards: [Mutex<Table>; SHARDS],
    /// Optional timeline tracer; hit/miss/adoption instants carry the shard
    /// index so contention concentrating on one shard is visible.
    tracer: Option<Arc<Tracer>>,
}

impl Default for CacheInner {
    fn default() -> CacheInner {
        CacheInner {
            shards: std::array::from_fn(|_| Mutex::new(Table::default())),
            tracer: None,
        }
    }
}

#[derive(Default)]
struct Table {
    /// `(operation, structural hash)` → entries. A bucket holds more than
    /// one entry only on hash collision.
    entries: FxHashMap<(&'static str, u64), Vec<Entry>>,
    hits: usize,
    misses: usize,
    /// Hits resolved on the insert-side re-check: this thread built the
    /// value, lost the race, and adopted the winner's entry instead.
    adoptions: usize,
}

impl OpCache {
    /// An empty cache.
    pub fn new() -> OpCache {
        OpCache::default()
    }

    /// An empty cache whose lookups additionally record timeline instants
    /// (`hit`/`miss`/`adopt`, tagged with the shard index) to `tracer`.
    pub fn with_tracer(tracer: Arc<Tracer>) -> OpCache {
        OpCache {
            inner: Arc::new(CacheInner {
                shards: std::array::from_fn(|_| Mutex::new(Table::default())),
                tracer: Some(tracer),
            }),
        }
    }

    /// The shard index responsible for `key`. Keys are FxHash outputs whose
    /// entropy concentrates in the high bits, so shard selection uses the
    /// top nibble.
    fn shard_index(key: u64) -> usize {
        (key >> 60) as usize % SHARDS
    }

    /// The shard responsible for `key`.
    fn shard(&self, key: u64) -> &Mutex<Table> {
        &self.inner.shards[Self::shard_index(key)]
    }

    /// Records a lookup-outcome instant (no-op without a tracer). Called
    /// after the shard lock is released so event recording never extends a
    /// critical section.
    fn trace(&self, outcome: &'static str, key: u64) {
        if let Some(t) = &self.inner.tracer {
            t.instant(
                "opcache",
                outcome,
                Some(("shard", Self::shard_index(key) as u64)),
            );
        }
    }

    /// Looks up a matching entry in `bucket` (a poisoned shard lock is
    /// treated as absent — the cache degrades to a passthrough rather than
    /// propagating a sibling's panic).
    fn find<T: Send + Sync + 'static>(
        bucket: Option<&Vec<Entry>>,
        matches: impl Fn(&T) -> bool,
    ) -> Option<Arc<T>> {
        bucket?
            .iter()
            .filter_map(|e| e.clone().downcast::<T>().ok())
            .find(|v| matches(v))
    }

    /// Looks up `(op, key)`; on miss, runs `build`, stores the result, and
    /// returns it. The boolean is `true` on a hit.
    ///
    /// `matches` must compare the entry's stored operands with the current
    /// ones — returning `true` for structurally different operands breaks
    /// the cache's soundness contract.
    ///
    /// The shard lock is *not* held while `build` runs, so a construction
    /// may itself consult the cache (products calling determinization, say).
    /// Two threads missing on the same key may both build; the insert
    /// re-checks the bucket and keeps the first finisher's entry, so both
    /// threads still return structurally equal values.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is stored in that case.
    pub fn get_or_insert_with<T: Send + Sync + 'static, E>(
        &self,
        op: &'static str,
        key: u64,
        matches: impl Fn(&T) -> bool,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        let shard = self.shard(key);
        if let Ok(mut table) = shard.lock() {
            if let Some(hit) = Self::find(table.entries.get(&(op, key)), &matches) {
                table.hits += 1;
                drop(table);
                self.trace("hit", key);
                return Ok((hit, true));
            }
        }
        let value = Arc::new(build()?);
        let Ok(mut table) = shard.lock() else {
            return Ok((value, false));
        };
        // Re-check: another thread may have finished the same build while we
        // ran unlocked. Keeping its entry (and dropping ours) makes repeated
        // lookups converge on one allocation.
        if let Some(hit) = Self::find(table.entries.get(&(op, key)), &matches) {
            table.hits += 1;
            table.adoptions += 1;
            drop(table);
            self.trace("adopt", key);
            return Ok((hit, true));
        }
        table.misses += 1;
        table
            .entries
            .entry((op, key))
            .or_default()
            .push(value.clone() as Entry);
        drop(table);
        self.trace("miss", key);
        Ok((value, false))
    }

    /// Interns an operand by structural `hash`: returns the `Arc` already
    /// stored for an equal value, or stores (a clone of) `value` and returns
    /// that. Memo entries hold these shared `Arc`s instead of each cloning
    /// the operand, so sharding doesn't multiply operand memory — and
    /// operand equality checks between entries of one operand are pointer
    /// comparisons on the fast path.
    ///
    /// Not counted in [`OpCache::hits`]/[`OpCache::misses`] (it is interning,
    /// not memoization) but included in [`OpCache::len`].
    pub fn intern_operand<T>(&self, hash: u64, value: &T) -> Arc<T>
    where
        T: Clone + PartialEq + Send + Sync + 'static,
    {
        const OP: &str = "__operand";
        let shard = self.shard(hash);
        let Ok(mut table) = shard.lock() else {
            return Arc::new(value.clone());
        };
        if let Some(existing) = Self::find(table.entries.get(&(OP, hash)), |v: &T| v == value) {
            return existing;
        }
        let interned = Arc::new(value.clone());
        table
            .entries
            .entry((OP, hash))
            .or_default()
            .push(interned.clone() as Entry);
        interned
    }

    /// Number of lookups answered from the table so far.
    pub fn hits(&self) -> usize {
        self.fold(|t| t.hits)
    }

    /// Number of lookups that had to build (and then stored) a result.
    pub fn misses(&self) -> usize {
        self.fold(|t| t.misses)
    }

    /// Number of hits resolved by adopting a racing thread's entry after a
    /// redundant build (a subset of [`OpCache::hits`]). Nonzero only when
    /// concurrent lookups miss on the same key.
    pub fn adoptions(&self) -> usize {
        self.fold(|t| t.adoptions)
    }

    /// Number of stored entries (memo results and interned operands).
    pub fn len(&self) -> usize {
        self.fold(|t| t.entries.values().map(Vec::len).sum())
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn fold(&self, per_shard: impl Fn(&Table) -> usize) -> usize {
        self.inner
            .shards
            .iter()
            .filter_map(|s| s.lock().ok())
            .map(|t| per_shard(&t))
            .sum()
    }
}

impl fmt::Debug for OpCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_builds_then_hit_reuses() {
        let cache = OpCache::new();
        let mut built = 0;
        for round in 0..3 {
            let (v, hit) = cache
                .get_or_insert_with::<i64, ()>(
                    "op",
                    42,
                    |&v| v == 7,
                    || {
                        built += 1;
                        Ok(7)
                    },
                )
                .unwrap();
            assert_eq!(*v, 7);
            assert_eq!(hit, round > 0);
        }
        assert_eq!(built, 1);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (2, 1, 1));
    }

    #[test]
    fn colliding_keys_are_kept_apart_by_matches() {
        let cache = OpCache::new();
        // Same (op, key) — as under a real hash collision — but the stored
        // operand differs, so `matches` must reject the first entry.
        let (a, _) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 1,
                || Ok((1, "first")),
            )
            .unwrap();
        let (b, hit) = cache
            .get_or_insert_with::<(u8, &'static str), ()>(
                "op",
                1,
                |e| e.0 == 2,
                || Ok((2, "second")),
            )
            .unwrap();
        assert!(!hit);
        assert_eq!((a.1, b.1), ("first", "second"));
        assert_eq!(cache.len(), 2);
        // And the first entry is still retrievable.
        let (a2, hit2) = cache
            .get_or_insert_with::<(u8, &'static str), ()>("op", 1, |e| e.0 == 1, || Ok((9, "no")))
            .unwrap();
        assert!(hit2);
        assert_eq!(a2.1, "first");
    }

    #[test]
    fn distinct_ops_do_not_share_entries() {
        let cache = OpCache::new();
        cache
            .get_or_insert_with::<u8, ()>("left", 5, |_| true, || Ok(1))
            .unwrap();
        let (v, hit) = cache
            .get_or_insert_with::<u8, ()>("right", 5, |_| true, || Ok(2))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = OpCache::new();
        let err: Result<_, &str> =
            cache.get_or_insert_with::<u8, _>("op", 3, |_| true, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let (v, hit) = cache
            .get_or_insert_with::<u8, &str>("op", 3, |_| true, || Ok(4))
            .unwrap();
        assert!(!hit);
        assert_eq!(*v, 4);
    }

    #[test]
    fn clones_share_one_table() {
        let cache = OpCache::new();
        let alias = cache.clone();
        alias
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(3))
            .unwrap();
        let (_, hit) = cache
            .get_or_insert_with::<u8, ()>("op", 9, |_| true, || Ok(0))
            .unwrap();
        assert!(hit);
        assert!(format!("{cache:?}").contains("hits"));
    }

    #[test]
    fn keys_spread_across_shards_and_totals_aggregate() {
        let cache = OpCache::new();
        // Keys differing in their top nibble land in different shards; the
        // counters must still read as one logical table.
        for i in 0..SHARDS as u64 {
            cache
                .get_or_insert_with::<u64, ()>("op", i << 60, |_| true, || Ok(i))
                .unwrap();
        }
        assert_eq!(cache.misses(), SHARDS);
        assert_eq!(cache.len(), SHARDS);
        for i in 0..SHARDS as u64 {
            let (v, hit) = cache
                .get_or_insert_with::<u64, ()>("op", i << 60, |_| true, || Ok(999))
                .unwrap();
            assert!(hit);
            assert_eq!(*v, i);
        }
        assert_eq!(cache.hits(), SHARDS);
    }

    #[test]
    fn intern_operand_dedupes_equal_values() {
        let cache = OpCache::new();
        let a = cache.intern_operand(77, &String::from("operand"));
        let b = cache.intern_operand(77, &String::from("operand"));
        assert!(Arc::ptr_eq(&a, &b), "equal operands share one allocation");
        // A colliding hash with a different value must not unify.
        let c = cache.intern_operand(77, &String::from("other"));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, "other");
        // Interning is invisible to memo statistics but occupies entries.
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 2));
    }

    #[test]
    fn racer_adoption_is_counted_and_traced() {
        let tracer = Arc::new(Tracer::new());
        let cache = OpCache::with_tracer(tracer.clone());
        // Simulate losing a build race deterministically: the build runs
        // unlocked, so a nested insert of the same key lands first and the
        // outer insert's re-check must adopt it.
        let (v, hit) = cache
            .get_or_insert_with::<u64, ()>(
                "op",
                5,
                |&v| v == 42,
                || {
                    let _ = cache.get_or_insert_with::<u64, ()>("op", 5, |&v| v == 42, || Ok(42));
                    Ok(42)
                },
            )
            .unwrap();
        assert!(hit, "adoption reports as a hit");
        assert_eq!(*v, 42);
        assert_eq!((cache.hits(), cache.misses(), cache.adoptions()), (1, 1, 1));
        let events = tracer.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["miss", "adopt"]);
        assert!(events.iter().all(|e| matches!(e.arg, Some(("shard", _)))));
    }

    #[test]
    fn concurrent_hammering_is_coherent() {
        let cache = OpCache::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        let key = round % 8;
                        let (v, _) = cache
                            .get_or_insert_with::<u64, ()>(
                                "stress",
                                key << 57, // straddle shard boundaries
                                |&v| v == key,
                                || Ok(key),
                            )
                            .unwrap();
                        assert_eq!(*v, key, "thread {t}");
                        let op = cache.intern_operand(key, &key);
                        assert_eq!(*op, key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every lookup after the first per key is a hit; racing first
        // lookups may each build, but at most one entry per key survives
        // observation — all values agreed above.
        assert_eq!(cache.hits() + cache.misses(), 4 * 200);
        assert!(cache.len() >= 16, "8 memo keys + 8 interned operands");
    }
}
