//! Finite-word automata substrate for the relative-liveness workspace.
//!
//! This crate implements the classical theory of regular languages that the
//! constructions of Nitsche & Wolper (PODC '97) are built on:
//!
//! * interned [`Alphabet`]s and [`Symbol`]s,
//! * nondeterministic finite automata ([`Nfa`]) and deterministic finite
//!   automata ([`Dfa`]) over finite words,
//! * the standard algorithms: subset construction, product constructions,
//!   complement, Hopcroft minimization, Hopcroft–Karp equivalence, language
//!   inclusion, emptiness, reversal, prefix closure,
//! * resource governance: [`Budget`]s, [`Guard`]s and [`CancelToken`]s that
//!   bound every worst-case-exponential construction (`determinize_with`,
//!   `intersection_with`, `product_with`, `dfa_included_with`) by states,
//!   transitions, and wall-clock time, with partial diagnostics on
//!   exhaustion,
//! * observability: attach a [`MetricsRegistry`] (re-exported from
//!   `rl-obs`) to a [`Guard`] and every guarded construction reports
//!   per-phase state/transition/time breakdowns through nested [`Span`]s,
//!   at zero cost when detached,
//! * labeled transition systems ([`TransitionSystem`]) — finite-state systems
//!   *without acceptance conditions*, whose finite-word language is prefix
//!   closed (Section 6 of the paper),
//! * Graphviz/DOT rendering for all machine types.
//!
//! Everything here is deterministic (transition rows are flat
//! alphabet-indexed tables with sorted successor lists, and subset states
//! iterate as ascending-order bitsets — see [`StateSet`]), so results are
//! reproducible across runs. Attaching an [`OpCache`] to a [`Guard`] lets
//! one pipeline memoize repeated determinizations and products.
//!
//! # Example
//!
//! ```
//! use rl_automata::{Alphabet, Nfa};
//!
//! # fn main() -> Result<(), rl_automata::AutomataError> {
//! let ab = Alphabet::new(["a", "b"])?;
//! let a = ab.symbol("a").unwrap();
//! let b = ab.symbol("b").unwrap();
//!
//! // L = words ending in "ab"
//! let mut nfa = Nfa::new(ab);
//! let q0 = nfa.add_state(false);
//! let q1 = nfa.add_state(false);
//! let q2 = nfa.add_state(true);
//! nfa.set_initial(q0);
//! nfa.add_transition(q0, a, q0);
//! nfa.add_transition(q0, b, q0);
//! nfa.add_transition(q0, a, q1);
//! nfa.add_transition(q1, b, q2);
//!
//! assert!(nfa.accepts(&[a, b]));
//! assert!(nfa.accepts(&[b, a, a, b]));
//! assert!(!nfa.accepts(&[a, b, a]));
//!
//! let dfa = nfa.determinize();
//! assert_eq!(dfa.min_dfa().state_count(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod dfa;
mod dot;
mod equiv;
mod error;
pub mod fault;
mod guard;
mod json;
pub mod lazy;
pub mod mem;
mod minimize;
mod nfa;
mod opcache;
mod par;
mod prefilter;
mod regex;
mod sim;
mod stateset;
mod ts;
mod word;

pub use alphabet::{Alphabet, Symbol};
pub use dfa::Dfa;
pub use equiv::{dfa_equivalent, dfa_included, dfa_included_with, equivalent_states};
pub use error::AutomataError;
pub use guard::{Budget, CancelToken, Guard, GuardProbe, Progress, Resource};
pub use lazy::nfa_included_lazy;
pub use mem::MemFootprint;
pub use nfa::Nfa;
pub use opcache::OpCache;
pub use par::{resolve_jobs, Pool, PoolCounters};
pub use prefilter::{modk_refute, nfa_simulates, parikh_refute};
pub use regex::Regex;
pub use rl_obs::knobs;
pub use rl_obs::{
    chrome_trace_json, folded_stacks, render_jsonl, set_thread_track, thread_track, track_name,
    Counter, Histogram, HistogramRegistry, HistogramSnapshot, Metric, MetricsRegistry, ObsReport,
    RegistrySnapshot, Span, SpanRecord, TraceEvent, TracePhase, Tracer,
};
pub use sim::{largest_simulation, simulates};
pub use stateset::{fx_hash, FxBuildHasher, FxHashMap, FxHasher, Interner, PairTable, StateSet};
pub use ts::TransitionSystem;
pub use word::{format_word, parse_word, Word};

/// Index of an automaton state.
///
/// States are dense indices into the automaton's internal tables; the value is
/// only meaningful relative to the automaton that created it.
pub type StateId = usize;
