//! Interned alphabets and symbols.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::AutomataError;

/// A symbol (action letter) of an [`Alphabet`].
///
/// Symbols are small indices; they are only meaningful together with the
/// alphabet that created them. All automaton transitions are labeled with
/// `Symbol`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the dense index of this symbol within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a dense index.
    ///
    /// Prefer [`Alphabet::symbol`]; this is for iteration code that already
    /// knows the index is in range.
    pub fn from_index(idx: usize) -> Symbol {
        Symbol(idx as u32)
    }
}

#[derive(Debug)]
struct Inner {
    names: Vec<String>,
    index: BTreeMap<String, Symbol>,
}

/// A finite, named action alphabet `Σ`.
///
/// Alphabets are cheap to clone (internally reference counted) and compare
/// equal when they intern the same symbol names in the same order. Automata
/// over different alphabets refuse to be combined.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["request", "result", "reject"])?;
/// assert_eq!(ab.len(), 3);
/// let r = ab.symbol("request").unwrap();
/// assert_eq!(ab.name(r), "request");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Alphabet {
    inner: Arc<Inner>,
}

impl Alphabet {
    /// Creates an alphabet from symbol names, in order.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::DuplicateSymbol`] if a name repeats and
    /// [`AutomataError::EmptyAlphabet`] if no names are given.
    pub fn new<I, S>(names: I) -> Result<Alphabet, AutomataError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut inner = Inner {
            names: Vec::new(),
            index: BTreeMap::new(),
        };
        for name in names {
            let name = name.into();
            let sym = Symbol(inner.names.len() as u32);
            if inner.index.insert(name.clone(), sym).is_some() {
                return Err(AutomataError::DuplicateSymbol(name));
            }
            inner.names.push(name);
        }
        if inner.names.is_empty() {
            return Err(AutomataError::EmptyAlphabet);
        }
        Ok(Alphabet {
            inner: Arc::new(inner),
        })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// Whether the alphabet has no symbols (never true for constructed ones).
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.inner.index.get(name).copied()
    }

    /// Looks up a symbol by name, erroring when absent.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownSymbol`] when `name` is not interned.
    pub fn require(&self, name: &str) -> Result<Symbol, AutomataError> {
        self.symbol(name)
            .ok_or_else(|| AutomataError::UnknownSymbol(name.to_owned()))
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.inner.names[sym.index()]
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.len()).map(Symbol::from_index)
    }

    /// Iterates over `(symbol, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.inner
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_str()))
    }

    /// All symbol names, in index order.
    pub fn names(&self) -> Vec<String> {
        self.inner.names.clone()
    }

    /// Checks that two alphabets intern the same names in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when they differ.
    pub fn check_compatible(&self, other: &Alphabet) -> Result<(), AutomataError> {
        if self == other {
            Ok(())
        } else {
            Err(AutomataError::AlphabetMismatch {
                left: self.names(),
                right: other.names(),
            })
        }
    }
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Alphabet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.names == other.inner.names
    }
}

impl Eq for Alphabet {}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.inner.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_order() {
        let ab = Alphabet::new(["x", "y", "z"]).unwrap();
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.symbol("y").unwrap().index(), 1);
        assert_eq!(ab.name(Symbol::from_index(2)), "z");
    }

    #[test]
    fn rejects_duplicates() {
        let err = Alphabet::new(["x", "x"]).unwrap_err();
        assert_eq!(err, AutomataError::DuplicateSymbol("x".into()));
    }

    #[test]
    fn rejects_empty() {
        let err = Alphabet::new(Vec::<String>::new()).unwrap_err();
        assert_eq!(err, AutomataError::EmptyAlphabet);
    }

    #[test]
    fn equality_is_structural() {
        let a = Alphabet::new(["p", "q"]).unwrap();
        let b = Alphabet::new(["p", "q"]).unwrap();
        let c = Alphabet::new(["q", "p"]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.check_compatible(&b).is_ok());
        assert!(a.check_compatible(&c).is_err());
    }

    #[test]
    fn require_reports_unknown() {
        let a = Alphabet::new(["p"]).unwrap();
        assert_eq!(
            a.require("nope").unwrap_err(),
            AutomataError::UnknownSymbol("nope".into())
        );
    }

    #[test]
    fn display_lists_names() {
        let a = Alphabet::new(["p", "q"]).unwrap();
        assert_eq!(a.to_string(), "{p, q}");
    }
}
