//! Property tests for the bitset-backed kernels: on random NFAs, the
//! `StateSet`/`Interner` implementations of determinization, product and
//! minimization must agree with straightforward `BTreeSet`/`BTreeMap`
//! reference implementations (the shapes the kernels replaced).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use rl_automata::{dfa_equivalent, Alphabet, Dfa, Nfa, StateId, Symbol};

const SIGMA2: [&str; 2] = ["a", "b"];

fn alphabet2() -> Alphabet {
    Alphabet::new(SIGMA2).expect("valid alphabet")
}

/// Random NFA over {a, b} with exactly `n` states.
fn nfa_strategy(n: usize) -> impl Strategy<Value = Nfa> {
    let transitions = proptest::collection::vec((0..n, 0..2usize, 0..n), 0..=(3 * n));
    let accepting = proptest::collection::vec(0..n, 0..=n);
    let initial = proptest::collection::vec(0..n, 1..=2);
    (transitions, accepting, initial).prop_map(move |(ts, acc, init)| {
        Nfa::from_parts(
            alphabet2(),
            n,
            init,
            acc,
            ts.into_iter()
                .map(|(p, s, q)| (p, Symbol::from_index(s), q)),
        )
        .expect("indices in range")
    })
}

/// Classic subset construction over `BTreeSet` subsets keyed in a
/// `BTreeMap` — the pre-bitset implementation of [`Nfa::determinize`].
fn ref_determinize(nfa: &Nfa) -> Dfa {
    let ab = nfa.alphabet().clone();
    let mut out = Dfa::new(ab.clone());
    let mut index: BTreeMap<BTreeSet<StateId>, StateId> = BTreeMap::new();
    let start = nfa.initial().clone();
    let d0 = out.add_state(start.iter().any(|&q| nfa.is_accepting(q)));
    out.set_initial(d0);
    index.insert(start.clone(), d0);
    let mut work = vec![start];
    while let Some(subset) = work.pop() {
        let d = index[&subset];
        for a in ab.symbols() {
            let next = nfa.step(&subset, a);
            // The kernel leaves the dead subset implicit (partial DFA).
            if next.is_empty() {
                continue;
            }
            let nd = match index.get(&next) {
                Some(&nd) => nd,
                None => {
                    let nd = out.add_state(next.iter().any(|&q| nfa.is_accepting(q)));
                    index.insert(next.clone(), nd);
                    work.push(next);
                    nd
                }
            };
            out.set_transition(d, a, nd);
        }
    }
    out
}

/// Pair product of two completed DFAs via a `BTreeMap` pair index — the
/// pre-bitset implementation of [`Dfa::product`].
fn ref_product(x: &Dfa, y: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
    let a = x.complete();
    let b = y.complete();
    let ab = a.alphabet().clone();
    let mut out = Dfa::new(ab.clone());
    let mut index: BTreeMap<(StateId, StateId), StateId> = BTreeMap::new();
    let start = (a.initial(), b.initial());
    let d0 = out.add_state(combine(a.is_accepting(start.0), b.is_accepting(start.1)));
    out.set_initial(d0);
    index.insert(start, d0);
    let mut work = vec![start];
    while let Some((p, q)) = work.pop() {
        let d = index[&(p, q)];
        for s in ab.symbols() {
            let next = (
                a.next(p, s).expect("complete"),
                b.next(q, s).expect("complete"),
            );
            let nd = *index.entry(next).or_insert_with(|| {
                work.push(next);
                out.add_state(combine(a.is_accepting(next.0), b.is_accepting(next.1)))
            });
            out.set_transition(d, s, nd);
        }
    }
    out
}

/// Moore's partition refinement over `BTreeMap` signatures — a slow but
/// obviously-correct reference for Hopcroft minimization. The input must be
/// reachable and complete (we feed it `complete().remove_unreachable()`).
fn ref_minimize(dfa: &Dfa) -> Dfa {
    let d = dfa.complete().remove_unreachable();
    let n = d.state_count();
    let ab = d.alphabet().clone();
    let mut class: Vec<usize> = (0..n).map(|q| usize::from(d.is_accepting(q))).collect();
    loop {
        let mut sig_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
        let mut next_class: Vec<usize> = vec![0; n];
        for q in 0..n {
            let sig = (
                class[q],
                ab.symbols()
                    .map(|a| class[d.next(q, a).expect("complete")])
                    .collect::<Vec<_>>(),
            );
            let fresh = sig_index.len();
            next_class[q] = *sig_index.entry(sig).or_insert(fresh);
        }
        if next_class == class {
            break;
        }
        class = next_class;
    }
    let block_count = class.iter().max().map_or(0, |&m| m + 1);
    let mut rep: Vec<StateId> = vec![0; block_count];
    for q in (0..n).rev() {
        rep[class[q]] = q;
    }
    let mut out = Dfa::new(ab.clone());
    for &r in &rep {
        out.add_state(d.is_accepting(r));
    }
    out.set_initial(class[d.initial()]);
    for (c, &r) in rep.iter().enumerate() {
        for a in ab.symbols() {
            out.set_transition(c, a, class[d.next(r, a).expect("complete")]);
        }
    }
    out
}

/// All words over {a, b} up to length `len`.
fn all_words(len: usize) -> Vec<Vec<Symbol>> {
    let mut out = vec![vec![]];
    let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &layer {
            for s in 0..2 {
                let mut w2 = w.clone();
                w2.push(Symbol::from_index(s));
                out.push(w2.clone());
                next.push(w2);
            }
        }
        layer = next;
    }
    out
}

proptest! {
    /// Bitset subset construction builds the same language (and, state for
    /// state, the same machine shape) as the BTreeSet reference.
    #[test]
    fn determinize_matches_reference(nfa in nfa_strategy(5)) {
        let fast = nfa.determinize();
        let slow = ref_determinize(&nfa);
        prop_assert_eq!(fast.state_count(), slow.state_count());
        prop_assert!(dfa_equivalent(&fast, &slow));
        for w in all_words(5) {
            prop_assert_eq!(fast.accepts(&w), nfa.accepts(&w));
        }
    }

    /// PairTable-indexed DFA product agrees with the BTreeMap pair product
    /// for intersection, difference and symmetric difference.
    #[test]
    fn product_matches_reference(n1 in nfa_strategy(4), n2 in nfa_strategy(4)) {
        let d1 = n1.determinize();
        let d2 = n2.determinize();
        let combines: [fn(bool, bool) -> bool; 3] =
            [|p, q| p && q, |p, q| p && !q, |p, q| p != q];
        for combine in combines {
            let fast = d1.product(&d2, combine).expect("same alphabet");
            let slow = ref_product(&d1, &d2, combine);
            prop_assert_eq!(fast.state_count(), slow.state_count());
            prop_assert!(dfa_equivalent(&fast, &slow));
        }
    }

    /// Bitset Hopcroft reaches the same block count as Moore refinement and
    /// preserves the language.
    #[test]
    fn minimize_matches_reference(nfa in nfa_strategy(5)) {
        let d = nfa.determinize();
        let fast = d.min_dfa();
        let slow = ref_minimize(&d);
        prop_assert_eq!(fast.state_count(), slow.state_count());
        prop_assert!(dfa_equivalent(&fast, &slow));
        prop_assert!(dfa_equivalent(&fast, &d));
    }

    /// The rewritten NFA pair intersection accepts exactly L(A) ∩ L(B).
    #[test]
    fn nfa_intersection_matches_languages(n1 in nfa_strategy(4), n2 in nfa_strategy(4)) {
        let inter = n1.intersection(&n2).expect("same alphabet");
        for w in all_words(5) {
            prop_assert_eq!(inter.accepts(&w), n1.accepts(&w) && n2.accepts(&w));
        }
    }
}
