//! Serde support (behind the `serde` feature): nets serialize as their
//! place/transition declarations and rebuild through the validating
//! constructors.

use serde::{Deserialize, Serialize};

use crate::net::PetriNet;

#[derive(Serialize, Deserialize)]
struct NetParts {
    /// `(name, initial tokens)` per place, in id order.
    places: Vec<(String, u32)>,
    /// `(name, pre, post)` per transition, arcs as `(place, weight)`.
    transitions: Vec<(String, Vec<(usize, u32)>, Vec<(usize, u32)>)>,
}

impl Serialize for PetriNet {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let initial = self.initial_marking();
        NetParts {
            places: self
                .place_names()
                .iter()
                .cloned()
                .zip(initial.iter().copied())
                .collect(),
            transitions: self
                .transitions()
                .iter()
                .map(|t| (t.name.clone(), t.pre.clone(), t.post.clone()))
                .collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for PetriNet {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<PetriNet, D::Error> {
        let parts = NetParts::deserialize(deserializer)?;
        let mut net = PetriNet::new();
        for (name, tokens) in parts.places {
            net.add_place(name, tokens)
                .map_err(serde::de::Error::custom)?;
        }
        for (name, pre, post) in parts.transitions {
            net.add_transition(name, pre, post)
                .map_err(serde::de::Error::custom)?;
        }
        Ok(net)
    }
}
