//! Place/transition Petri nets and bounded reachability analysis.
//!
//! The paper's Section 2 introduces its running example as a Petri net
//! (Figure 1) whose behaviors are the finite-state reachability graph
//! (Figure 2). This crate provides exactly that substrate:
//!
//! * [`PetriNet`] — place/transition nets with weighted arcs,
//! * [`reachability_graph`] — bounded reachability-graph construction into an
//!   [`rl_automata::TransitionSystem`],
//! * [`place_bounds`] — boundedness analysis,
//! * [`live_transitions`] / [`deadlock_markings`] — classical liveness and
//!   deadlock analysis (transition liveness is the net-theoretic cousin of
//!   the paper's relative liveness of `□◇t`),
//! * [`examples`] — the paper's server net (Figure 1) and its erroneous
//!   variant (Figure 3).
//!
//! # Example
//!
//! ```
//! use rl_petri::examples::{server_behaviors, server_net};
//! use rl_petri::reachability_graph;
//!
//! # fn main() -> Result<(), rl_petri::PetriError> {
//! let ts = server_behaviors(); // the paper's Figure 2
//! assert_eq!(ts.state_count(), 8);
//! assert!(ts.to_nfa().is_prefix_closed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod examples;
mod json;
mod net;
mod reachability;

pub use analysis::{deadlock_markings, live_transitions};
pub use net::{Marking, NetTransition, PetriError, PetriNet, PlaceId, TransitionId};
pub use reachability::{place_bounds, reachability_graph, DEFAULT_MARKING_LIMIT};
