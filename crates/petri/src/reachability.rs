//! Bounded reachability-graph construction.
//!
//! The reachability graph of a bounded net is a finite labeled transition
//! system — the paper's Figure 2 is exactly the reachability graph of its
//! Figure 1 net. Unbounded nets are detected by a configurable marking
//! budget.

use std::collections::{BTreeMap, VecDeque};

use rl_automata::{Alphabet, TransitionSystem};

use crate::net::{Marking, PetriError, PetriNet};

/// Default limit on the number of distinct markings explored.
pub const DEFAULT_MARKING_LIMIT: usize = 100_000;

/// Builds the reachability graph of `net` as a [`TransitionSystem`] whose
/// action alphabet is the net's transition names and whose states are the
/// reachable markings (labeled with [`PetriNet::format_marking`]).
///
/// # Errors
///
/// Returns [`PetriError::BoundExceeded`] when more than `limit` markings are
/// reachable (the net is unbounded or too large), and propagates alphabet
/// construction failures as [`PetriError::DuplicateName`] (impossible for
/// validated nets).
///
/// # Example
///
/// ```
/// use rl_petri::{reachability_graph, PetriNet};
///
/// # fn main() -> Result<(), rl_petri::PetriError> {
/// let mut net = PetriNet::new();
/// let a = net.add_place("a", 1)?;
/// let b = net.add_place("b", 0)?;
/// net.add_transition("go", [(a, 1)], [(b, 1)])?;
/// net.add_transition("back", [(b, 1)], [(a, 1)])?;
/// let ts = reachability_graph(&net, 100)?;
/// assert_eq!(ts.state_count(), 2);
/// assert_eq!(ts.transition_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn reachability_graph(net: &PetriNet, limit: usize) -> Result<TransitionSystem, PetriError> {
    let names: Vec<String> = net.transitions().iter().map(|t| t.name.clone()).collect();
    let alphabet = Alphabet::new(names).map_err(|_| {
        // Transition names are validated unique at insertion.
        PetriError::DuplicateName("internal: duplicate transition name".into())
    })?;
    let mut ts = TransitionSystem::new(alphabet.clone());
    let mut index: BTreeMap<Marking, usize> = BTreeMap::new();
    let m0 = net.initial_marking();
    let s0 = ts.add_labeled_state(net.format_marking(&m0));
    ts.set_initial(s0);
    index.insert(m0.clone(), s0);
    let mut work = VecDeque::from([m0]);
    while let Some(m) = work.pop_front() {
        let sid = index[&m];
        for t in net.enabled_transitions(&m) {
            let m2 = net.fire(&m, t).expect("enabled transition fires");
            let tid = match index.get(&m2) {
                Some(&tid) => tid,
                None => {
                    if index.len() >= limit {
                        return Err(PetriError::BoundExceeded { limit });
                    }
                    let tid = ts.add_labeled_state(net.format_marking(&m2));
                    index.insert(m2.clone(), tid);
                    work.push_back(m2.clone());
                    tid
                }
            };
            let sym = alphabet
                .symbol(&net.transitions()[t].name)
                .expect("transition name interned");
            ts.add_transition(sid, sym, tid);
        }
    }
    Ok(ts)
}

/// Checks `k`-boundedness of every place within the explored graph: returns
/// the maximal token count seen per place, or an error when exploration
/// exceeds `limit` markings.
///
/// # Errors
///
/// Returns [`PetriError::BoundExceeded`] when the net has more than `limit`
/// reachable markings.
pub fn place_bounds(net: &PetriNet, limit: usize) -> Result<Vec<u32>, PetriError> {
    let mut bounds = vec![0u32; net.place_count()];
    let mut seen: BTreeMap<Marking, ()> = BTreeMap::new();
    let m0 = net.initial_marking();
    seen.insert(m0.clone(), ());
    let mut work = VecDeque::from([m0]);
    while let Some(m) = work.pop_front() {
        for (p, &n) in m.iter().enumerate() {
            bounds[p] = bounds[p].max(n);
        }
        for t in net.enabled_transitions(&m) {
            let m2 = net.fire(&m, t).expect("enabled transition fires");
            if !seen.contains_key(&m2) {
                if seen.len() >= limit {
                    return Err(PetriError::BoundExceeded { limit });
                }
                seen.insert(m2.clone(), ());
                work.push_back(m2);
            }
        }
    }
    Ok(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_net_detected() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 0).unwrap();
        net.add_transition("spawn", [], [(p, 1)]).unwrap();
        let err = reachability_graph(&net, 50).unwrap_err();
        assert_eq!(err, PetriError::BoundExceeded { limit: 50 });
        assert!(place_bounds(&net, 50).is_err());
    }

    #[test]
    fn bounds_of_safe_net_are_one() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", 1).unwrap();
        let b = net.add_place("b", 0).unwrap();
        net.add_transition("go", [(a, 1)], [(b, 1)]).unwrap();
        net.add_transition("back", [(b, 1)], [(a, 1)]).unwrap();
        assert_eq!(place_bounds(&net, 100).unwrap(), vec![1, 1]);
    }

    #[test]
    fn graph_labels_are_markings() {
        let mut net = PetriNet::new();
        let a = net.add_place("a", 1).unwrap();
        let b = net.add_place("b", 0).unwrap();
        net.add_transition("go", [(a, 1)], [(b, 1)]).unwrap();
        let ts = reachability_graph(&net, 100).unwrap();
        assert_eq!(ts.state_label(ts.initial()).as_deref(), Some("a"));
        assert_eq!(ts.state_count(), 2);
    }

    #[test]
    fn concurrent_transitions_interleave() {
        // Two independent toggles: 4 reachable markings.
        let mut net = PetriNet::new();
        let a0 = net.add_place("a0", 1).unwrap();
        let a1 = net.add_place("a1", 0).unwrap();
        let b0 = net.add_place("b0", 1).unwrap();
        let b1 = net.add_place("b1", 0).unwrap();
        net.add_transition("ta", [(a0, 1)], [(a1, 1)]).unwrap();
        net.add_transition("tb", [(b0, 1)], [(b1, 1)]).unwrap();
        let ts = reachability_graph(&net, 100).unwrap();
        assert_eq!(ts.state_count(), 4);
        let nfa = ts.to_nfa();
        let ta = ts.alphabet().symbol("ta").unwrap();
        let tb = ts.alphabet().symbol("tb").unwrap();
        assert!(nfa.accepts(&[ta, tb]));
        assert!(nfa.accepts(&[tb, ta]));
        assert!(!nfa.accepts(&[ta, ta]));
    }
}
