//! JSON persistence (via the in-tree `rl-json` crate): nets serialize as
//! their place/transition declarations and rebuild through the validating
//! constructors.

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

use crate::net::PetriNet;

impl ToJson for PetriNet {
    fn to_json(&self) -> Json {
        let initial = self.initial_marking();
        ObjBuilder::new()
            .field(
                // `(name, initial tokens)` per place, in id order.
                "places",
                self.place_names()
                    .iter()
                    .cloned()
                    .zip(initial.iter().copied())
                    .collect::<Vec<(String, u32)>>(),
            )
            .field(
                // `(name, pre, post)` per transition, arcs as `(place, weight)`.
                "transitions",
                self.transitions()
                    .iter()
                    .map(|t| (t.name.clone(), t.pre.clone(), t.post.clone()))
                    .collect::<Vec<(String, Vec<(usize, u32)>, Vec<(usize, u32)>)>>(),
            )
            .build()
    }
}

impl FromJson for PetriNet {
    fn from_json(value: &Json) -> Result<PetriNet, JsonError> {
        let places = Vec::<(String, u32)>::from_json(value.field("places")?)?;
        let transitions = Vec::<(String, Vec<(usize, u32)>, Vec<(usize, u32)>)>::from_json(
            value.field("transitions")?,
        )?;
        let mut net = PetriNet::new();
        for (name, tokens) in places {
            net.add_place(name, tokens).map_err(JsonError::custom)?;
        }
        for (name, pre, post) in transitions {
            net.add_transition(name, pre, post)
                .map_err(JsonError::custom)?;
        }
        Ok(net)
    }
}
