//! Classical Petri-net analyses on the bounded reachability graph.
//!
//! *Transition liveness* (a transition can always fire again from every
//! reachable marking's future) is the net-theoretic cousin of the paper's
//! relative liveness: `t` is live exactly when `□◇t` is a relative liveness
//! property of the net's behaviors — compare `rl-core`'s `∀□∃◇` module.

use std::collections::{BTreeMap, VecDeque};

use crate::net::{Marking, PetriError, PetriNet, TransitionId};

/// Explores the reachability set (bounded by `limit` markings).
fn explore(net: &PetriNet, limit: usize) -> Result<Vec<Marking>, PetriError> {
    let mut seen: BTreeMap<Marking, ()> = BTreeMap::new();
    let m0 = net.initial_marking();
    seen.insert(m0.clone(), ());
    let mut order = vec![m0.clone()];
    let mut work = VecDeque::from([m0]);
    while let Some(m) = work.pop_front() {
        for t in net.enabled_transitions(&m) {
            let m2 = net.fire(&m, t).expect("enabled transition fires");
            if !seen.contains_key(&m2) {
                if seen.len() >= limit {
                    return Err(PetriError::BoundExceeded { limit });
                }
                seen.insert(m2.clone(), ());
                order.push(m2.clone());
                work.push_back(m2);
            }
        }
    }
    Ok(order)
}

/// The reachable *dead* markings (no transition enabled).
///
/// # Errors
///
/// Returns [`PetriError::BoundExceeded`] for (effectively) unbounded nets.
///
/// # Example
///
/// ```
/// use rl_petri::{deadlock_markings, PetriNet};
///
/// # fn main() -> Result<(), rl_petri::PetriError> {
/// let mut net = PetriNet::new();
/// let p = net.add_place("p", 1)?;
/// net.add_transition("consume", [(p, 1)], [])?;
/// let dead = deadlock_markings(&net, 100)?;
/// assert_eq!(dead, vec![vec![0]]); // token consumed, nothing enabled
/// # Ok(())
/// # }
/// ```
pub fn deadlock_markings(net: &PetriNet, limit: usize) -> Result<Vec<Marking>, PetriError> {
    Ok(explore(net, limit)?
        .into_iter()
        .filter(|m| net.enabled_transitions(m).is_empty())
        .collect())
}

/// Per transition: is it *live* in the classical Petri sense — from every
/// reachable marking, some firing sequence enables it again?
///
/// Computed on the reachability graph: `t` is live iff every reachable
/// marking can reach a marking enabling `t`.
///
/// # Errors
///
/// Returns [`PetriError::BoundExceeded`] for (effectively) unbounded nets.
///
/// # Example — the paper's two servers
///
/// ```
/// use rl_petri::examples::{server_net, server_net_err};
/// use rl_petri::live_transitions;
///
/// # fn main() -> Result<(), rl_petri::PetriError> {
/// // Correct server: every transition stays live.
/// let live = live_transitions(&server_net(), 1000)?;
/// assert!(live.iter().all(|&l| l));
/// // Erroneous server: `result` (and others) can die.
/// let live_err = live_transitions(&server_net_err(), 1000)?;
/// let result = server_net_err().transition_by_name("result").unwrap();
/// assert!(!live_err[result]);
/// # Ok(())
/// # }
/// ```
pub fn live_transitions(net: &PetriNet, limit: usize) -> Result<Vec<bool>, PetriError> {
    let markings = explore(net, limit)?;
    let index: BTreeMap<&Marking, usize> =
        markings.iter().enumerate().map(|(i, m)| (m, i)).collect();
    let n = markings.len();
    // Forward adjacency.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, m) in markings.iter().enumerate() {
        for t in net.enabled_transitions(m) {
            let m2 = net.fire(m, t).expect("enabled transition fires");
            succ[i].push(index[&m2]);
        }
    }
    let mut live = Vec::with_capacity(net.transition_count());
    for t in 0..net.transition_count() {
        live.push(transition_is_live(net, t, &markings, &succ));
    }
    Ok(live)
}

fn transition_is_live(
    net: &PetriNet,
    t: TransitionId,
    markings: &[Marking],
    succ: &[Vec<usize>],
) -> bool {
    // Backward closure of "enables t".
    let n = markings.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, js) in succ.iter().enumerate() {
        for &j in js {
            rev[j].push(i);
        }
    }
    let mut good = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, m) in markings.iter().enumerate() {
        if net.is_enabled(m, t) {
            good[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &rev[i] {
            if !good[j] {
                good[j] = true;
                queue.push_back(j);
            }
        }
    }
    good.iter().all(|&g| g)
}

impl PetriNet {
    /// Renders the net in Graphviz DOT syntax: circles for places (labeled
    /// with their initial tokens), boxes for transitions.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for (i, place) in self.place_names().iter().enumerate() {
            let tokens = self.initial_marking()[i];
            let label = if tokens > 0 {
                format!("{place}\\n●{tokens}")
            } else {
                place.clone()
            };
            let _ = writeln!(out, "  p{i} [shape=circle, label=\"{label}\"];");
        }
        for (j, trans) in self.transitions().iter().enumerate() {
            let _ = writeln!(out, "  t{j} [shape=box, label=\"{}\"];", trans.name);
            for &(p, w) in &trans.pre {
                let lbl = if w > 1 {
                    format!(" [label=\"{w}\"]")
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  p{p} -> t{j}{lbl};");
            }
            for &(p, w) in &trans.post {
                let lbl = if w > 1 {
                    format!(" [label=\"{w}\"]")
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  t{j} -> p{p}{lbl};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{server_net, server_net_err};

    #[test]
    fn server_has_no_deadlocks() {
        assert!(deadlock_markings(&server_net(), 1000).unwrap().is_empty());
        assert!(deadlock_markings(&server_net_err(), 1000)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn liveness_mirrors_relative_liveness_verdicts() {
        let live = live_transitions(&server_net(), 1000).unwrap();
        assert!(live.iter().all(|&l| l), "all of Figure 2 is live");
        let net = server_net_err();
        let live_err = live_transitions(&net, 1000).unwrap();
        for (name, expect) in [
            ("request", true),
            ("no", true),
            ("reject", true),
            // After `lock`, these can never fire again:
            ("yes", false),
            ("result", false),
            ("lock", false),
        ] {
            let t = net.transition_by_name(name).unwrap();
            assert_eq!(live_err[t], expect, "transition {name}");
        }
    }

    #[test]
    fn deadlock_found_in_consuming_net() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 2).unwrap();
        net.add_transition("burn", [(p, 1)], []).unwrap();
        let dead = deadlock_markings(&net, 100).unwrap();
        assert_eq!(dead, vec![vec![0]]);
        let live = live_transitions(&net, 100).unwrap();
        assert_eq!(live, vec![false]);
    }

    #[test]
    fn dot_renders_weights() {
        let mut net = PetriNet::new();
        let p = net.add_place("pool", 3).unwrap();
        let q = net.add_place("out", 0).unwrap();
        net.add_transition("take2", [(p, 2)], [(q, 1)]).unwrap();
        let dot = net.to_dot("net");
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("label=\"2\""));
        assert!(dot.contains("●3"));
    }
}
