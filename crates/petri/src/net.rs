//! Place/transition Petri nets.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Index of a place.
pub type PlaceId = usize;
/// Index of a net transition.
pub type TransitionId = usize;

/// A marking: the token count of every place.
pub type Marking = Vec<u32>;

/// Errors from net construction or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A place or transition index was out of range.
    InvalidIndex(usize),
    /// A name was declared twice.
    DuplicateName(String),
    /// The reachability graph exceeded the configured bound — the net is
    /// unbounded or too large.
    BoundExceeded {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::InvalidIndex(i) => write!(f, "invalid place/transition index {i}"),
            PetriError::DuplicateName(n) => write!(f, "duplicate name {n:?}"),
            PetriError::BoundExceeded { limit } => {
                write!(
                    f,
                    "reachability graph exceeded the bound of {limit} markings"
                )
            }
        }
    }
}

impl Error for PetriError {}

/// A transition of a net: consumes `pre`, produces `post` (weighted arcs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetTransition {
    /// Action name; this becomes the label in the reachability graph.
    pub name: String,
    /// Input arcs `(place, weight)`.
    pub pre: Vec<(PlaceId, u32)>,
    /// Output arcs `(place, weight)`.
    pub post: Vec<(PlaceId, u32)>,
}

/// A place/transition Petri net with an initial marking.
///
/// The paper's Figure 1 system is provided in [`crate::examples`]; the
/// reachability graph construction ([`crate::reachability_graph`]) turns a
/// bounded net into the [`rl_automata::TransitionSystem`] of its behaviors
/// (the paper's Figure 2).
///
/// # Example
///
/// ```
/// use rl_petri::PetriNet;
///
/// # fn main() -> Result<(), rl_petri::PetriError> {
/// let mut net = PetriNet::new();
/// let free = net.add_place("free", 1)?;
/// let locked = net.add_place("locked", 0)?;
/// net.add_transition("lock", [(free, 1)], [(locked, 1)])?;
/// net.add_transition("unlock", [(locked, 1)], [(free, 1)])?;
/// let m0 = net.initial_marking();
/// let lock = net.transition_by_name("lock").unwrap();
/// assert!(net.is_enabled(&m0, lock));
/// let m1 = net.fire(&m0, lock).unwrap();
/// assert_eq!(m1, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PetriNet {
    places: Vec<String>,
    initial: Marking,
    transitions: Vec<NetTransition>,
    place_index: BTreeMap<String, PlaceId>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> PetriNet {
        PetriNet::default()
    }

    /// Adds a place with an initial token count; returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::DuplicateName`] when the name is taken.
    pub fn add_place(
        &mut self,
        name: impl Into<String>,
        tokens: u32,
    ) -> Result<PlaceId, PetriError> {
        let name = name.into();
        if self.place_index.contains_key(&name) {
            return Err(PetriError::DuplicateName(name));
        }
        let id = self.places.len();
        self.place_index.insert(name.clone(), id);
        self.places.push(name);
        self.initial.push(tokens);
        Ok(id)
    }

    /// Adds a transition; returns its id. Arc weights must be ≥ 1.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::InvalidIndex`] for an unknown place and
    /// [`PetriError::DuplicateName`] for a repeated transition name.
    pub fn add_transition(
        &mut self,
        name: impl Into<String>,
        pre: impl IntoIterator<Item = (PlaceId, u32)>,
        post: impl IntoIterator<Item = (PlaceId, u32)>,
    ) -> Result<TransitionId, PetriError> {
        let name = name.into();
        if self.transitions.iter().any(|t| t.name == name) {
            return Err(PetriError::DuplicateName(name));
        }
        let pre: Vec<(PlaceId, u32)> = pre.into_iter().collect();
        let post: Vec<(PlaceId, u32)> = post.into_iter().collect();
        for &(p, _) in pre.iter().chain(post.iter()) {
            if p >= self.places.len() {
                return Err(PetriError::InvalidIndex(p));
            }
        }
        self.transitions.push(NetTransition { name, pre, post });
        Ok(self.transitions.len() - 1)
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The place names in id order.
    pub fn place_names(&self) -> &[String] {
        &self.places
    }

    /// The transitions in id order.
    pub fn transitions(&self) -> &[NetTransition] {
        &self.transitions
    }

    /// Looks up a place id by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Looks up a transition id by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions.iter().position(|t| t.name == name)
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Whether transition `t` is enabled at `marking`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn is_enabled(&self, marking: &Marking, t: TransitionId) -> bool {
        self.transitions[t]
            .pre
            .iter()
            .all(|&(p, w)| marking[p] >= w)
    }

    /// Fires `t` at `marking`, returning the successor marking, or `None`
    /// when `t` is not enabled.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn fire(&self, marking: &Marking, t: TransitionId) -> Option<Marking> {
        if !self.is_enabled(marking, t) {
            return None;
        }
        let mut next = marking.clone();
        for &(p, w) in &self.transitions[t].pre {
            next[p] -= w;
        }
        for &(p, w) in &self.transitions[t].post {
            next[p] += w;
        }
        Some(next)
    }

    /// All transitions enabled at `marking`.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransitionId> {
        (0..self.transitions.len())
            .filter(|&t| self.is_enabled(marking, t))
            .collect()
    }

    /// A compact display of a marking: names of marked places (with counts
    /// when > 1).
    pub fn format_marking(&self, marking: &Marking) -> String {
        let parts: Vec<String> = marking
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(p, &n)| {
                if n == 1 {
                    self.places[p].clone()
                } else {
                    format!("{}×{n}", self.places[p])
                }
            })
            .collect();
        if parts.is_empty() {
            "∅".to_owned()
        } else {
            parts.join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_net() -> PetriNet {
        let mut net = PetriNet::new();
        let free = net.add_place("free", 1).unwrap();
        let locked = net.add_place("locked", 0).unwrap();
        net.add_transition("lock", [(free, 1)], [(locked, 1)])
            .unwrap();
        net.add_transition("unlock", [(locked, 1)], [(free, 1)])
            .unwrap();
        net
    }

    #[test]
    fn firing_moves_tokens() {
        let net = toggle_net();
        let m0 = net.initial_marking();
        let lock = net.transition_by_name("lock").unwrap();
        let unlock = net.transition_by_name("unlock").unwrap();
        assert!(net.is_enabled(&m0, lock));
        assert!(!net.is_enabled(&m0, unlock));
        let m1 = net.fire(&m0, lock).unwrap();
        assert_eq!(m1, vec![0, 1]);
        assert_eq!(net.fire(&m1, unlock).unwrap(), m0);
        assert_eq!(net.fire(&m1, lock), None);
    }

    #[test]
    fn enabled_transitions_listed() {
        let net = toggle_net();
        assert_eq!(net.enabled_transitions(&net.initial_marking()), vec![0]);
    }

    #[test]
    fn weighted_arcs() {
        let mut net = PetriNet::new();
        let p = net.add_place("p", 3).unwrap();
        let q = net.add_place("q", 0).unwrap();
        net.add_transition("burn", [(p, 2)], [(q, 1)]).unwrap();
        let m0 = net.initial_marking();
        let m1 = net.fire(&m0, 0).unwrap();
        assert_eq!(m1, vec![1, 1]);
        assert!(!net.is_enabled(&m1, 0));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut net = PetriNet::new();
        net.add_place("p", 0).unwrap();
        assert_eq!(
            net.add_place("p", 1).unwrap_err(),
            PetriError::DuplicateName("p".into())
        );
        net.add_transition("t", [], []).unwrap();
        assert_eq!(
            net.add_transition("t", [], []).unwrap_err(),
            PetriError::DuplicateName("t".into())
        );
    }

    #[test]
    fn invalid_place_rejected() {
        let mut net = PetriNet::new();
        net.add_place("p", 0).unwrap();
        assert_eq!(
            net.add_transition("t", [(7, 1)], []).unwrap_err(),
            PetriError::InvalidIndex(7)
        );
    }

    #[test]
    fn marking_display() {
        let net = toggle_net();
        assert_eq!(net.format_marking(&vec![1, 0]), "free");
        assert_eq!(net.format_marking(&vec![0, 0]), "∅");
        assert_eq!(net.format_marking(&vec![2, 1]), "free×2,locked");
    }
}
