//! The paper's running example (Figures 1–3).
//!
//! A server that, after having received a *request*, sends a *result* or a
//! *rejection* to its client, depending on whether the resource it manages
//! has been *freed* or *locked*. The internal decision is taken by the
//! actions *yes* (resource free — grant) and *no* (resource locked —
//! reject).

use rl_automata::TransitionSystem;

use crate::net::PetriNet;
use crate::reachability::reachability_graph;

/// The action names of the server system, in a fixed order.
pub const SERVER_ACTIONS: [&str; 7] = ["request", "yes", "no", "result", "reject", "lock", "free"];

/// The observable actions kept by the paper's Section 2 abstraction.
pub const SERVER_OBSERVABLES: [&str; 3] = ["request", "result", "reject"];

/// The Figure 1 server as a Petri net.
///
/// Places: the client/server conversation state (`idle`, `busy`, `granting`,
/// `rejecting`) and the resource state (`free`, `locked`). Transitions:
///
/// * `request`: idle → busy,
/// * `yes`: busy → granting (checks the resource is free),
/// * `no`: busy → rejecting (checks the resource is locked),
/// * `result`: granting → idle,
/// * `reject`: rejecting → idle,
/// * `lock`: free → locked, `free`: locked → free.
///
/// # Example
///
/// ```
/// use rl_petri::examples::server_net;
/// use rl_petri::reachability_graph;
///
/// # fn main() -> Result<(), rl_petri::PetriError> {
/// let net = server_net();
/// let ts = reachability_graph(&net, 1000)?;
/// assert_eq!(ts.state_count(), 8); // Figure 2
/// # Ok(())
/// # }
/// ```
pub fn server_net() -> PetriNet {
    let mut net = PetriNet::new();
    let idle = net.add_place("idle", 1).expect("fresh net");
    let busy = net.add_place("busy", 0).expect("fresh net");
    let granting = net.add_place("granting", 0).expect("fresh net");
    let rejecting = net.add_place("rejecting", 0).expect("fresh net");
    let free = net.add_place("free", 1).expect("fresh net");
    let locked = net.add_place("locked", 0).expect("fresh net");

    net.add_transition("request", [(idle, 1)], [(busy, 1)])
        .expect("valid places");
    // The check transitions read the resource state (consume and reproduce).
    net.add_transition("yes", [(busy, 1), (free, 1)], [(granting, 1), (free, 1)])
        .expect("valid places");
    net.add_transition(
        "no",
        [(busy, 1), (locked, 1)],
        [(rejecting, 1), (locked, 1)],
    )
    .expect("valid places");
    net.add_transition("result", [(granting, 1)], [(idle, 1)])
        .expect("valid places");
    net.add_transition("reject", [(rejecting, 1)], [(idle, 1)])
        .expect("valid places");
    net.add_transition("lock", [(free, 1)], [(locked, 1)])
        .expect("valid places");
    net.add_transition("free", [(locked, 1)], [(free, 1)])
        .expect("valid places");
    net
}

/// The erroneous variant of Figure 3: once the resource is locked it can
/// never be freed again (`free` is missing), and a request can also be
/// rejected when the resource is available (extra `no` branch on a free
/// resource).
pub fn server_net_err() -> PetriNet {
    let mut net = PetriNet::new();
    let idle = net.add_place("idle", 1).expect("fresh net");
    let busy = net.add_place("busy", 0).expect("fresh net");
    let granting = net.add_place("granting", 0).expect("fresh net");
    let rejecting = net.add_place("rejecting", 0).expect("fresh net");
    let free = net.add_place("free", 1).expect("fresh net");
    let locked = net.add_place("locked", 0).expect("fresh net");

    net.add_transition("request", [(idle, 1)], [(busy, 1)])
        .expect("valid places");
    net.add_transition("yes", [(busy, 1), (free, 1)], [(granting, 1), (free, 1)])
        .expect("valid places");
    // The error is modeled faithfully to Figure 3: `no` fires regardless of
    // the resource (reject even when free), and `free` does not exist.
    net.add_transition("no", [(busy, 1)], [(rejecting, 1)])
        .expect("valid places");
    net.add_transition("result", [(granting, 1)], [(idle, 1)])
        .expect("valid places");
    net.add_transition("reject", [(rejecting, 1)], [(idle, 1)])
        .expect("valid places");
    net.add_transition("lock", [(free, 1)], [(locked, 1)])
        .expect("valid places");
    net
}

/// The behaviors of the Figure 1 net — the paper's Figure 2 — as a
/// transition system (reachability graph).
pub fn server_behaviors() -> TransitionSystem {
    reachability_graph(&server_net(), 1_000).expect("the server net is 1-bounded")
}

/// The behaviors of the erroneous net — the paper's Figure 3.
pub fn server_err_behaviors() -> TransitionSystem {
    reachability_graph(&server_net_err(), 1_000).expect("the erroneous net is 1-bounded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::place_bounds;
    use rl_automata::parse_word;

    #[test]
    fn fig1_net_shape() {
        let net = server_net();
        assert_eq!(net.place_count(), 6);
        assert_eq!(net.transition_count(), 7);
        assert_eq!(place_bounds(&net, 1000).unwrap(), vec![1; 6]);
    }

    #[test]
    fn fig2_reachability_graph_matches_paper() {
        let ts = server_behaviors();
        // 4 conversation states × 2 resource states.
        assert_eq!(ts.state_count(), 8);
        // Every state is deadlock-free (the paper's system never halts).
        for q in 0..ts.state_count() {
            assert!(!ts.is_deadlock(q), "state {q} deadlocks");
        }
    }

    #[test]
    fn fig2_admits_papers_unfair_computation() {
        // lock · (request · no · reject)^ω is a computation of the system.
        let ts = server_behaviors();
        let ab = ts.alphabet().clone();
        let prefix = parse_word(&ab, "lock").unwrap();
        let cycle = parse_word(&ab, "request.no.reject").unwrap();
        let mut word = prefix;
        for _ in 0..5 {
            word.extend_from_slice(&cycle);
        }
        assert!(ts.admits(&word));
    }

    #[test]
    fn fig2_always_can_produce_result() {
        // From every reachable state a `result` is still producible — the
        // semantic heart of □◇result being a *relative* liveness property.
        let ts = server_behaviors();
        let ab = ts.alphabet().clone();
        let result = ab.symbol("result").unwrap();
        let nfa = ts.to_nfa();
        // Mark states that can reach a `result` edge.
        for q in 0..ts.state_count() {
            let mut reached = vec![false; ts.state_count()];
            let mut stack = vec![q];
            reached[q] = true;
            let mut ok = false;
            while let Some(p) = stack.pop() {
                for (a, t) in ts.enabled(p) {
                    if a == result {
                        ok = true;
                    }
                    if !reached[t] {
                        reached[t] = true;
                        stack.push(t);
                    }
                }
            }
            assert!(ok, "state {q} cannot produce result anymore");
        }
        let _ = nfa;
    }

    #[test]
    fn fig3_lock_kills_results_forever() {
        let ts = server_err_behaviors();
        let ab = ts.alphabet().clone();
        let lock = ab.symbol("lock").unwrap();
        let result = ab.symbol("result").unwrap();
        // After `lock`, no continuation contains `result`.
        let after_lock = ts.run(&[lock]);
        assert!(!after_lock.is_empty());
        for q in after_lock {
            let mut reached = vec![false; ts.state_count()];
            let mut stack = vec![q];
            reached[q] = true;
            while let Some(p) = stack.pop() {
                for (a, t) in ts.enabled(p) {
                    assert_ne!(a, result, "result reachable after lock");
                    if !reached[t] {
                        reached[t] = true;
                        stack.push(t);
                    }
                }
            }
        }
    }

    #[test]
    fn fig3_rejects_even_when_free() {
        let ts = server_err_behaviors();
        let ab = ts.alphabet().clone();
        let w = parse_word(&ab, "request.no.reject").unwrap();
        assert!(ts.admits(&w), "free-resource rejection must be possible");
    }

    #[test]
    fn behaviors_language_is_prefix_closed() {
        assert!(server_behaviors().to_nfa().is_prefix_closed());
        assert!(server_err_behaviors().to_nfa().is_prefix_closed());
    }
}
