//! Exact Markov-chain analysis of recurrence properties.
//!
//! A uniformly random scheduler turns a (deadlock-free part of a) transition
//! system into a finite Markov chain. Classical theory: with probability 1
//! the walk enters a **bottom strongly connected component** (BSCC) and then
//! traverses *every* edge of that component infinitely often. Hence for a
//! recurrence property `□◇a`:
//!
//! * `□◇a` holds **almost surely** iff every reachable BSCC contains an
//!   `a`-transition (qualitative check, pure graph theory);
//! * `Pr(□◇a)` equals the probability of absorption into the BSCCs that
//!   contain an `a`-transition (quantitative check, a linear system solved
//!   here by Gaussian elimination).
//!
//! This is the exact counterpart of the sampling estimates in
//! [`crate::montecarlo`], and the precise tool for the paper's concluding
//! question about the relation between relative liveness and probabilistic
//! truth.

use std::collections::VecDeque;

use rl_automata::{StateId, Symbol, TransitionSystem};

/// Decomposition of a system into reachable SCCs with bottom-ness marks.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// Component id per state (usize::MAX for unreachable states).
    pub component: Vec<usize>,
    /// Number of components (of the reachable part).
    pub count: usize,
    /// Per component: does no edge leave it?
    pub bottom: Vec<bool>,
}

/// Computes the SCCs of the reachable part of `ts` and marks the bottom
/// ones.
pub fn scc_decomposition(ts: &TransitionSystem) -> SccDecomposition {
    let n = ts.state_count();
    let mut reach = vec![false; n];
    let mut queue = VecDeque::from([ts.initial()]);
    reach[ts.initial()] = true;
    while let Some(p) = queue.pop_front() {
        for (_, t) in ts.enabled(p) {
            if !reach[t] {
                reach[t] = true;
                queue.push_back(t);
            }
        }
    }
    // Iterative Tarjan.
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;
    let succ = |v: usize| -> Vec<usize> {
        if !reach[v] {
            return Vec::new();
        }
        let mut out: Vec<usize> = ts.enabled(v).iter().map(|&(_, t)| t).collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    for root in 0..n {
        if !reach[root] || index[root] != UNSET {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> = vec![(root, succ(root), 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some((v, kids, mut i)) = call.pop() {
            let mut descended = false;
            while i < kids.len() {
                let w = kids[i];
                i += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((v, kids, i));
                    call.push((w, succ(w), 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on_stack[w] = false;
                    comp[w] = count;
                    if w == v {
                        break;
                    }
                }
                count += 1;
            }
            if let Some(&mut (parent, _, _)) = call.last_mut() {
                low[parent] = low[parent].min(low[v]);
            }
        }
    }
    let mut bottom = vec![true; count];
    for v in 0..n {
        if !reach[v] {
            continue;
        }
        for (_, t) in ts.enabled(v) {
            if comp[t] != comp[v] {
                bottom[comp[v]] = false;
            }
        }
        // A deadlock state forms a "bottom" component with no future; for
        // ω-behavior purposes it is not a recurrence class — mark non-bottom
        // so it never counts as satisfying any □◇.
        if ts.is_deadlock(v) {
            bottom[comp[v]] = false;
        }
    }
    SccDecomposition {
        component: comp,
        count,
        bottom,
    }
}

/// Qualitative check: does `□◇action` hold with probability 1 under the
/// uniform random scheduler? True iff every reachable BSCC contains an
/// `action`-transition (and no deadlock is reachable).
///
/// # Example
///
/// ```
/// use rl_exec::almost_surely_recurrent;
/// use rl_petri::examples::{server_behaviors, server_err_behaviors};
///
/// let good = server_behaviors();
/// let result = good.alphabet().symbol("result").unwrap();
/// assert!(almost_surely_recurrent(&good, result));
///
/// let bad = server_err_behaviors();
/// let result_b = bad.alphabet().symbol("result").unwrap();
/// assert!(!almost_surely_recurrent(&bad, result_b));
/// ```
pub fn almost_surely_recurrent(ts: &TransitionSystem, action: Symbol) -> bool {
    probability_of_recurrence(ts, action) >= 1.0 - 1e-9
}

/// Quantitative check: the exact probability (up to floating point) that a
/// uniformly random run satisfies `□◇action`.
///
/// Computed as the absorption probability into BSCCs containing an
/// `action`-transition, by Gaussian elimination on the chain's reachability
/// equations. Runs that reach a deadlock are counted as *not* satisfying
/// the property (they have no ω-behavior at all).
pub fn probability_of_recurrence(ts: &TransitionSystem, action: Symbol) -> f64 {
    let scc = scc_decomposition(ts);
    let n = ts.state_count();
    // Good components: bottom + contain an action edge inside.
    let mut good_comp = vec![false; scc.count];
    for (p, a, q) in ts.transitions() {
        if a == action
            && scc.component[p] != usize::MAX
            && scc.component[p] == scc.component[q]
            && scc.bottom[scc.component[p]]
        {
            good_comp[scc.component[p]] = true;
        }
    }
    // Unknowns: probability of eventually being absorbed in a good BSCC,
    // per reachable state. States inside good BSCCs have value 1; states in
    // other BSCCs (bottom but bad) have value 0; transient states satisfy
    // x_q = Σ_e (1/deg(q)) x_target(e).
    let reachable: Vec<StateId> = (0..n).filter(|&q| scc.component[q] != usize::MAX).collect();
    let idx_of: Vec<Option<usize>> = {
        let mut v = vec![None; n];
        for (i, &q) in reachable.iter().enumerate() {
            v[q] = Some(i);
        }
        v
    };
    let m = reachable.len();
    // Build the linear system A x = b.
    let mut a_mat = vec![vec![0.0f64; m]; m];
    let mut b_vec = vec![0.0f64; m];
    for (i, &q) in reachable.iter().enumerate() {
        let c = scc.component[q];
        if scc.bottom[c] {
            a_mat[i][i] = 1.0;
            b_vec[i] = if good_comp[c] { 1.0 } else { 0.0 };
            continue;
        }
        let enabled = ts.enabled(q);
        if enabled.is_empty() {
            // deadlock: absorbed with value 0
            a_mat[i][i] = 1.0;
            b_vec[i] = 0.0;
            continue;
        }
        let p_each = 1.0 / enabled.len() as f64;
        a_mat[i][i] = 1.0;
        for (_, t) in enabled {
            let j = idx_of[t].expect("successor of reachable state is reachable");
            a_mat[i][j] -= p_each;
        }
    }
    let x = gaussian_solve(&mut a_mat, &mut b_vec);
    x[idx_of[ts.initial()].expect("initial is reachable")]
}

/// Solves `A x = b` in place by Gaussian elimination with partial pivoting.
/// The systems built above are always non-singular (I - transient part of a
/// substochastic matrix).
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty column");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular absorption system");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            // Indexed on purpose: `a[row]` and `a[col]` alias the same
            // matrix, so an iterator over one borrow cannot express this.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_petri::examples::{server_behaviors, server_err_behaviors};

    #[test]
    fn fig2_recurrence_is_almost_sure() {
        let ts = server_behaviors();
        let result = ts.alphabet().symbol("result").unwrap();
        // Figure 2 is strongly connected: one BSCC containing result.
        let scc = scc_decomposition(&ts);
        assert_eq!(scc.count, 1);
        assert!(scc.bottom[0]);
        assert!(almost_surely_recurrent(&ts, result));
        assert!((probability_of_recurrence(&ts, result) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_recurrence_has_probability_zero() {
        let ts = server_err_behaviors();
        let result = ts.alphabet().symbol("result").unwrap();
        // The only BSCC is the locked trap without result: probability 0.
        let p = probability_of_recurrence(&ts, result);
        assert!(p.abs() < 1e-9, "p = {p}");
        assert!(!almost_surely_recurrent(&ts, result));
    }

    #[test]
    fn fifty_fifty_absorption() {
        // s0 branches once into two absorbing loops; only one has `a`.
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let good = ts.add_state();
        let bad = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, good);
        ts.add_transition(s0, b, bad);
        ts.add_transition(good, a, good);
        ts.add_transition(bad, b, bad);
        let p = probability_of_recurrence(&ts, a);
        assert!((p - 0.5).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn deadlocks_count_as_failure() {
        let ab = Alphabet::new(["a", "stop"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let stop = ab.symbol("stop").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let dead = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s0);
        ts.add_transition(s0, stop, dead);
        // The walk leaves the a-loop almost surely (geometric trials).
        let p = probability_of_recurrence(&ts, a);
        assert!(p.abs() < 1e-9, "p = {p}");
        assert!(!almost_surely_recurrent(&ts, a));
    }

    #[test]
    fn relative_liveness_vs_probability_separation() {
        // {a,b}^ω: ◇□a is relatively live; its probabilistic counterpart
        // (eventual absorption into an a-only BSCC) is 0 because the single
        // BSCC contains b too. This is the separation discussed in the
        // paper's conclusion.
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s = ts.add_state();
        ts.set_initial(s);
        ts.add_transition(s, a, s);
        ts.add_transition(s, b, s);
        // □◇a is a.s. true (the single BSCC has an a-edge) …
        assert!(almost_surely_recurrent(&ts, a));
        // … but the b-action is also a.s. recurrent, so ◇□a is a.s. FALSE.
        assert!(almost_surely_recurrent(&ts, b));
    }
}
