//! Schedulers: resolution policies for nondeterministic choice.
//!
//! The paper's whole motivation is that liveness needs fairness: an unfair
//! scheduler can starve the Figure 2 server's `result` forever, while any
//! strongly fair scheduler yields `□◇result`. These schedulers make that
//! executable:
//!
//! * [`AgingScheduler`] — deterministic, *strongly fair*: always picks the
//!   least-recently-taken enabled transition (an LRU policy; any transition
//!   enabled infinitely often has, from some point on, the oldest timestamp
//!   whenever enabled, and is then taken).
//! * [`RandomScheduler`] — probabilistically fair (every enabled choice has
//!   positive probability each time).
//! * [`FixedPriorityScheduler`] — deliberately unfair: always the first
//!   enabled transition in a fixed order; used to *exhibit* starvation.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_automata::{StateId, Symbol};

/// A policy choosing among enabled `(action, successor)` pairs.
pub trait Scheduler {
    /// Returns the index into `enabled` to fire.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `enabled` is empty; the runner never
    /// calls with an empty slice.
    fn choose(&mut self, state: StateId, enabled: &[(Symbol, StateId)]) -> usize;
}

/// Deterministic strongly fair scheduler: least-recently-taken first.
///
/// # Example
///
/// ```
/// use rl_exec::{AgingScheduler, Scheduler};
/// use rl_automata::Symbol;
///
/// let mut s = AgingScheduler::new();
/// let enabled = [(Symbol::from_index(0), 1), (Symbol::from_index(1), 2)];
/// let first = s.choose(0, &enabled);
/// let second = s.choose(0, &enabled);
/// assert_ne!(first, second); // alternates between the two choices
/// ```
#[derive(Debug, Default)]
pub struct AgingScheduler {
    last_taken: BTreeMap<(StateId, Symbol, StateId), u64>,
    clock: u64,
}

impl AgingScheduler {
    /// Creates a fresh scheduler (all transitions equally old).
    pub fn new() -> AgingScheduler {
        AgingScheduler::default()
    }
}

impl Scheduler for AgingScheduler {
    fn choose(&mut self, state: StateId, enabled: &[(Symbol, StateId)]) -> usize {
        assert!(!enabled.is_empty(), "no enabled transitions");
        let idx = enabled
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(a, t))| self.last_taken.get(&(state, a, t)).copied().unwrap_or(0))
            .map(|(i, _)| i)
            .expect("non-empty");
        self.clock += 1;
        let (a, t) = enabled[idx];
        self.last_taken.insert((state, a, t), self.clock);
        idx
    }
}

/// Seeded random scheduler (uniform over enabled transitions).
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed (runs are reproducible).
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, _state: StateId, enabled: &[(Symbol, StateId)]) -> usize {
        assert!(!enabled.is_empty(), "no enabled transitions");
        self.rng.gen_range(0..enabled.len())
    }
}

/// Deliberately unfair: always the first enabled transition (in the sorted
/// order of [`rl_automata::TransitionSystem::enabled`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct FixedPriorityScheduler;

impl FixedPriorityScheduler {
    /// Creates the scheduler.
    pub fn new() -> FixedPriorityScheduler {
        FixedPriorityScheduler
    }
}

impl Scheduler for FixedPriorityScheduler {
    fn choose(&mut self, _state: StateId, enabled: &[(Symbol, StateId)]) -> usize {
        assert!(!enabled.is_empty(), "no enabled transitions");
        0
    }
}

/// Unfair scheduler with an explicit action preference: always fires the
/// enabled action ranking earliest in `order` (unlisted actions rank last,
/// in symbol order).
///
/// This is the adversary that produces the paper's starving computation
/// `lock · (request · no · reject)^ω` on the Figure 2 server: prefer `lock`,
/// then let the request/reject cycle run forever.
#[derive(Debug, Clone)]
pub struct PriorityScheduler {
    order: Vec<Symbol>,
}

impl PriorityScheduler {
    /// Creates a scheduler preferring actions in the given order.
    pub fn new(order: impl IntoIterator<Item = Symbol>) -> PriorityScheduler {
        PriorityScheduler {
            order: order.into_iter().collect(),
        }
    }

    fn rank(&self, a: Symbol) -> usize {
        self.order
            .iter()
            .position(|&s| s == a)
            .unwrap_or(self.order.len() + a.index())
    }
}

impl Scheduler for PriorityScheduler {
    fn choose(&mut self, _state: StateId, enabled: &[(Symbol, StateId)]) -> usize {
        assert!(!enabled.is_empty(), "no enabled transitions");
        enabled
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(a, _))| self.rank(a))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_choices() -> [(Symbol, StateId); 2] {
        [(Symbol::from_index(0), 1), (Symbol::from_index(1), 2)]
    }

    #[test]
    fn aging_round_robins_on_static_choices() {
        let mut s = AgingScheduler::new();
        let enabled = two_choices();
        let picks: Vec<usize> = (0..6).map(|_| s.choose(0, &enabled)).collect();
        // Each choice taken 3 times, alternating.
        assert_eq!(picks.iter().filter(|&&i| i == 0).count(), 3);
        assert_eq!(picks.iter().filter(|&&i| i == 1).count(), 3);
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn aging_tracks_per_state() {
        let mut s = AgingScheduler::new();
        let enabled = two_choices();
        let a = s.choose(0, &enabled);
        // A different state has independent bookkeeping.
        let b = s.choose(1, &enabled);
        assert_eq!(a, b);
    }

    #[test]
    fn random_is_reproducible() {
        let enabled = two_choices();
        let run = |seed| -> Vec<usize> {
            let mut s = RandomScheduler::new(seed);
            (0..16).map(|_| s.choose(0, &enabled)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fixed_priority_starves() {
        let mut s = FixedPriorityScheduler::new();
        let enabled = two_choices();
        assert!((0..10).all(|_| s.choose(0, &enabled) == 0));
    }
}
