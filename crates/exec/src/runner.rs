//! Executing transition systems under a scheduler, with run statistics.

use std::collections::BTreeMap;

use rl_automata::{StateId, Symbol, TransitionSystem};

use crate::scheduler::Scheduler;

/// A finite execution: the visited states and the fired action word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// States visited, starting with the initial state
    /// (`states.len() == word.len() + 1`).
    pub states: Vec<StateId>,
    /// Actions fired.
    pub word: Vec<Symbol>,
    /// Whether the run stopped early in a deadlock.
    pub deadlocked: bool,
}

impl Run {
    /// Number of steps taken.
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// Whether no step was taken.
    pub fn is_empty(&self) -> bool {
        self.word.is_empty()
    }

    /// How often each action was fired.
    pub fn action_counts(&self) -> BTreeMap<Symbol, usize> {
        let mut counts = BTreeMap::new();
        for &a in &self.word {
            *counts.entry(a).or_insert(0) += 1;
        }
        counts
    }

    /// How often each state was visited.
    pub fn state_visits(&self, state_count: usize) -> Vec<usize> {
        let mut visits = vec![0usize; state_count];
        for &q in &self.states {
            visits[q] += 1;
        }
        visits
    }

    /// The largest gap (in steps) between consecutive visits to any state in
    /// `targets`, measuring how "recurrent" the target set is. Returns
    /// `None` when the run never visits a target.
    pub fn max_gap_between_visits(&self, targets: &[bool]) -> Option<usize> {
        let mut last: Option<usize> = None;
        let mut max_gap = 0usize;
        let mut seen = false;
        for (i, &q) in self.states.iter().enumerate() {
            if targets.get(q).copied().unwrap_or(false) {
                if let Some(l) = last {
                    max_gap = max_gap.max(i - l);
                }
                last = Some(i);
                seen = true;
            }
        }
        if !seen {
            return None;
        }
        // Count the tail after the final visit too.
        if let Some(l) = last {
            max_gap = max_gap.max(self.states.len() - 1 - l);
        }
        Some(max_gap)
    }
}

impl Run {
    /// Formats the first `limit` steps as `state --action--> state …`,
    /// using state labels when available — for logs and failure messages.
    pub fn display_trace(&self, ts: &TransitionSystem, limit: usize) -> String {
        let name = |q: StateId| ts.state_label(q).unwrap_or_else(|| format!("s{q}"));
        let mut out = String::new();
        out.push_str(&name(self.states[0]));
        for (i, &a) in self.word.iter().take(limit).enumerate() {
            out.push_str(" --");
            out.push_str(ts.alphabet().name(a));
            out.push_str("--> ");
            out.push_str(&name(self.states[i + 1]));
        }
        if self.word.len() > limit {
            out.push_str(" …");
        }
        out
    }
}

/// Runs `ts` for up to `steps` steps under `scheduler`, starting from the
/// initial state. Stops early at deadlocks.
///
/// # Example — fairness makes the difference (the paper's Section 1 point)
///
/// ```
/// use rl_exec::{run, AgingScheduler, PriorityScheduler};
/// use rl_petri::examples::server_behaviors;
///
/// let ts = server_behaviors(); // Figure 2
/// let ab = ts.alphabet().clone();
/// let result = ab.symbol("result").unwrap();
///
/// // The strongly fair scheduler produces results over and over …
/// let fair = run(&ts, &mut AgingScheduler::new(), 400);
/// assert!(fair.action_counts().get(&result).copied().unwrap_or(0) > 10);
///
/// // … while an adversary that locks the resource first starves the client
/// // forever: lock · (request · no · reject)^ω, the paper's computation.
/// let lock_first = PriorityScheduler::new([ab.symbol("lock").unwrap()]);
/// let unfair = run(&ts, &mut { lock_first }, 400);
/// assert_eq!(unfair.action_counts().get(&result).copied().unwrap_or(0), 0);
/// ```
pub fn run(ts: &TransitionSystem, scheduler: &mut dyn Scheduler, steps: usize) -> Run {
    let mut states = vec![ts.initial()];
    let mut word = Vec::with_capacity(steps);
    let mut current = ts.initial();
    let mut deadlocked = false;
    for _ in 0..steps {
        let enabled = ts.enabled(current);
        if enabled.is_empty() {
            deadlocked = true;
            break;
        }
        let idx = scheduler.choose(current, &enabled);
        let (a, next) = enabled[idx];
        word.push(a);
        states.push(next);
        current = next;
    }
    Run {
        states,
        word,
        deadlocked,
    }
}

/// Empirical strong-fairness measure of a run: for every transition
/// `(q, a, t)` of the system, the ratio `taken / enabled-at-q-visits`;
/// returns the minimum ratio over transitions whose source was visited at
/// least `min_visits` times. Strongly fair runs have a positive minimum.
pub fn min_fairness_ratio(ts: &TransitionSystem, run: &Run, min_visits: usize) -> f64 {
    let mut visits = vec![0usize; ts.state_count()];
    for &q in &run.states[..run.states.len().saturating_sub(1)] {
        visits[q] += 1;
    }
    let mut taken: BTreeMap<(StateId, Symbol, StateId), usize> = BTreeMap::new();
    for (i, &a) in run.word.iter().enumerate() {
        *taken
            .entry((run.states[i], a, run.states[i + 1]))
            .or_insert(0) += 1;
    }
    let mut min_ratio = f64::INFINITY;
    for (q, a, t) in ts.transitions() {
        if visits[q] < min_visits {
            continue;
        }
        let k = taken.get(&(q, a, t)).copied().unwrap_or(0);
        min_ratio = min_ratio.min(k as f64 / visits[q] as f64);
    }
    if min_ratio.is_infinite() {
        0.0
    } else {
        min_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{AgingScheduler, FixedPriorityScheduler, RandomScheduler};
    use rl_automata::Alphabet;

    /// A one-state system with two self-loop actions.
    fn coin() -> TransitionSystem {
        let ab = Alphabet::new(["heads", "tails"]).unwrap();
        let h = ab.symbol("heads").unwrap();
        let t = ab.symbol("tails").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s = ts.add_state();
        ts.set_initial(s);
        ts.add_transition(s, h, s);
        ts.add_transition(s, t, s);
        ts
    }

    #[test]
    fn aging_run_is_balanced() {
        let ts = coin();
        let r = run(&ts, &mut AgingScheduler::new(), 100);
        assert_eq!(r.len(), 100);
        assert!(!r.deadlocked);
        let counts = r.action_counts();
        let h = ts.alphabet().symbol("heads").unwrap();
        let t = ts.alphabet().symbol("tails").unwrap();
        assert_eq!(counts[&h], 50);
        assert_eq!(counts[&t], 50);
        assert!(min_fairness_ratio(&ts, &r, 1) > 0.4);
    }

    #[test]
    fn unfair_run_starves() {
        let ts = coin();
        let r = run(&ts, &mut FixedPriorityScheduler::new(), 100);
        let t = ts.alphabet().symbol("tails").unwrap();
        assert_eq!(r.action_counts().get(&t).copied().unwrap_or(0), 0);
        assert_eq!(min_fairness_ratio(&ts, &r, 1), 0.0);
    }

    #[test]
    fn random_run_hits_both() {
        let ts = coin();
        let r = run(&ts, &mut RandomScheduler::new(42), 200);
        let counts = r.action_counts();
        assert_eq!(counts.len(), 2, "both actions should occur");
    }

    #[test]
    fn deadlock_stops_run() {
        let ab = Alphabet::new(["go"]).unwrap();
        let go = ab.symbol("go").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, go, s1);
        let r = run(&ts, &mut AgingScheduler::new(), 10);
        assert!(r.deadlocked);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn trace_display() {
        let ts = coin();
        let r = run(&ts, &mut AgingScheduler::new(), 3);
        let trace = r.display_trace(&ts, 2);
        assert!(trace.contains("--heads-->") || trace.contains("--tails-->"));
        assert!(trace.ends_with('…'), "long runs are elided: {trace}");
        let full = r.display_trace(&ts, 10);
        assert!(!full.ends_with('…'));
    }

    #[test]
    fn gap_measurement() {
        let ts = coin();
        let r = run(&ts, &mut AgingScheduler::new(), 20);
        // The single state is always visited: max gap 1.
        assert_eq!(r.max_gap_between_visits(&[true]), Some(1));
        assert_eq!(r.max_gap_between_visits(&[false]), None);
    }
}
