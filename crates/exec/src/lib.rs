//! Execution engines for finite-state transition systems.
//!
//! The paper abstracts "true under fairness" into relative liveness; this
//! crate supplies the operational side of that story: schedulers that *are*
//! (or deliberately are not) strongly fair, and a runner with statistics to
//! demonstrate Theorem 5.1's synthesized implementations empirically.
//!
//! * [`AgingScheduler`] — deterministic strongly fair (LRU over
//!   transitions),
//! * [`RandomScheduler`] — seeded uniform choice,
//! * [`FixedPriorityScheduler`] — deliberately unfair (exhibits starvation),
//! * [`run`] — bounded execution with deadlock detection,
//! * [`min_fairness_ratio`] — empirical strong-fairness measurement,
//! * [`estimate_satisfaction`] / [`markov`] — Monte-Carlo sampling and
//!   exact bottom-SCC analysis of the probabilistic reading of relative
//!   liveness that the paper's conclusion asks about.
//!
//! # Example
//!
//! ```
//! use rl_exec::{run, AgingScheduler};
//! use rl_petri::examples::server_behaviors;
//!
//! let ts = server_behaviors();
//! let r = run(&ts, &mut AgingScheduler::new(), 1000);
//! let result = ts.alphabet().symbol("result").unwrap();
//! // A strongly fair execution of the Figure 2 server keeps producing
//! // results — the operational reading of □◇result being relative-live.
//! assert!(r.action_counts()[&result] > 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod markov;
pub mod montecarlo;
mod runner;
mod scheduler;

pub use markov::{
    almost_surely_recurrent, probability_of_recurrence, scc_decomposition, SccDecomposition,
};
pub use montecarlo::{estimate_satisfaction, sample_lasso, MonteCarloEstimate};
pub use runner::{min_fairness_ratio, run, Run};
pub use scheduler::{
    AgingScheduler, FixedPriorityScheduler, PriorityScheduler, RandomScheduler, Scheduler,
};
