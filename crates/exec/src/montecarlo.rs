//! Monte-Carlo exploration of the link between relative liveness and
//! probabilistic truth.
//!
//! The paper's conclusion: *"Relative liveness properties reveal a
//! satisfaction relation … ‘almost all computations satisfy the property.’
//! In this sense, they appear to be close to properties that are
//! probabilistically true … an interesting topic for further study."*
//!
//! This module makes the comparison executable. A uniformly random
//! scheduler induces a Markov chain on a transition system; sampling random
//! *lassos* (long random walks closed into `u·v^ω` over their steady-state
//! tail) gives honest system behaviors on which PLTL can be evaluated
//! **exactly** — so the estimated satisfaction probability is a true
//! Monte-Carlo estimate of the lasso distribution's measure.
//!
//! **Caveat**: the lasso distribution is a proxy for the true Markov
//! measure, not the measure itself (the closing heuristic biases which
//! cycles become the period). For *exact* qualitative and quantitative
//! answers on recurrence properties use the bottom-SCC analysis in
//! [`crate::markov`], which shows:
//!
//! * Figure 2 + `□◇result`: relatively live, and almost surely true —
//!   fairness emerges from randomness;
//! * Figure 3 + `□◇result`: not relatively live, and probability exactly 0
//!   — the `lock` trap is sprung almost surely;
//! * `{a,b}^ω` + `◇□a`: relatively live, yet probabilistically null —
//!   relative liveness only needs *some* continuation, probability needs
//!   *most*. This separates the two notions, answering the "further study"
//!   question negatively for equivalence (while the Figure 2/3 cases show
//!   the correlation the paper anticipated).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_automata::TransitionSystem;
use rl_buchi::UpWord;
use rl_logic::{evaluate, Formula, Labeling};

/// Samples a random lasso behavior: a uniformly random walk of `max_steps`
/// steps, closed into `u·v^ω` at the *earliest* revisit (after a burn-in of
/// `2·|states|` steps) of the walk's final state — so the period covers the
/// walk's steady-state tail rather than an accidental early short cycle.
/// Returns `None` if the walk deadlocks (such a path has no ω-behavior).
pub fn sample_lasso(ts: &TransitionSystem, rng: &mut StdRng, max_steps: usize) -> Option<UpWord> {
    let mut states = vec![ts.initial()];
    let mut word = Vec::new();
    for _ in 0..max_steps {
        let state = *states.last().expect("non-empty walk");
        let enabled = ts.enabled(state);
        if enabled.is_empty() {
            return None; // deadlock: no infinite behavior down this path
        }
        let (a, next) = enabled[rng.gen_range(0..enabled.len())];
        word.push(a);
        states.push(next);
    }
    let burn_in = (2 * ts.state_count()).min(max_steps / 2);
    // Close at the earliest occurrence (≥ burn-in) of some late state: scan
    // ends t from the back so a closing pair always exists (a state must
    // repeat among the last |states|+1 positions).
    for t in (1..states.len()).rev() {
        if let Some(i) = (burn_in..t).find(|&i| states[i] == states[t]) {
            let mut prefix = word.clone();
            let period = prefix.split_off(i);
            prefix.truncate(i);
            let period = period[..t - i].to_vec();
            return Some(UpWord::new(prefix, period).expect("non-empty period"));
        }
        if t <= burn_in {
            break;
        }
    }
    // Fallback (very short walks): close at any repeat.
    for t in (1..states.len()).rev() {
        if let Some(i) = (0..t).find(|&i| states[i] == states[t]) {
            let mut prefix = word.clone();
            let period = prefix.split_off(i);
            prefix.truncate(i);
            let period = period[..t - i].to_vec();
            return Some(UpWord::new(prefix, period).expect("non-empty period"));
        }
    }
    None
}

/// Result of a Monte-Carlo satisfaction estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEstimate {
    /// Fraction of sampled behaviors satisfying the formula.
    pub probability: f64,
    /// Number of successfully sampled lassos.
    pub samples: usize,
    /// Walks that deadlocked or failed to close.
    pub rejected: usize,
}

/// Estimates the probability that a uniformly random behavior of `ts`
/// satisfies `formula` (under `labeling`), from `samples` sampled lassos.
///
/// # Example
///
/// ```
/// use rl_exec::estimate_satisfaction;
/// use rl_logic::{parse, Labeling};
/// use rl_petri::examples::server_behaviors;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = server_behaviors();
/// let lam = Labeling::canonical(ts.alphabet());
/// let est = estimate_satisfaction(&ts, &parse("[]<>result")?, &lam, 500, 7);
/// // True probability is 1 (see `markov`); the tail-lasso estimate gets
/// // close.
/// assert!(est.probability > 0.8);
/// # Ok(())
/// # }
/// ```
pub fn estimate_satisfaction(
    ts: &TransitionSystem,
    formula: &Formula,
    labeling: &Labeling,
    samples: usize,
    seed: u64,
) -> MonteCarloEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_steps = ts.state_count() * 4 + 16;
    let mut hits = 0usize;
    let mut ok = 0usize;
    let mut rejected = 0usize;
    for _ in 0..samples {
        match sample_lasso(ts, &mut rng, max_steps) {
            Some(w) => {
                ok += 1;
                if evaluate(formula, &w, labeling) {
                    hits += 1;
                }
            }
            None => rejected += 1,
        }
    }
    MonteCarloEstimate {
        probability: if ok == 0 {
            0.0
        } else {
            hits as f64 / ok as f64
        },
        samples: ok,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_logic::parse;
    use rl_petri::examples::{server_behaviors, server_err_behaviors};

    #[test]
    fn lassos_are_behaviors() {
        let ts = server_behaviors();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let w = sample_lasso(&ts, &mut rng, 64).expect("deadlock-free");
            // The unrolled prefix+period+period must be a firing sequence.
            let unrolled = w.unroll(w.lasso_len() + w.period().len());
            assert!(ts.admits(&unrolled));
        }
    }

    #[test]
    fn fig2_is_almost_surely_fair() {
        let ts = server_behaviors();
        let lam = Labeling::canonical(ts.alphabet());
        let est = estimate_satisfaction(&ts, &parse("[]<>result").unwrap(), &lam, 400, 11);
        assert!(est.probability > 0.8, "estimate {}", est.probability);
        assert_eq!(est.rejected, 0);
    }

    #[test]
    fn fig3_is_almost_surely_broken() {
        // In the erroneous server the random walk eventually locks the
        // resource (or simply measures that most lassos avoid result).
        let ts = server_err_behaviors();
        let lam = Labeling::canonical(ts.alphabet());
        let est = estimate_satisfaction(&ts, &parse("[]<>result").unwrap(), &lam, 400, 11);
        assert!(est.probability < 0.05, "estimate {}", est.probability);
    }

    #[test]
    fn relative_liveness_without_probability() {
        // {a,b}^ω: ◇□a is relatively live but probabilistically null.
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab.clone());
        let s = ts.add_state();
        ts.set_initial(s);
        ts.add_transition(s, a, s);
        ts.add_transition(s, b, s);
        let lam = Labeling::canonical(&ab);
        let est = estimate_satisfaction(&ts, &parse("<>[]a").unwrap(), &lam, 400, 5);
        // One-state lassos: period is one uniformly random letter; □a on a
        // random period fails whenever the loop contains b.
        assert!(est.probability < 0.9);
    }
}
