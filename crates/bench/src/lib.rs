//! Workload generators for the benchmark suite (experiments E8, E13, E14 of
//! DESIGN.md).
//!
//! The paper has no measured evaluation (it is a theory extended abstract),
//! so the quantitative experiments here characterize the implemented
//! decision procedures of Theorem 4.5 and the practical payoff of the
//! Section 8 abstraction workflow:
//!
//! * [`server_farm`] — `k` independent copies of the paper's Figure 1
//!   server, composed by interleaving: state space `8^k`, the natural
//!   "bigger version" of the running example,
//! * [`token_ring`] — an `n`-station ring passing a token, a classic
//!   structured scaling family,
//! * [`nth_from_end_property`] — the textbook determinization-hardness
//!   family (`a` at the `n`-th position from the end), driving the
//!   exponential worst case that PSPACE-hardness (Theorem 4.5) predicts,
//! * [`random_system`] — seeded random transition systems,
//! * [`fairness_chain`] — PLTL formula families of growing size for the
//!   translation benchmarks,
//! * [`alternating_bit`] — the alternating-bit protocol over a lossy
//!   channel: the textbook system whose liveness is *exactly* a relative
//!   liveness property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_automata::{Alphabet, Symbol, TransitionSystem};
use rl_buchi::Buchi;
use rl_logic::Formula;
use rl_petri::reachability_graph;
use rl_petri::PetriNet;

/// One server (the paper's Figure 1), with all actions suffixed by `idx` so
/// that composed copies interleave instead of synchronizing.
pub fn indexed_server(idx: usize) -> TransitionSystem {
    let mut net = PetriNet::new();
    let idle = net.add_place(format!("idle{idx}"), 1).expect("fresh");
    let busy = net.add_place(format!("busy{idx}"), 0).expect("fresh");
    let granting = net.add_place(format!("granting{idx}"), 0).expect("fresh");
    let rejecting = net.add_place(format!("rejecting{idx}"), 0).expect("fresh");
    let free = net.add_place(format!("free{idx}"), 1).expect("fresh");
    let locked = net.add_place(format!("locked{idx}"), 0).expect("fresh");
    net.add_transition(format!("request{idx}"), [(idle, 1)], [(busy, 1)])
        .expect("valid");
    net.add_transition(
        format!("yes{idx}"),
        [(busy, 1), (free, 1)],
        [(granting, 1), (free, 1)],
    )
    .expect("valid");
    net.add_transition(
        format!("no{idx}"),
        [(busy, 1), (locked, 1)],
        [(rejecting, 1), (locked, 1)],
    )
    .expect("valid");
    net.add_transition(format!("result{idx}"), [(granting, 1)], [(idle, 1)])
        .expect("valid");
    net.add_transition(format!("reject{idx}"), [(rejecting, 1)], [(idle, 1)])
        .expect("valid");
    net.add_transition(format!("lock{idx}"), [(free, 1)], [(locked, 1)])
        .expect("valid");
    net.add_transition(format!("free{idx}"), [(locked, 1)], [(free, 1)])
        .expect("valid");
    reachability_graph(&net, 100).expect("1-bounded")
}

/// `k` interleaved copies of the Figure 1 server: `8^k` states.
pub fn server_farm(k: usize) -> TransitionSystem {
    assert!(k >= 1, "at least one server");
    let mut sys = indexed_server(0);
    for i in 1..k {
        sys = sys.compose(&indexed_server(i)).expect("disjoint alphabets");
    }
    sys
}

/// The observable actions of a `k`-server farm (requests/results/rejects of
/// every server).
pub fn farm_observables(k: usize) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..k {
        names.push(format!("request{i}"));
        names.push(format!("result{i}"));
        names.push(format!("reject{i}"));
    }
    names
}

/// An `n`-station token ring: station `i` passes the token with action
/// `pass_i`; each station may also `work_i` while holding the token.
/// `□◇pass_0` is a relative liveness property (the token can always travel).
pub fn token_ring(n: usize) -> TransitionSystem {
    assert!(n >= 2, "ring needs at least 2 stations");
    let mut names = Vec::new();
    for i in 0..n {
        names.push(format!("pass{i}"));
        names.push(format!("work{i}"));
    }
    let ab = Alphabet::new(names).expect("distinct names");
    let mut ts = TransitionSystem::new(ab.clone());
    for i in 0..n {
        ts.add_labeled_state(format!("token@{i}"));
    }
    ts.set_initial(0);
    for i in 0..n {
        let pass = ab.symbol(&format!("pass{i}")).expect("interned");
        let work = ab.symbol(&format!("work{i}")).expect("interned");
        ts.add_transition(i, pass, (i + 1) % n);
        ts.add_transition(i, work, i);
    }
    ts
}

/// A seeded random transition system over an alphabet of `k` actions with
/// `n` states and roughly `density × n × k` transitions.
pub fn random_system(seed: u64, n: usize, k: usize, density: f64) -> TransitionSystem {
    let names: Vec<String> = (0..k).map(|i| format!("t{i}")).collect();
    let ab = Alphabet::new(names).expect("distinct names");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = TransitionSystem::new(ab);
    for _ in 0..n {
        ts.add_state();
    }
    ts.set_initial(0);
    for p in 0..n {
        for s in 0..k {
            if rng.gen_bool(density.clamp(0.0, 1.0)) {
                let q = rng.gen_range(0..n);
                ts.add_transition(p, Symbol::from_index(s), q);
            }
        }
        // Avoid deadlocks: guarantee one outgoing edge.
        if ts.enabled(p).is_empty() {
            let s = rng.gen_range(0..k);
            let q = rng.gen_range(0..n);
            ts.add_transition(p, Symbol::from_index(s), q);
        }
    }
    ts
}

/// The determinization-hardness property over `{a, b}`: Büchi automaton for
/// "infinitely often, the letter `n` positions back is an `a`" — its prefix
/// analysis forces `2^n` subsets, exhibiting the exponential worst case the
/// PSPACE bound of Theorem 4.5 allows.
pub fn nth_from_end_property(n: usize) -> Buchi {
    let ab = Alphabet::new(["a", "b"]).expect("two symbols");
    let a = ab.symbol("a").expect("interned");
    let b_sym = ab.symbol("b").expect("interned");
    // NFA-style Büchi: guess the distinguished `a`, count n letters, accept,
    // restart. States: 0 = idle (self-loop on both), 1..=n = counting,
    // state n is accepting and loops back to idle behavior.
    let mut m = Buchi::new(ab);
    for i in 0..=n {
        m.add_state(i == n);
    }
    m.set_initial(0);
    m.add_transition(0, a, 0);
    m.add_transition(0, b_sym, 0);
    m.add_transition(0, a, 1); // guess: this `a` is n-from-the-end of a block
    for i in 1..n {
        m.add_transition(i, a, i + 1);
        m.add_transition(i, b_sym, i + 1);
    }
    // Restart after the block.
    m.add_transition(n, a, 0);
    m.add_transition(n, b_sym, 0);
    m.add_transition(n, a, 1);
    m
}

/// Generalized-fairness formula family: `⋀_{i<k} □◇aᵢ …` expressed over two
/// atoms as `(□◇a → □◇b)` chains of growing size, for the LTL-translation
/// benchmark.
pub fn fairness_chain(k: usize) -> Formula {
    let mut f = Formula::atom("a").eventually().always();
    for i in 0..k {
        let next = if i % 2 == 0 {
            Formula::atom("b").eventually().always()
        } else {
            Formula::atom("a").eventually().always()
        };
        f = f.implies(next);
    }
    f
}

/// Nested-until family `a U (a U (… U b))` of depth `k`.
pub fn nested_until(k: usize) -> Formula {
    let mut f = Formula::atom("b");
    for _ in 0..k {
        f = Formula::atom("a").until(f);
    }
    f
}

/// The alternating-bit protocol over a lossy channel, as a composition of
/// three components (sender, channel, receiver).
///
/// * `send0/send1` — sender puts the current frame on the channel (also
///   used for retransmission);
/// * `deliver0/deliver1` — the channel hands the frame to the receiver;
/// * `lose` — the channel silently drops the frame;
/// * `deliver` — the receiver delivers fresh payload to the application
///   (the observable event);
/// * `ack0/ack1` — receiver acknowledgements, synchronized with the sender
///   (the ack path is modeled reliable; the data channel is the lossy one).
///
/// `□◇deliver` is classically false (the channel may lose every frame
/// forever) but is a **relative liveness** property — the protocol works
/// under fairness. This is the textbook instance of the paper's notion.
pub fn alternating_bit() -> TransitionSystem {
    let [sender, channel, receiver] = alternating_bit_components();
    sender
        .compose(&channel)
        .expect("disjoint-but-synced alphabets")
        .compose(&receiver)
        .expect("disjoint-but-synced alphabets")
}

/// The three components of [`alternating_bit`], before composition — used
/// to demonstrate when the compositional abstraction shortcut applies (it
/// does not here: the hidden actions are exactly the synchronized ones).
pub fn alternating_bit_components() -> [TransitionSystem; 3] {
    // Sender: S0 --send0--> A0; A0: send0 (retransmit), ack0 -> S1,
    //         ack1 ignored; symmetrically for bit 1.
    let sender = {
        let ab = Alphabet::new(["send0", "send1", "ack0", "ack1"]).expect("distinct");
        let send0 = ab.symbol("send0").expect("interned");
        let send1 = ab.symbol("send1").expect("interned");
        let ack0 = ab.symbol("ack0").expect("interned");
        let ack1 = ab.symbol("ack1").expect("interned");
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_labeled_state("S0");
        let a0 = ts.add_labeled_state("A0");
        let s1 = ts.add_labeled_state("S1");
        let a1 = ts.add_labeled_state("A1");
        ts.set_initial(s0);
        ts.add_transition(s0, send0, a0);
        ts.add_transition(a0, send0, a0); // retransmit
        ts.add_transition(a0, ack0, s1);
        ts.add_transition(a0, ack1, a0); // stale ack ignored
        ts.add_transition(s1, send1, a1);
        ts.add_transition(a1, send1, a1);
        ts.add_transition(a1, ack1, s0);
        ts.add_transition(a1, ack0, a1); // stale ack ignored
        ts
    };
    // Lossy channel: empty / holding a 0-frame / holding a 1-frame.
    let channel = {
        let ab =
            Alphabet::new(["send0", "send1", "deliver0", "deliver1", "lose"]).expect("distinct");
        let send0 = ab.symbol("send0").expect("interned");
        let send1 = ab.symbol("send1").expect("interned");
        let deliver0 = ab.symbol("deliver0").expect("interned");
        let deliver1 = ab.symbol("deliver1").expect("interned");
        let lose = ab.symbol("lose").expect("interned");
        let mut ts = TransitionSystem::new(ab);
        let empty = ts.add_labeled_state("empty");
        let c0 = ts.add_labeled_state("frame0");
        let c1 = ts.add_labeled_state("frame1");
        ts.set_initial(empty);
        ts.add_transition(empty, send0, c0);
        ts.add_transition(empty, send1, c1);
        ts.add_transition(c0, deliver0, empty);
        ts.add_transition(c0, lose, empty);
        ts.add_transition(c1, deliver1, empty);
        ts.add_transition(c1, lose, empty);
        ts
    };
    // Receiver: expecting bit b, fresh frames are delivered to the
    // application then acknowledged; duplicate frames are re-acknowledged
    // silently.
    let receiver = {
        let ab =
            Alphabet::new(["deliver0", "deliver1", "ack0", "ack1", "deliver"]).expect("distinct");
        let deliver0 = ab.symbol("deliver0").expect("interned");
        let deliver1 = ab.symbol("deliver1").expect("interned");
        let ack0 = ab.symbol("ack0").expect("interned");
        let ack1 = ab.symbol("ack1").expect("interned");
        let deliver = ab.symbol("deliver").expect("interned");
        let mut ts = TransitionSystem::new(ab);
        let r0 = ts.add_labeled_state("R0");
        let d0 = ts.add_labeled_state("D0");
        let g0 = ts.add_labeled_state("G0");
        let k0 = ts.add_labeled_state("dup1@R0");
        let r1 = ts.add_labeled_state("R1");
        let d1 = ts.add_labeled_state("D1");
        let g1 = ts.add_labeled_state("G1");
        let k1 = ts.add_labeled_state("dup0@R1");
        ts.set_initial(r0);
        ts.add_transition(r0, deliver0, d0);
        ts.add_transition(d0, deliver, g0);
        ts.add_transition(g0, ack0, r1);
        ts.add_transition(r0, deliver1, k0); // duplicate of the old frame
        ts.add_transition(k0, ack1, r0);
        ts.add_transition(r1, deliver1, d1);
        ts.add_transition(d1, deliver, g1);
        ts.add_transition(g1, ack1, r0);
        ts.add_transition(r1, deliver0, k1);
        ts.add_transition(k1, ack0, r1);
        ts
    };
    [sender, channel, receiver]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_buchi::behaviors_of_ts;
    use rl_core::{is_relative_liveness, Property};
    use rl_logic::parse;

    #[test]
    fn farm_sizes_multiply() {
        assert_eq!(server_farm(1).state_count(), 8);
        assert_eq!(server_farm(2).state_count(), 64);
    }

    #[test]
    fn farm_keeps_relative_liveness() {
        let sys = server_farm(2);
        let p = Property::formula(parse("[]<>result0").unwrap());
        assert!(
            is_relative_liveness(&behaviors_of_ts(&sys), &p)
                .unwrap()
                .holds
        );
    }

    #[test]
    fn ring_token_travels() {
        let sys = token_ring(4);
        let p = Property::formula(parse("[]<>pass0").unwrap());
        assert!(
            is_relative_liveness(&behaviors_of_ts(&sys), &p)
                .unwrap()
                .holds
        );
        // But "station 1 eventually always works" is not relatively live:
        // work1 requires the token at 1, and passing is unavoidable to
        // return there — []work1 is doomed from the start.
        let q = Property::formula(parse("<>[]work1").unwrap());
        let verdict = is_relative_liveness(&behaviors_of_ts(&sys), &q).unwrap();
        assert!(verdict.holds == (verdict.doomed_prefix.is_none()));
    }

    #[test]
    fn random_system_is_deadlock_free() {
        let sys = random_system(11, 20, 3, 0.3);
        for q in 0..sys.state_count() {
            assert!(!sys.is_deadlock(q));
        }
    }

    #[test]
    fn hardness_family_grows() {
        let p3 = nth_from_end_property(3);
        let pre = p3.prefix_nfa().determinize();
        assert!(pre.state_count() >= 8, "expected ≥ 2^3 subset states");
    }

    #[test]
    fn alternating_bit_is_relatively_live() {
        let ts = alternating_bit();
        // Deadlock-free protocol.
        for q in 0..ts.state_count() {
            assert!(!ts.is_deadlock(q), "state {q} deadlocks");
        }
        let p = Property::formula(parse("[]<>deliver").unwrap());
        let behaviors = behaviors_of_ts(&ts);
        // Classically false: the channel may lose everything …
        assert!(!rl_core::satisfies(&behaviors, &p).unwrap().holds);
        // … relatively live: fairness delivers.
        assert!(is_relative_liveness(&behaviors, &p).unwrap().holds);
    }

    #[test]
    fn formula_families_sizes() {
        assert!(fairness_chain(4).size() > fairness_chain(1).size());
        assert_eq!(nested_until(3).size(), 7);
    }
}
