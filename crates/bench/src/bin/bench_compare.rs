//! Compares two benchmark files of the same schema and fails when the fresh
//! run regresses against the committed baseline.
//!
//! Usage:
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! Three schemas are understood, matched on the documents' `schema` field
//! (baseline and fresh must agree):
//!
//! - `rl-bench-trajectory/v1` — per-phase pipeline totals. Deterministic
//!   counters: `states`, `transitions`, `guard_charges`; wall clock:
//!   `elapsed_us`; witness: `trace_counters_equal` (tracing must not move
//!   the counters).
//! - `rl-bench-par/v1` — jobs 1 vs jobs 4 wall clocks. Same deterministic
//!   counters; wall clock: `jobs1_us`; witness: `counters_equal`. When
//!   either document's `host_cpus` meta is below 4 a warning notes that
//!   the recorded speedups measure coordination overhead, not scaling.
//! - `rl-bench-lazy/v1` — fused-lazy vs materializing pipeline.
//!   Deterministic counters: `lazy_states`, `eager_states`,
//!   `lazy_expanded`, `lazy_subsumed`; wall clock: `lazy_jobs1_us`;
//!   witness: `lazy_counters_equal` (thread-count independence).
//! - `rl-bench-filters/v1` — the semidecision pre-filter ladder.
//!   Deterministic counters: `filtered_states`, `filtered_transitions`,
//!   `lazy_expanded` (a ladder hit must keep this at zero); wall clock:
//!   `filtered_us`; witness: `filters_agree` (verdicts match
//!   `--no-filters`; fall-through counters bit-for-bit identical).
//! - `rl-bench-hist/v1` — percentile histograms attached vs detached.
//!   Deterministic counters: `states`, `transitions`, `guard_charges`;
//!   wall clock: `elapsed_us`; witness: `hist_counters_equal` (recording
//!   latency samples moves no counter). Additionally gates each recorded
//!   family's p50/p99 against the baseline with a generous tolerance
//!   (beyond it fails hard); baselines without `families` are skipped.
//!
//! The deterministic counters are identical across machines and runs, so
//! *any* increase over the baseline is a hard failure (exit 1) — this is
//! what makes the check jitter-tolerant in CI. Wall-clock is noisy there,
//! so a regression beyond 25% is only reported as a warning.
//!
//! A case present in the baseline but missing from the fresh run (matched on
//! `system` + `formula`) is also a hard failure: silently dropping a case
//! would make the comparison vacuous.

use std::process::ExitCode;

use rl_json::{parse, Json};

/// Tolerated wall-clock slowdown before a warning is printed.
const ELAPSED_TOLERANCE: f64 = 1.25;

/// Percentile gate for `rl-bench-hist/v1` families: a fresh percentile
/// beyond `baseline × HIST_TOLERANCE + HIST_SLACK_US` is a hard failure.
/// The factor is generous because latency percentiles on shared CI runners
/// are noisy, and the absolute slack keeps single-digit-µs baselines from
/// failing on scheduler jitter — a real regression (an accidental O(n²), a
/// lock on the hot path) blows through both.
const HIST_TOLERANCE: f64 = 4.0;
const HIST_SLACK_US: u64 = 100;

/// Per-schema comparison profile: which per-case fields are deterministic
/// (any increase fails), which field is the noisy wall clock (warn only),
/// and which boolean field witnesses an in-run invariant (false fails;
/// absent is tolerated for pre-witness baselines).
struct Profile {
    counters: &'static [&'static str],
    elapsed: &'static str,
    witness: &'static str,
    witness_label: &'static str,
}

fn profile(schema: &str) -> Option<Profile> {
    match schema {
        "rl-bench-trajectory/v1" => Some(Profile {
            counters: &["states", "transitions", "guard_charges"],
            elapsed: "elapsed_us",
            witness: "trace_counters_equal",
            witness_label: "tracer left the deterministic counters untouched",
        }),
        "rl-bench-par/v1" => Some(Profile {
            counters: &["states", "transitions", "guard_charges"],
            elapsed: "jobs1_us",
            witness: "counters_equal",
            witness_label: "parallel counters matched sequential",
        }),
        "rl-bench-lazy/v1" => Some(Profile {
            counters: &[
                "lazy_states",
                "eager_states",
                "lazy_expanded",
                "lazy_subsumed",
            ],
            elapsed: "lazy_jobs1_us",
            witness: "lazy_counters_equal",
            witness_label: "lazy counters thread-count independent",
        }),
        "rl-bench-filters/v1" => Some(Profile {
            counters: &["filtered_states", "filtered_transitions", "lazy_expanded"],
            elapsed: "filtered_us",
            witness: "filters_agree",
            witness_label: "ladder verdicts and fall-through counters agree with --no-filters",
        }),
        "rl-bench-hist/v1" => Some(Profile {
            counters: &["states", "transitions", "guard_charges"],
            elapsed: "elapsed_us",
            witness: "hist_counters_equal",
            witness_label: "histogram recording left the deterministic counters untouched",
        }),
        _ => None,
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn str_field<'j>(case: &'j Json, key: &str) -> Result<&'j str, String> {
    match case.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

fn int_field(case: &Json, key: &str) -> Result<u64, String> {
    match case.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "field `{key}`: expected non-negative int, got {other:?}"
        )),
    }
}

fn cases(doc: &Json, path: &str, schema: &str) -> Result<Vec<Json>, String> {
    let found = str_field(doc, "schema")?;
    if found != schema {
        return Err(format!(
            "{path}: schema {found:?} does not match {schema:?}"
        ));
    }
    Ok(doc
        .field("cases")
        .and_then(Json::as_arr)
        .map_err(|e| format!("{path}: {e}"))?
        .to_vec())
}

/// `rl-bench-par/v1` meta: a document recorded on a starved host measures
/// coordination overhead, not the kernels' scaling — worth a warning so a
/// "speedup 0.6x" baseline is not mistaken for a real regression target.
fn warn_on_starved_host(doc: &Json, path: &str, warnings: &mut usize) {
    if let Some(Json::Int(n)) = doc.get("host_cpus") {
        if *n < 4 {
            eprintln!(
                "warn {path}: recorded with host_cpus {n} (< 4); its speedups \
                 measure coordination overhead, not the kernels' scaling"
            );
            *warnings += 1;
        }
    }
}

/// `rl-bench-hist/v1`: the per-family percentile gate. A baseline case
/// without a `families` array is skipped outright — pre-histogram baselines
/// stay valid without regeneration. A family present in the baseline but
/// missing from the fresh run is only a warning (which families record is
/// pipeline-dependent), while a percentile beyond the tolerance fails hard.
fn compare_hist_families(
    base: &Json,
    new: &Json,
    label: &str,
    failures: &mut usize,
    warnings: &mut usize,
) {
    let Some(Json::Arr(base_families)) = base.get("families") else {
        return;
    };
    let empty = Vec::new();
    let fresh_families = match new.get("families") {
        Some(Json::Arr(a)) => a,
        _ => &empty,
    };
    for family in base_families {
        let Ok(name) = str_field(family, "name") else {
            continue;
        };
        let Some(fresh) = fresh_families
            .iter()
            .find(|f| str_field(f, "name") == Ok(name))
        else {
            eprintln!("warn {label}: histogram family {name} missing from fresh run");
            *warnings += 1;
            continue;
        };
        for pct in ["p50", "p99"] {
            let (Ok(b), Ok(n)) = (int_field(family, pct), int_field(fresh, pct)) else {
                continue;
            };
            let allowed = (b as f64 * HIST_TOLERANCE) as u64 + HIST_SLACK_US;
            if n > allowed {
                eprintln!(
                    "FAIL {label}: {name} {pct} regressed {b}µs -> {n}µs \
                     (allowed {allowed}µs)"
                );
                *failures += 1;
            } else {
                println!("ok   {label}: {name} {pct} {b}µs -> {n}µs");
            }
        }
    }
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<ExitCode, String> {
    let baseline_doc = load(baseline_path)?;
    let fresh_doc = load(fresh_path)?;
    let schema = str_field(&baseline_doc, "schema")?.to_owned();
    let Some(profile) = profile(&schema) else {
        return Err(format!("{baseline_path}: unexpected schema {schema:?}"));
    };
    let baseline = cases(&baseline_doc, baseline_path, &schema)?;
    let fresh = cases(&fresh_doc, fresh_path, &schema)?;
    let mut failures = 0usize;
    let mut warnings = 0usize;
    if schema == "rl-bench-par/v1" {
        warn_on_starved_host(&baseline_doc, baseline_path, &mut warnings);
        warn_on_starved_host(&fresh_doc, fresh_path, &mut warnings);
    }

    for base in &baseline {
        let system = str_field(base, "system")?;
        let formula = str_field(base, "formula")?;
        let label = format!("{system} {formula}");
        let Some(new) = fresh.iter().find(|c| {
            str_field(c, "system") == Ok(system) && str_field(c, "formula") == Ok(formula)
        }) else {
            eprintln!("FAIL {label}: case missing from fresh run");
            failures += 1;
            continue;
        };
        for counter in profile.counters {
            let (b, n) = (int_field(base, counter)?, int_field(new, counter)?);
            if n > b {
                eprintln!("FAIL {label}: {counter} regressed {b} -> {n}");
                failures += 1;
            } else {
                println!("ok   {label}: {counter} {b} -> {n}");
            }
        }
        // The harness records whether the run's internal invariant held
        // (tracing zero-cost, parallel/lazy counters bit-for-bit). A false
        // witness is a hard failure. (Absent in pre-witness baselines.)
        match new.get(profile.witness) {
            Some(Json::Bool(true)) => {
                println!("ok   {label}: {}", profile.witness_label);
            }
            Some(Json::Bool(false)) => {
                eprintln!("FAIL {label}: witness `{}` is false", profile.witness);
                failures += 1;
            }
            _ => {}
        }
        let (b_us, n_us) = (
            int_field(base, profile.elapsed)?,
            int_field(new, profile.elapsed)?,
        );
        if (n_us as f64) > (b_us as f64) * ELAPSED_TOLERANCE {
            eprintln!(
                "warn {label}: {} regressed {b_us} -> {n_us} (> {ELAPSED_TOLERANCE}x; \
                 wall-clock only, not fatal)",
                profile.elapsed
            );
            warnings += 1;
        } else {
            println!("ok   {label}: {} {b_us} -> {n_us}", profile.elapsed);
        }
        if schema == "rl-bench-hist/v1" {
            compare_hist_families(base, new, &label, &mut failures, &mut warnings);
        }
    }

    println!(
        "compared {} baseline case(s) [{schema}]: {failures} failure(s), {warnings} warning(s)",
        baseline.len()
    );
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline), Some(fresh)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}
