//! Compares two trajectory benchmark files (schema `rl-bench-trajectory/v1`)
//! and fails when the fresh run regresses against the committed baseline.
//!
//! Usage:
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json>
//! ```
//!
//! The deterministic counters (`states`, `transitions`, `guard_charges`) are
//! identical across machines and runs, so *any* increase over the baseline is
//! a hard failure (exit 1) — this is what makes the check jitter-tolerant in
//! CI. Wall-clock (`elapsed_us`) is noisy there, so a regression beyond 25%
//! is only reported as a warning.
//!
//! A case present in the baseline but missing from the fresh run (matched on
//! `system` + `formula`) is also a hard failure: silently dropping a case
//! would make the comparison vacuous.

use std::process::ExitCode;

use rl_json::{parse, Json};

/// Deterministic per-case totals: any increase is a real regression.
const COUNTERS: [&str; 3] = ["states", "transitions", "guard_charges"];
/// Tolerated wall-clock slowdown before a warning is printed.
const ELAPSED_TOLERANCE: f64 = 1.25;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn str_field<'j>(case: &'j Json, key: &str) -> Result<&'j str, String> {
    match case.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

fn int_field(case: &Json, key: &str) -> Result<u64, String> {
    match case.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "field `{key}`: expected non-negative int, got {other:?}"
        )),
    }
}

fn cases(doc: &Json, path: &str) -> Result<Vec<Json>, String> {
    let schema = str_field(doc, "schema")?;
    if schema != "rl-bench-trajectory/v1" {
        return Err(format!("{path}: unexpected schema {schema:?}"));
    }
    Ok(doc
        .field("cases")
        .and_then(Json::as_arr)
        .map_err(|e| format!("{path}: {e}"))?
        .to_vec())
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<ExitCode, String> {
    let baseline = cases(&load(baseline_path)?, baseline_path)?;
    let fresh = cases(&load(fresh_path)?, fresh_path)?;
    let mut failures = 0usize;
    let mut warnings = 0usize;

    for base in &baseline {
        let system = str_field(base, "system")?;
        let formula = str_field(base, "formula")?;
        let label = format!("{system} {formula}");
        let Some(new) = fresh.iter().find(|c| {
            str_field(c, "system") == Ok(system) && str_field(c, "formula") == Ok(formula)
        }) else {
            eprintln!("FAIL {label}: case missing from fresh run");
            failures += 1;
            continue;
        };
        for counter in COUNTERS {
            let (b, n) = (int_field(base, counter)?, int_field(new, counter)?);
            if n > b {
                eprintln!("FAIL {label}: {counter} regressed {b} -> {n}");
                failures += 1;
            } else {
                println!("ok   {label}: {counter} {b} -> {n}");
            }
        }
        // The harness re-runs every case with the event tracer attached and
        // records whether the deterministic counters came out identical.
        // A false witness means tracing is no longer zero-cost on the
        // counters — a hard failure. (Absent in pre-tracer baselines.)
        match new.get("trace_counters_equal") {
            Some(Json::Bool(true)) => {
                println!("ok   {label}: tracer left the deterministic counters untouched");
            }
            Some(Json::Bool(false)) => {
                eprintln!("FAIL {label}: tracing perturbed the deterministic counters");
                failures += 1;
            }
            _ => {}
        }
        let (b_us, n_us) = (
            int_field(base, "elapsed_us")?,
            int_field(new, "elapsed_us")?,
        );
        if (n_us as f64) > (b_us as f64) * ELAPSED_TOLERANCE {
            eprintln!("warn {label}: elapsed_us regressed {b_us} -> {n_us} (> {ELAPSED_TOLERANCE}x; wall-clock only, not fatal)");
            warnings += 1;
        } else {
            println!("ok   {label}: elapsed_us {b_us} -> {n_us}");
        }
    }

    println!(
        "compared {} baseline case(s): {failures} failure(s), {warnings} warning(s)",
        baseline.len()
    );
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline), Some(fresh)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}
