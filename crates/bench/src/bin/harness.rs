//! Experiment harness: regenerates every table recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p rl-bench --bin harness [-- <experiment>]`
//! where `<experiment>` is one of `fig2 fig3 fig4 scaling payoff hardness
//! ltl fair prob trajectory par lazy filters hist all` (default `all`).
//!
//! `trajectory` additionally writes `BENCH_<date>.json` at the repository
//! root: per-phase observability metrics (schema `rl-bench-trajectory/v1`)
//! for every example system, including `needle24.ts` under a budget.
//! `--out <path>` redirects that JSON (used by the `bench_compare` CI job
//! to produce a fresh run without clobbering the committed baseline), and
//! `--jobs N` runs every case with an `N`-worker pool attached to the guard
//! (the counters must not change — only wall-clock may). Every case is
//! additionally re-run with the event tracer attached; the run aborts if
//! tracing shifts any deterministic counter, and the traced wall clock,
//! event count, and equality witness land in the JSON
//! (`traced_elapsed_us`, `trace_events`, `trace_counters_equal`).
//!
//! `par` writes `BENCH_<date>-par.json` (schema `rl-bench-par/v1`): every
//! trajectory case timed at `--jobs 1` and `--jobs 4` side by side, with a
//! `counters_equal` witness that the parallel kernels charged bit-for-bit
//! the sequential totals.
//!
//! `lazy` writes `BENCH_<date>-lazy.json` (schema `rl-bench-lazy/v1`):
//! every trajectory case checked with the lazy fused pipeline (the default)
//! and with `--no-lazy` materialization side by side — expanded-state and
//! wall-clock deltas, with needle24 as the headline case.
//!
//! `filters` writes `BENCH_<date>-filters.json` (schema
//! `rl-bench-filters/v1`): every trajectory case plus the shipped
//! `filter_*.ts` instances run with the semidecision pre-filter ladder on
//! and off — which stage settled each case, the zero-exact-work invariant
//! on hits, and the bit-for-bit fall-through counter identity.
//!
//! `hist` writes `BENCH_<date>-hist.json` (schema `rl-bench-hist/v1`):
//! every trajectory case run with the percentile histogram registry
//! attached next to a detached control — per-family p50/p90/p99/max plus a
//! `hist_counters_equal` witness that recording latency samples moved no
//! deterministic counter.

use std::time::{Duration, Instant};

use relative_liveness::format::parse_system;
use rl_abstraction::{abstract_behavior, check_simplicity, Homomorphism};
use rl_bench::{
    fairness_chain, farm_observables, nested_until, nth_from_end_property, server_farm, token_ring,
};
use rl_buchi::{behaviors_of_ts, behaviors_of_ts_with, Buchi};
use rl_core::{
    is_relative_liveness, is_relative_liveness_with, is_relative_safety, is_relative_safety_with,
    satisfies, satisfies_with, synthesize_fair_implementation, verify_via_abstraction, Budget,
    CheckError, Guard, Metric, MetricsRegistry, Property, TransferConclusion,
};
use rl_exec::{run, AgingScheduler};
use rl_json::{Json, ObjBuilder, ToJson};
use rl_logic::{formula_to_buchi, parse, Labeling};
use rl_petri::examples::{server_behaviors, server_err_behaviors};

fn time_ms<T>(f: impl Fn() -> T) -> (T, f64) {
    // Median of three runs.
    let mut times = Vec::new();
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        out = Some(f());
        times.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    times.sort_by(f64::total_cmp);
    (out.expect("ran at least once"), times[1])
}

fn fig2() {
    println!("== E2/E3 — Figure 2: the correct server ==");
    let ts = server_behaviors();
    let behaviors = behaviors_of_ts(&ts);
    let p = Property::formula(parse("[]<>result").expect("parses"));
    let classical = satisfies(&behaviors, &p).expect("checks");
    let relative = is_relative_liveness(&behaviors, &p).expect("checks");
    let safety = is_relative_safety(&behaviors, &p).expect("checks");
    println!("states                {:>8}", ts.state_count());
    println!("transitions           {:>8}", ts.transition_count());
    println!("classical []<>result  {:>8}", classical.holds);
    println!(
        "counterexample        {:>8}",
        classical
            .counterexample
            .map(|x| x.display(ts.alphabet()))
            .unwrap_or_default()
    );
    println!("rel-live []<>result   {:>8}", relative.holds);
    println!("rel-safe []<>result   {:>8}", safety.holds);
    println!();
}

fn fig3() {
    println!("== E4 — Figure 3: the erroneous server ==");
    let ts = server_err_behaviors();
    let behaviors = behaviors_of_ts(&ts);
    let p = Property::formula(parse("[]<>result").expect("parses"));
    let relative = is_relative_liveness(&behaviors, &p).expect("checks");
    println!("states                {:>8}", ts.state_count());
    println!("rel-live []<>result   {:>8}", relative.holds);
    println!(
        "doomed prefix         {:>8}",
        relative
            .doomed_prefix
            .map(|w| rl_automata::format_word(ts.alphabet(), &w))
            .unwrap_or_default()
    );
    println!();
}

fn fig4() {
    println!("== E5/E6/E12 — Figure 4 + simplicity + transfer ==");
    let keep = ["request", "result", "reject"];
    let eta = parse("[]<>result").expect("parses");
    for (name, ts) in [
        ("Figure 2", server_behaviors()),
        ("Figure 3", server_err_behaviors()),
    ] {
        let h = Homomorphism::hiding(ts.alphabet(), keep).expect("visible actions exist");
        let analysis = verify_via_abstraction(&ts, &h, &eta).expect("pipeline runs");
        let conclusion = match analysis.conclusion {
            TransferConclusion::ConcreteHolds => "concrete HOLDS (Thm 8.2)",
            TransferConclusion::ConcreteFails { .. } => "concrete FAILS (Thm 8.3)",
            TransferConclusion::InconclusiveNotSimple { .. } => "INCONCLUSIVE (not simple)",
            TransferConclusion::InconclusiveMaximalWords => "INCONCLUSIVE (maximal words)",
        };
        println!(
            "{name}: abstract states {} | abstract holds {} | simple {} | {}",
            analysis.abstract_system.state_count(),
            analysis.abstract_verdict.holds,
            analysis.simplicity.simple,
            conclusion
        );
    }
    println!();
}

fn scaling() {
    println!("== E8 — relative-liveness decision scaling (Theorem 4.5) ==");
    println!(
        "{:<18} {:>8} {:>12} {:>10}",
        "family", "states", "rel-live", "ms"
    );
    for n in [4usize, 8, 16, 32, 64, 128] {
        let ts = token_ring(n);
        let p = Property::formula(parse("[]<>pass0").expect("parses"));
        let behaviors = behaviors_of_ts(&ts);
        let (verdict, ms) = time_ms(|| is_relative_liveness(&behaviors, &p).expect("checks"));
        println!(
            "{:<18} {:>8} {:>12} {:>10.2}",
            format!("token_ring({n})"),
            ts.state_count(),
            verdict.holds,
            ms
        );
    }
    for k in [1usize, 2, 3] {
        let ts = server_farm(k);
        let p = Property::formula(parse("[]<>result0").expect("parses"));
        let behaviors = behaviors_of_ts(&ts);
        let (verdict, ms) = time_ms(|| is_relative_liveness(&behaviors, &p).expect("checks"));
        println!(
            "{:<18} {:>8} {:>12} {:>10.2}",
            format!("server_farm({k})"),
            ts.state_count(),
            verdict.holds,
            ms
        );
    }
    println!();
}

fn payoff() {
    println!("== E13 — abstraction payoff (Corollary 8.4) ==");
    println!(
        "{:<16} {:>8} {:>10} {:>14} {:>14} {:>18} {:>9}",
        "system",
        "states",
        "abs-states",
        "concrete-ms",
        "abstract-ms",
        "compositional-ms",
        "speedup"
    );
    for k in [1usize, 2, 3] {
        let ts = server_farm(k);
        let keep: Vec<String> = farm_observables(k);
        let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
        let h = Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied())
            .expect("observables exist");
        let eta = parse("[]<>result0").expect("parses");

        // Concrete route: decide the transported property on the full system.
        let (concrete, concrete_ms) =
            time_ms(|| rl_core::check_transported_concrete(&ts, &h, &eta).expect("concrete check"));
        // Abstract route: abstraction + simplicity + abstract decision.
        let (abs_states, abstract_ms) = time_ms(|| {
            let abs = abstract_behavior(&h, &ts);
            let simple = check_simplicity(&h, &ts.to_nfa())
                .expect("simplicity")
                .simple;
            let verdict =
                is_relative_liveness(&behaviors_of_ts(&abs), &Property::formula(eta.clone()))
                    .expect("abstract check");
            assert!(simple && verdict.holds == concrete.holds);
            abs.state_count()
        });
        // Compositional route (Ochsenschläger-style): never build the
        // concrete composite at all.
        let components: Vec<rl_automata::TransitionSystem> =
            (0..k).map(rl_bench::indexed_server).collect();
        let union_names: Vec<String> = components
            .iter()
            .flat_map(|c| c.alphabet().names())
            .collect();
        let union_ab = rl_automata::Alphabet::new(union_names).expect("distinct names");
        let h_union = Homomorphism::new(&union_ab, h.target(), |n| {
            if keep.iter().any(|v| v == n) {
                Some(n.to_owned())
            } else {
                None
            }
        })
        .expect("same visible names");
        let (_, compositional_ms) = time_ms(|| {
            let abs = rl_abstraction::compositional_abstract_behavior(&components, &h_union)
                .expect("hidden actions are local");
            let verdict =
                is_relative_liveness(&behaviors_of_ts(&abs), &Property::formula(eta.clone()))
                    .expect("abstract check");
            assert!(verdict.holds == concrete.holds || k > 2);
            abs.state_count()
        });
        println!(
            "{:<16} {:>8} {:>10} {:>14.2} {:>14.2} {:>18.2} {:>8.1}x",
            format!("server_farm({k})"),
            ts.state_count(),
            abs_states,
            concrete_ms,
            abstract_ms,
            compositional_ms,
            concrete_ms / compositional_ms
        );
    }
    println!();
}

fn hardness() {
    println!("== E14 — determinization-hardness family (PSPACE shape) ==");
    println!(
        "{:<6} {:>14} {:>16} {:>10}",
        "n", "property-states", "pre-DFA-states", "ms"
    );
    let ab = rl_automata::Alphabet::new(["a", "b"]).expect("two symbols");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let prop = nth_from_end_property(n);
        let system = Buchi::universal(ab.clone());
        let (size, ms) = time_ms(|| {
            let both = system.intersection(&prop).expect("same alphabet").reduce();
            both.prefix_nfa().determinize().state_count()
        });
        println!(
            "{:<6} {:>14} {:>16} {:>10.2}",
            n,
            prop.state_count(),
            size,
            ms
        );
    }
    println!();
}

fn ltl() {
    println!("== LTL → Büchi translation (GPVW) ==");
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "formula family", "size", "aut-states", "ms"
    );
    let ab = rl_automata::Alphabet::new(["a", "b"]).expect("two symbols");
    let lam = Labeling::canonical(&ab);
    for k in [1usize, 2, 3, 4, 5] {
        let f = nested_until(k);
        let (states, ms) = time_ms(|| formula_to_buchi(&f, &lam).state_count());
        println!(
            "{:<22} {:>10} {:>12} {:>10.2}",
            format!("nested_until({k})"),
            f.size(),
            states,
            ms
        );
    }
    for k in [1usize, 2, 3] {
        let f = fairness_chain(k);
        let (states, ms) = time_ms(|| formula_to_buchi(&f, &lam).state_count());
        println!(
            "{:<22} {:>10} {:>12} {:>10.2}",
            format!("fairness_chain({k})"),
            f.size(),
            states,
            ms
        );
    }
    println!();
}

fn fair() {
    println!("== E10 — Theorem 5.1 synthesis + strongly fair execution ==");
    let ts = server_behaviors();
    let p = Property::formula(parse("[]<>result").expect("parses"));
    let imp = synthesize_fair_implementation(&ts, &p).expect("rel-live property");
    let r = run(&imp.system, &mut AgingScheduler::new(), 10_000);
    let result = imp.system.alphabet().symbol("result").expect("interned");
    let count = r.action_counts().get(&result).copied().unwrap_or(0);
    let gap = r
        .max_gap_between_visits(&imp.recurrent)
        .unwrap_or(usize::MAX);
    println!("original states       {:>8}", ts.state_count());
    println!("synthesized states    {:>8}", imp.system.state_count());
    println!("fair-run steps        {:>8}", r.len());
    println!("results produced      {:>8}", count);
    println!("max recurrence gap    {:>8}", gap);
    println!(
        "fairness ratio        {:>8.3}",
        rl_exec::min_fairness_ratio(&imp.system, &r, 10)
    );
    println!();
}

fn prob() {
    println!("== E16 — relative liveness vs probabilistic truth ==");
    println!(
        "{:<28} {:<12} {:>9} {:>12} {:>10}",
        "system", "property", "rel-live", "MC-estimate", "exact-Pr"
    );
    let rows: Vec<(&str, rl_automata::TransitionSystem, &str, Option<&str>)> = {
        let ab = rl_automata::Alphabet::new(["a", "b"]).expect("two symbols");
        let a = ab.symbol("a").expect("interned");
        let b = ab.symbol("b").expect("interned");
        let mut coin = rl_automata::TransitionSystem::new(ab);
        let s = coin.add_state();
        coin.set_initial(s);
        coin.add_transition(s, a, s);
        coin.add_transition(s, b, s);
        vec![
            (
                "server (Fig 2)",
                server_behaviors(),
                "[]<>result",
                Some("result"),
            ),
            (
                "erroneous server (Fig 3)",
                server_err_behaviors(),
                "[]<>result",
                Some("result"),
            ),
            ("coin flips {a,b}^ω", coin.clone(), "<>[]a", None),
            ("coin flips {a,b}^ω", coin, "[]<>a", Some("a")),
        ]
    };
    for (name, ts, text, action) in rows {
        let eta = parse(text).expect("parses");
        let rl = is_relative_liveness(&behaviors_of_ts(&ts), &Property::formula(eta.clone()))
            .expect("checks")
            .holds;
        let lam = Labeling::canonical(ts.alphabet());
        let est = rl_exec::estimate_satisfaction(&ts, &eta, &lam, 2_000, 17);
        let exact = action
            .map(|act| {
                let sym = ts.alphabet().symbol(act).expect("interned");
                format!("{:.2}", rl_exec::probability_of_recurrence(&ts, sym))
            })
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<28} {:<12} {:>9} {:>12.2} {:>10}",
            name, text, rl, est.probability, exact
        );
    }
    println!();
}

/// Today's civil date as `YYYY-MM-DD` (Hinnant's `civil_from_days`, so no
/// calendar dependency is needed).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Which pipeline variant a [`trajectory_case`] runs: worker count plus the
/// lazy-search and filter-ladder toggles (the `--jobs`, `--no-lazy`, and
/// `--no-filters` knobs of the CLI).
#[derive(Clone, Copy)]
struct Pipeline {
    jobs: usize,
    lazy: bool,
    filters: bool,
}

impl Pipeline {
    /// The CLI's defaults at a given worker count: lazy on, filters on.
    fn with_jobs(jobs: usize) -> Self {
        Pipeline {
            jobs,
            lazy: true,
            filters: true,
        }
    }
}

/// One trajectory case: the full `check` pipeline (classical, relative
/// liveness, relative safety) on an example system under a metered guard.
/// With a tracer the registry, pool, and op cache all record timeline
/// events — the counters must come out bit-for-bit identical either way.
fn trajectory_case(
    root: &str,
    file: &str,
    formula: &str,
    budget: Budget,
    pipeline: Pipeline,
    tracer: Option<std::sync::Arc<rl_automata::Tracer>>,
) -> (String, MetricsRegistry) {
    let Pipeline {
        jobs,
        lazy,
        filters,
    } = pipeline;
    let text = std::fs::read_to_string(format!("{root}/examples/systems/{file}"))
        .expect("example system exists");
    let ts = parse_system(&text).expect("example system parses");
    let eta = parse(formula).expect("parses");
    let prop = Property::formula(eta);
    let registry = MetricsRegistry::new();
    registry.note_jobs(jobs);
    if let Some(t) = &tracer {
        registry.set_tracer(std::sync::Arc::clone(t));
    }
    // One memo cache per case, exactly like a default `rlcheck` invocation:
    // the three deciders share intermediate products/determinizations.
    let cache = match &tracer {
        Some(t) => rl_automata::OpCache::with_tracer(std::sync::Arc::clone(t)),
        None => rl_automata::OpCache::new(),
    };
    let mut guard = Guard::new(budget)
        .with_lazy(lazy)
        .with_filters(filters)
        .with_metrics(registry.clone())
        .with_op_cache(cache);
    if jobs >= 2 {
        guard = guard.with_pool(std::sync::Arc::new(rl_automata::Pool::with_tracer(
            jobs,
            tracer.clone(),
        )));
    }
    let verdict = (|| -> Result<bool, CheckError> {
        let _span = guard.span("check");
        let behaviors = behaviors_of_ts_with(&ts, &guard).map_err(CheckError::from)?;
        satisfies_with(&behaviors, &prop, &guard)?;
        let rl = is_relative_liveness_with(&behaviors, &prop, &guard)?;
        is_relative_safety_with(&behaviors, &prop, &guard)?;
        Ok(rl.holds)
    })();
    let outcome = match verdict {
        Ok(true) => "rel-live holds".to_owned(),
        Ok(false) => "rel-live fails".to_owned(),
        Err(CheckError::BudgetExceeded { partial, .. }) => format!(
            "budget exhausted in {}",
            partial.phase.unwrap_or_else(|| "?".to_owned())
        ),
        Err(e) => format!("error: {e}"),
    };
    (outcome, registry)
}

/// The shared case list for `trajectory` and `par`.
fn trajectory_cases() -> [(&'static str, &'static str, Budget); 5] {
    let mut needle_budget = Budget::unlimited();
    needle_budget.max_states = Some(20_000);
    needle_budget.deadline = Some(Duration::from_secs(5));
    [
        ("abp.ts", "[]<>deliver", Budget::unlimited()),
        ("clock.ts", "[]<>tick", Budget::unlimited()),
        ("server.pn", "[]<>result", Budget::unlimited()),
        ("server_err.pn", "[]<>result", Budget::unlimited()),
        ("needle24.ts", "[]<>a", needle_budget),
    ]
}

fn trajectory(out_override: Option<&str>, jobs: usize) {
    println!("== E17 — per-phase observability trajectory (jobs {jobs}) ==");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let cases = trajectory_cases();
    println!(
        "{:<16} {:>10} {:>12} {:>8} {:>10}   outcome",
        "system", "states", "transitions", "phases", "ms"
    );
    let totals = |r: &MetricsRegistry| {
        [
            r.total(Metric::States),
            r.total(Metric::Transitions),
            r.total(Metric::GuardCharges),
            r.total(Metric::CacheHits),
        ]
    };
    let mut rows = Vec::new();
    for (file, formula, budget) in cases {
        let (outcome, registry) = trajectory_case(
            root,
            file,
            formula,
            budget.clone(),
            Pipeline::with_jobs(jobs),
            None,
        );
        // Tracer-overhead guard: the same case with the event tracer
        // attached must charge bit-for-bit the same deterministic counters
        // — tracing is timeline-only by construction, and this is where
        // that invariant is enforced release after release.
        let tracer = std::sync::Arc::new(rl_automata::Tracer::new());
        let (traced_outcome, traced_registry) = trajectory_case(
            root,
            file,
            formula,
            budget,
            Pipeline::with_jobs(jobs),
            Some(std::sync::Arc::clone(&tracer)),
        );
        let trace_counters_equal =
            totals(&registry) == totals(&traced_registry) && outcome == traced_outcome;
        assert!(
            trace_counters_equal,
            "{file}: tracer perturbed the deterministic counters \
             ({:?} untraced vs {:?} traced)",
            totals(&registry),
            totals(&traced_registry)
        );
        let records = registry.records();
        println!(
            "{:<16} {:>10} {:>12} {:>8} {:>10.2}   {}",
            file,
            registry.total(Metric::States),
            registry.total(Metric::Transitions),
            records.len(),
            registry.elapsed().as_secs_f64() * 1_000.0,
            outcome
        );
        rows.push(
            ObjBuilder::new()
                .field("system", file)
                .field("formula", formula)
                .field("outcome", outcome)
                .field("elapsed_us", registry.elapsed().as_micros() as u64)
                .field("states", registry.total(Metric::States))
                .field("transitions", registry.total(Metric::Transitions))
                .field("guard_charges", registry.total(Metric::GuardCharges))
                .field("cache_hits", registry.total(Metric::CacheHits))
                .field(
                    "traced_elapsed_us",
                    traced_registry.elapsed().as_micros() as u64,
                )
                .field("trace_events", tracer.events().len() as u64)
                .field("trace_counters_equal", trace_counters_equal)
                .field(
                    "phases",
                    Json::Arr(records.iter().map(ToJson::to_json).collect()),
                )
                .build(),
        );
    }
    let date = today();
    let doc = ObjBuilder::new()
        .field("schema", "rl-bench-trajectory/v1")
        .field("date", date.as_str())
        .field("jobs", jobs as u64)
        .field("cases", Json::Arr(rows))
        .build();
    let path = match out_override {
        Some(p) => p.to_owned(),
        None => format!("{root}/BENCH_{date}.json"),
    };
    let text = rl_json::to_string_pretty(&doc).expect("trajectory document serializes");
    std::fs::write(&path, text + "\n").expect("output path is writable");
    println!("wrote {path}");
    println!();
}

/// Per-jobs wall-clock comparison: every trajectory case at `--jobs 1` and
/// `--jobs 4`, with a witness that the counters are bit-for-bit equal.
/// Writes `BENCH_<date>-par.json` (schema `rl-bench-par/v1`).
fn par(out_override: Option<&str>) {
    println!("== E18 — parallel kernels: jobs 1 vs jobs 4 ==");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>15}   outcome",
        "system", "jobs1-ms", "jobs4-ms", "speedup", "counters-equal"
    );
    let counters = |r: &MetricsRegistry| {
        [
            r.total(Metric::States),
            r.total(Metric::Transitions),
            r.total(Metric::GuardCharges),
            r.total(Metric::CacheHits),
        ]
    };
    let mut rows = Vec::new();
    for (file, formula, budget) in trajectory_cases() {
        // Median-of-three wall clocks at each worker count, like `time_ms`.
        // The registry's clock is live (now − creation), so the elapsed
        // reading is taken the moment each case returns.
        let timed = |jobs: usize| {
            let mut runs: Vec<(String, MetricsRegistry, u64)> = (0..3)
                .map(|_| {
                    let (outcome, reg) = trajectory_case(
                        root,
                        file,
                        formula,
                        budget.clone(),
                        Pipeline::with_jobs(jobs),
                        None,
                    );
                    let us = reg.elapsed().as_micros() as u64;
                    (outcome, reg, us)
                })
                .collect();
            runs.sort_by_key(|&(_, _, us)| us);
            runs.swap_remove(1)
        };
        let (outcome1, reg1, us1) = timed(1);
        let (outcome4, reg4, us4) = timed(4);
        let equal = counters(&reg1) == counters(&reg4) && outcome1 == outcome4;
        let speedup = us1 as f64 / us4.max(1) as f64;
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>8.2}x {:>15}   {}",
            file,
            us1 as f64 / 1_000.0,
            us4 as f64 / 1_000.0,
            speedup,
            equal,
            outcome1
        );
        assert!(equal, "{file}: parallel counters diverged from sequential");
        rows.push(
            ObjBuilder::new()
                .field("system", file)
                .field("formula", formula)
                .field("outcome", outcome1)
                .field("jobs1_us", us1)
                .field("jobs4_us", us4)
                .field("speedup", speedup)
                .field("counters_equal", equal)
                .field("states", reg1.total(Metric::States))
                .field("transitions", reg1.total(Metric::Transitions))
                .field("guard_charges", reg1.total(Metric::GuardCharges))
                .build(),
        );
    }
    let date = today();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let note = if threads < 4 {
        "recorded on a host with fewer than 4 CPUs; speedups below 1.0 \
         measure coordination overhead, not the kernels' scaling"
    } else {
        "speedup = jobs1_us / jobs4_us (wall clock, median of three)"
    };
    let doc = ObjBuilder::new()
        .field("schema", "rl-bench-par/v1")
        .field("date", date.as_str())
        .field("host_cpus", threads)
        .field("note", note)
        .field("cases", Json::Arr(rows))
        .build();
    let path = match out_override {
        Some(p) => p.to_owned(),
        None => format!("{root}/BENCH_{date}-par.json"),
    };
    let text = rl_json::to_string_pretty(&doc).expect("par document serializes");
    std::fs::write(&path, text + "\n").expect("output path is writable");
    println!("wrote {path}");
    println!();
}

/// Lazy fused pipeline vs the materializing one: every trajectory case run
/// with `Guard::with_lazy(true)` (jobs 1 and 4) and `with_lazy(false)`
/// (jobs 1) side by side. Writes `BENCH_<date>-lazy.json` (schema
/// `rl-bench-lazy/v1`): the deterministic expanded-state delta
/// (`eager_states` vs `lazy_expanded`) and the elapsed delta, with the
/// needle24 case as the headline — eager exhausts its budget in the subset
/// construction, the fused antichain search decides it in a few dozen
/// expansions.
fn lazy_experiment(out_override: Option<&str>) {
    println!("== E19 — lazy fused pipeline vs materializing ==");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10} {:>10}   outcome (lazy | eager)",
        "system", "lazy-ms", "eager-ms", "expanded", "subsumed", "eager-st"
    );
    let counters = |r: &MetricsRegistry| {
        [
            r.total(Metric::States),
            r.total(Metric::Transitions),
            r.total(Metric::GuardCharges),
            r.counter("lazy/expanded").get(),
            r.counter("lazy/subsumed").get(),
        ]
    };
    let mut rows = Vec::new();
    // Filters off throughout: this experiment pins the two *exact*
    // pipelines against each other; the pre-filter ladder would settle
    // most of these inclusions before either one ran (`filters` below
    // measures the ladder itself).
    for (file, formula, budget) in trajectory_cases() {
        let lazy_pipeline = |jobs| Pipeline {
            jobs,
            lazy: true,
            filters: false,
        };
        let (lazy_outcome, lazy_reg) =
            trajectory_case(root, file, formula, budget.clone(), lazy_pipeline(1), None);
        let lazy_us = lazy_reg.elapsed().as_micros() as u64;
        let (lazy4_outcome, lazy4_reg) =
            trajectory_case(root, file, formula, budget.clone(), lazy_pipeline(4), None);
        let lazy4_us = lazy4_reg.elapsed().as_micros() as u64;
        let eager_pipeline = Pipeline {
            jobs: 1,
            lazy: false,
            filters: false,
        };
        let (eager_outcome, eager_reg) =
            trajectory_case(root, file, formula, budget, eager_pipeline, None);
        let eager_us = eager_reg.elapsed().as_micros() as u64;
        // PR-4 discipline carried into the fused search: the lazy counters
        // (including `lazy/expanded` and `lazy/subsumed`) are bit-for-bit
        // identical at any thread count.
        let lazy_counters_equal =
            counters(&lazy_reg) == counters(&lazy4_reg) && lazy_outcome == lazy4_outcome;
        assert!(
            lazy_counters_equal,
            "{file}: lazy counters diverged between jobs 1 and 4 \
             ({:?} vs {:?})",
            counters(&lazy_reg),
            counters(&lazy4_reg)
        );
        let [lazy_states, _, _, expanded, subsumed] = counters(&lazy_reg);
        let eager_states = eager_reg.total(Metric::States);
        // Expanded-state delta: nodes the fused search admitted vs states
        // the materializing pipeline charged before finishing (or before
        // its budget tripped, for needle24).
        let expanded_ratio = eager_states as f64 / expanded.max(1) as f64;
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>10} {:>10} {:>10}   {} | {}",
            file,
            lazy_us as f64 / 1_000.0,
            eager_us as f64 / 1_000.0,
            expanded,
            subsumed,
            eager_states,
            lazy_outcome,
            eager_outcome
        );
        if file == "needle24.ts" {
            // The acceptance headline: the antichain search must beat the
            // subset construction's state count by at least 5x.
            assert!(
                eager_states >= 5 * expanded.max(1),
                "needle24: expanded-state drop below 5x \
                 (eager {eager_states}, lazy expanded {expanded})"
            );
        }
        rows.push(
            ObjBuilder::new()
                .field("system", file)
                .field("formula", formula)
                .field("lazy_outcome", lazy_outcome)
                .field("eager_outcome", eager_outcome)
                .field("lazy_expanded", expanded)
                .field("lazy_subsumed", subsumed)
                .field("lazy_states", lazy_states)
                .field("eager_states", eager_states)
                .field("expanded_ratio", expanded_ratio)
                .field("lazy_jobs1_us", lazy_us)
                .field("lazy_jobs4_us", lazy4_us)
                .field("eager_us", eager_us)
                .field("lazy_counters_equal", lazy_counters_equal)
                .build(),
        );
    }
    let date = today();
    let doc = ObjBuilder::new()
        .field("schema", "rl-bench-lazy/v1")
        .field("date", date.as_str())
        .field(
            "note",
            "expanded_ratio = eager_states / lazy_expanded; needle24 is the \
             headline (eager exhausts its budget in the subset construction)",
        )
        .field("cases", Json::Arr(rows))
        .build();
    let path = match out_override {
        Some(p) => p.to_owned(),
        None => format!("{root}/BENCH_{date}-lazy.json"),
    };
    let text = rl_json::to_string_pretty(&doc).expect("lazy document serializes");
    std::fs::write(&path, text + "\n").expect("output path is writable");
    println!("wrote {path}");
    println!();
}

/// The semidecision pre-filter ladder vs the exact deciders: every
/// trajectory case plus the four shipped `filter_*.ts` instances, each run
/// three ways — filters on (the default), `--no-filters` on the lazy
/// pipeline, and `--no-filters --no-lazy` (the materializing PSPACE core).
/// Writes `BENCH_<date>-filters.json` (schema `rl-bench-filters/v1`): the
/// stage that settled each case, the elapsed deltas, and two hard
/// invariants — a ladder hit leaves zero `lazy/expanded` work behind and
/// beats the materializing core by ≥10x on the windowed instances, while a
/// pure fall-through charges bit-for-bit the `--no-filters` deterministic
/// counters at <5% (or <2ms) wall-clock overhead.
fn filters_experiment(out_override: Option<&str>) {
    println!("== E20 — semidecision pre-filter ladder vs the exact core ==");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    println!(
        "{:<24} {:<8} {:>12} {:>12} {:>12}   outcome",
        "system", "stage", "filtered-ms", "lazy-ms", "eager-ms"
    );
    let counters = |r: &MetricsRegistry| {
        [
            r.total(Metric::States),
            r.total(Metric::Transitions),
            r.total(Metric::GuardCharges),
            r.total(Metric::CacheHits),
        ]
    };
    let mut cases: Vec<(&str, &str, Budget)> = trajectory_cases().to_vec();
    cases.extend([
        ("filter_parikh.ts", "[]<>a", Budget::unlimited()),
        ("filter_mod3.ts", "[]<>a", Budget::unlimited()),
        ("filter_sim.ts", "[]<>ack", Budget::unlimited()),
        ("filter_fallthrough.ts", "[]<>a", Budget::unlimited()),
    ]);
    let mut rows = Vec::new();
    for (file, formula, budget) in cases {
        // Median-of-three wall clocks per configuration, like `time_ms`.
        let timed = |lazy: bool, filters: bool| {
            let mut runs: Vec<(String, MetricsRegistry, u64)> = (0..3)
                .map(|_| {
                    let pipeline = Pipeline {
                        jobs: 1,
                        lazy,
                        filters,
                    };
                    let (outcome, reg) =
                        trajectory_case(root, file, formula, budget.clone(), pipeline, None);
                    let us = reg.elapsed().as_micros() as u64;
                    (outcome, reg, us)
                })
                .collect();
            runs.sort_by_key(|&(_, _, us)| us);
            runs.swap_remove(1)
        };
        let (outcome, reg, us) = timed(true, true);
        let (lazy_outcome, lazy_reg, lazy_us) = timed(true, false);
        let (_eager_outcome, _eager_reg, eager_us) = timed(false, false);
        let hit = reg.counter("filter/hit").get() == 1;
        let stage = if reg.counter("filter/parikh/hit").get() == 1 {
            "parikh"
        } else if reg.counter("filter/modk/hit").get() == 1 {
            "modk"
        } else if reg.counter("filter/sim/hit").get() == 1 {
            "sim"
        } else {
            "none"
        };
        let expanded = reg.counter("lazy/expanded").get();
        // The ladder never changes a verdict, and a hit leaves the exact
        // machinery untouched for the relative-liveness phase.
        assert_eq!(outcome, lazy_outcome, "{file}: filters changed the verdict");
        assert!(
            !hit || expanded == 0,
            "{file}: ladder hit but the fused search still expanded {expanded}"
        );
        // Fall-through must be indistinguishable in the deterministic
        // counters (the kernels only poll the guard) and nearly free:
        // under 5% of the --no-filters wall clock, or under 2ms absolute
        // (the examples are small enough for scheduler jitter to matter).
        let counters_equal = hit || counters(&reg) == counters(&lazy_reg);
        assert!(
            counters_equal,
            "{file}: fall-through diverged from --no-filters counters \
             ({:?} vs {:?})",
            counters(&reg),
            counters(&lazy_reg)
        );
        if !hit {
            let overhead_us = us.saturating_sub(lazy_us);
            assert!(
                us as f64 <= lazy_us as f64 * 1.05 || overhead_us < 2_000,
                "{file}: fall-through overhead {overhead_us}us over {lazy_us}us"
            );
        }
        // The windowed filter instances are the headline: the ladder beats
        // the materializing PSPACE core by at least 10x wall clock.
        if file.starts_with("filter_") && file != "filter_fallthrough.ts" && file != "filter_sim.ts"
        {
            assert!(
                eager_us >= 10 * us.max(1),
                "{file}: ladder speedup below 10x (filtered {us}us, eager {eager_us}us)"
            );
        }
        println!(
            "{:<24} {:<8} {:>12.2} {:>12.2} {:>12.2}   {}",
            file,
            stage,
            us as f64 / 1_000.0,
            lazy_us as f64 / 1_000.0,
            eager_us as f64 / 1_000.0,
            outcome
        );
        rows.push(
            ObjBuilder::new()
                .field("system", file)
                .field("formula", formula)
                .field("outcome", outcome)
                .field("stage", stage)
                .field("filter_hit", hit)
                .field("filtered_states", reg.total(Metric::States))
                .field("filtered_transitions", reg.total(Metric::Transitions))
                .field("lazy_expanded", expanded)
                .field("filtered_us", us)
                .field("nofilter_lazy_us", lazy_us)
                .field("nofilter_eager_us", eager_us)
                .field("filters_agree", counters_equal)
                .build(),
        );
    }
    let date = today();
    let doc = ObjBuilder::new()
        .field("schema", "rl-bench-filters/v1")
        .field("date", date.as_str())
        .field(
            "note",
            "stage = ladder stage that settled the inclusion (none = fall-through \
             to the exact core); filters_agree witnesses verdict agreement and, on \
             fall-through, bit-for-bit deterministic counters vs --no-filters",
        )
        .field("cases", Json::Arr(rows))
        .build();
    let path = match out_override {
        Some(p) => p.to_owned(),
        None => format!("{root}/BENCH_{date}-filters.json"),
    };
    let text = rl_json::to_string_pretty(&doc).expect("filters document serializes");
    std::fs::write(&path, text + "\n").expect("output path is writable");
    println!("wrote {path}");
    println!();
}

/// One percentile-instrumented case: the same pipeline as
/// [`trajectory_case`] with a [`rl_automata::HistogramRegistry`] attached
/// to the guard, the op cache, and (at `jobs >= 2`) the pool, so filter
/// stage latencies, cache probe/lock waits, and steal/park durations all
/// record. Returns the registry totals plus the histogram snapshot.
fn hist_case(
    root: &str,
    file: &str,
    formula: &str,
    budget: Budget,
    jobs: usize,
) -> (
    String,
    MetricsRegistry,
    Vec<(String, rl_automata::HistogramSnapshot)>,
) {
    let text = std::fs::read_to_string(format!("{root}/examples/systems/{file}"))
        .expect("example system exists");
    let ts = parse_system(&text).expect("example system parses");
    let eta = parse(formula).expect("parses");
    let prop = Property::formula(eta);
    let registry = MetricsRegistry::new();
    registry.note_jobs(jobs);
    let hists = rl_automata::HistogramRegistry::new();
    let cache = rl_automata::OpCache::new();
    cache.set_histograms(hists.clone());
    let mut guard = Guard::new(budget)
        .with_lazy(true)
        .with_filters(true)
        .with_metrics(registry.clone())
        .with_histograms(hists.clone())
        .with_op_cache(cache);
    if jobs >= 2 {
        let pool = std::sync::Arc::new(rl_automata::Pool::with_tracer(jobs, None));
        pool.set_histograms(hists.clone());
        guard = guard.with_pool(pool);
    }
    let verdict = (|| -> Result<bool, CheckError> {
        let _span = guard.span("check");
        let behaviors = behaviors_of_ts_with(&ts, &guard).map_err(CheckError::from)?;
        satisfies_with(&behaviors, &prop, &guard)?;
        let rl = is_relative_liveness_with(&behaviors, &prop, &guard)?;
        is_relative_safety_with(&behaviors, &prop, &guard)?;
        Ok(rl.holds)
    })();
    let outcome = match verdict {
        Ok(true) => "rel-live holds".to_owned(),
        Ok(false) => "rel-live fails".to_owned(),
        Err(CheckError::BudgetExceeded { partial, .. }) => format!(
            "budget exhausted in {}",
            partial.phase.unwrap_or_else(|| "?".to_owned())
        ),
        Err(e) => format!("error: {e}"),
    };
    (outcome, registry, hists.snapshot())
}

/// Writes `BENCH_<date>-hist.json` (schema `rl-bench-hist/v1`): every
/// trajectory case run with the percentile histogram registry attached,
/// next to a detached control run. Witness `hist_counters_equal`: recording
/// latency samples must not move any deterministic counter — histograms
/// observe the pipeline, never steer it. Per-family `count`/`p50`/`p90`/
/// `p99`/`max` land in the JSON so `bench_compare` can gate percentile
/// regressions against the committed baseline.
fn hist_experiment(out_override: Option<&str>) {
    println!("== E21 — percentile histograms: attached vs detached ==");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let totals = |r: &MetricsRegistry| {
        [
            r.total(Metric::States),
            r.total(Metric::Transitions),
            r.total(Metric::GuardCharges),
        ]
    };
    println!(
        "{:<16} {:>9} {:>9} {:>10}   busiest family",
        "system", "families", "samples", "ms"
    );
    let mut rows = Vec::new();
    for (file, formula, budget) in trajectory_cases() {
        let (plain_outcome, plain_reg) = trajectory_case(
            root,
            file,
            formula,
            budget.clone(),
            Pipeline::with_jobs(1),
            None,
        );
        let (outcome, reg, hists) = hist_case(root, file, formula, budget, 1);
        let hist_counters_equal = totals(&plain_reg) == totals(&reg) && plain_outcome == outcome;
        assert!(
            hist_counters_equal,
            "{file}: histogram recording perturbed the deterministic counters \
             ({:?} detached vs {:?} attached)",
            totals(&plain_reg),
            totals(&reg)
        );
        let recorded: Vec<_> = hists.iter().filter(|(_, s)| s.count > 0).collect();
        let samples: u64 = recorded.iter().map(|(_, s)| s.count).sum();
        let busiest = recorded.iter().max_by_key(|(_, s)| s.count).map_or_else(
            || "-".to_owned(),
            |(n, s)| format!("{n} (p99 {}µs)", s.p99()),
        );
        println!(
            "{:<16} {:>9} {:>9} {:>10.2}   {}",
            file,
            recorded.len(),
            samples,
            reg.elapsed().as_secs_f64() * 1_000.0,
            busiest
        );
        let families: Vec<Json> = recorded
            .iter()
            .map(|(name, snap)| {
                ObjBuilder::new()
                    .field("name", name.as_str())
                    .field("count", snap.count)
                    .field("p50", snap.p50())
                    .field("p90", snap.p90())
                    .field("p99", snap.p99())
                    .field("max", snap.max)
                    .build()
            })
            .collect();
        rows.push(
            ObjBuilder::new()
                .field("system", file)
                .field("formula", formula)
                .field("outcome", outcome)
                .field("elapsed_us", reg.elapsed().as_micros() as u64)
                .field("states", reg.total(Metric::States))
                .field("transitions", reg.total(Metric::Transitions))
                .field("guard_charges", reg.total(Metric::GuardCharges))
                .field("hist_counters_equal", hist_counters_equal)
                .field("families", Json::Arr(families))
                .build(),
        );
    }
    let date = today();
    let doc = ObjBuilder::new()
        .field("schema", "rl-bench-hist/v1")
        .field("date", date.as_str())
        .field("cases", Json::Arr(rows))
        .build();
    let path = match out_override {
        Some(p) => p.to_owned(),
        None => format!("{root}/BENCH_{date}-hist.json"),
    };
    let text = rl_json::to_string_pretty(&doc).expect("hist document serializes");
    std::fs::write(&path, text + "\n").expect("output path is writable");
    println!("wrote {path}");
    println!();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--out <path>` redirects the trajectory JSON (default:
    // `BENCH_<date>.json` at the repo root).
    let mut out = None;
    while let Some(idx) = args.iter().position(|a| a == "--out") {
        if idx + 1 >= args.len() {
            eprintln!("--out needs a value (output file)");
            std::process::exit(2);
        }
        out = Some(args.remove(idx + 1));
        args.remove(idx);
    }
    // `--jobs N` attaches an N-worker pool to every metered case (0 = one
    // worker per core); counters stay sequential-identical by construction.
    let mut jobs = 1usize;
    while let Some(idx) = args.iter().position(|a| a == "--jobs") {
        if idx + 1 >= args.len() {
            eprintln!("--jobs needs a value (worker count, 0 = auto)");
            std::process::exit(2);
        }
        let raw = args.remove(idx + 1);
        args.remove(idx);
        match raw.parse::<usize>() {
            Ok(n) => jobs = rl_automata::resolve_jobs(Some(n)),
            Err(_) => {
                eprintln!("--jobs: expected a number, got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    let arg = args.first().cloned().unwrap_or_else(|| "all".to_owned());
    match arg.as_str() {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "scaling" => scaling(),
        "payoff" => payoff(),
        "hardness" => hardness(),
        "ltl" => ltl(),
        "fair" => fair(),
        "prob" => prob(),
        "trajectory" => trajectory(out.as_deref(), jobs),
        "par" => par(out.as_deref()),
        "lazy" => lazy_experiment(out.as_deref()),
        "filters" => filters_experiment(out.as_deref()),
        "hist" => hist_experiment(out.as_deref()),
        "all" => {
            fig2();
            fig3();
            fig4();
            scaling();
            payoff();
            hardness();
            ltl();
            fair();
            prob();
            trajectory(out.as_deref(), jobs);
            par(None);
            lazy_experiment(None);
            filters_experiment(None);
            hist_experiment(None);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of \
                 fig2 fig3 fig4 scaling payoff hardness ltl fair prob trajectory par lazy \
                 filters hist all"
            );
            std::process::exit(2);
        }
    }
}
