//! Loom-free concurrency stress harness for the parallel checking stack.
//!
//! Hammers the shared-state pieces introduced for multicore checking —
//! the work-stealing [`Pool`], the sharded [`OpCache`], and the atomic
//! guard core — from many threads at once, and re-asserts the central
//! determinism guarantee (parallel determinization is bit-for-bit the
//! sequential result) across repeated runs. CI runs this binary directly;
//! it exits non-zero on the first violated invariant.
//!
//! ```text
//! cargo run --release -p rl-bench --bin par_stress [-- <rounds>]
//! ```

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rl_automata::{
    Alphabet, Budget, CancelToken, Guard, Metric, MetricsRegistry, Nfa, OpCache, Pool,
};

/// One shared counter bumped by every closure the stress run schedules, so
/// the harness can prove nothing was silently dropped.
static EXECUTED: AtomicUsize = AtomicUsize::new(0);

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|raw| raw.parse().expect("rounds must be a number"))
        .unwrap_or(8);

    // The panic-isolation stress panics on purpose; keep the expected ones
    // out of CI logs while still reporting real failures.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("deliberate stress panic"));
        if !expected {
            default_hook(info);
        }
    }));

    for round in 0..rounds {
        stress_pool_map(round);
        stress_pool_panic_isolation();
        stress_op_cache(round);
        stress_guard_charges();
        stress_cancellation_under_load();
        stress_parallel_determinize_determinism(round);
    }
    println!("par_stress: {rounds} rounds clean");
}

/// `map_indexed` must return every slot, in order, under heavy stealing.
fn stress_pool_map(round: usize) {
    let pool = Pool::new(4);
    let n = 2048 + round; // odd sizes exercise the last ragged chunk
    let out = pool.map_indexed(
        n,
        Arc::new(|i: usize| {
            EXECUTED.fetch_add(1, Ordering::Relaxed);
            i * 3 + 1
        }),
    );
    assert_eq!(out.len(), n, "map_indexed dropped slots");
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i * 3 + 1, "slot {i} holds another index's result");
    }
}

/// A panicking job must not poison the pool or take sibling jobs with it.
fn stress_pool_panic_isolation() {
    let pool = Pool::new(3);
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
        .map(|i| {
            Box::new(move || {
                if i == 17 {
                    panic!("deliberate stress panic");
                }
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let results = pool.run_jobs(jobs);
    assert_eq!(results.len(), 64);
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => assert_eq!(v, i),
            Err(_) => assert_eq!(i, 17, "only job 17 panics"),
        }
    }
    // The pool is still usable after the panic.
    let echo = pool.map_indexed(32, Arc::new(|i: usize| i));
    assert_eq!(echo, (0..32).collect::<Vec<_>>());
}

/// Concurrent `get_or_insert_with` on colliding keys must build each entry's
/// value once per (key, op) from some thread and hand every caller the same
/// `Arc`; interned operands must dedupe across threads.
fn stress_op_cache(round: usize) {
    let cache = OpCache::new();
    let pool = Pool::new(4);
    let keys = 97usize; // prime, so shard selection gets a ragged spread
    let arcs = pool.map_indexed(
        1024,
        Arc::new({
            let cache = cache.clone();
            move |i: usize| {
                let key = ((i % keys) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let built: Result<(Arc<Vec<usize>>, bool), std::convert::Infallible> = cache
                    .get_or_insert_with(
                        "stress",
                        key,
                        |v: &Vec<usize>| v[0] == i % keys,
                        || Ok(vec![i % keys, round]),
                    );
                let (arc, _hit) = built.expect("infallible build");
                assert_eq!(arc[0], i % keys, "wrong entry for key");
                Arc::as_ptr(&arc) as usize
            }
        }),
    );
    // Every caller that hit the same key observed the same allocation.
    let mut by_key: Vec<Option<usize>> = vec![None; keys];
    for (i, ptr) in arcs.iter().enumerate() {
        let slot = &mut by_key[i % keys];
        match slot {
            None => *slot = Some(*ptr),
            Some(seen) => assert_eq!(seen, ptr, "two Arcs for one cache key"),
        }
    }
    assert_eq!(cache.len(), keys, "one entry per distinct key");
    assert_eq!(cache.hits() + cache.misses(), 1024);

    let a = cache.intern_operand(42, &"operand".to_string());
    let b = cache.intern_operand(42, &"operand".to_string());
    assert!(Arc::ptr_eq(&a, &b), "operands interned to one Arc");
}

/// Probes cloned from one guard share the same atomic core: concurrent
/// frontier notes may interleave, but deadline/cancel checks must agree.
fn stress_guard_charges() {
    let guard = Guard::new(Budget::default());
    let probe = guard.probe();
    let pool = Pool::new(4);
    let oks = pool.map_indexed(
        512,
        Arc::new({
            let probe = probe.clone();
            move |_i: usize| probe.check().is_ok()
        }),
    );
    assert!(oks.into_iter().all(|ok| ok), "unarmed probe never trips");
}

/// One cancel token stops every worker: after cancellation no probe
/// succeeds, from any thread.
fn stress_cancellation_under_load() {
    let token = CancelToken::new();
    let guard = Guard::with_cancel(Budget::default(), token.clone());
    let probe = guard.probe();
    token.cancel();
    let pool = Pool::new(4);
    let tripped = pool.map_indexed(
        256,
        Arc::new({
            let probe = probe.clone();
            move |_i: usize| probe.check().is_err()
        }),
    );
    assert!(
        tripped.into_iter().all(|t| t),
        "cancel visible on all threads"
    );
    assert!(
        guard.check_now().is_err(),
        "owner sees the cancellation too"
    );
}

/// The flagship guarantee, re-checked under scheduling noise: parallel
/// determinization of the n-th-from-the-end family is structurally equal to
/// the sequential result with identical counter totals.
fn stress_parallel_determinize_determinism(round: usize) {
    let n = 9 + round % 3; // 2^n subset states, enough to split into layers
    let nfa = nth_from_end_nfa(n);

    let seq_guard = Guard::new(Budget::default()).with_metrics(MetricsRegistry::new());
    let seq = nfa
        .determinize_with(&seq_guard)
        .expect("sequential determinize");

    let par_guard = Guard::new(Budget::default())
        .with_metrics(MetricsRegistry::new())
        .with_pool(Arc::new(Pool::new(4)));
    let par = nfa
        .determinize_with(&par_guard)
        .expect("parallel determinize");

    assert_eq!(seq, par, "parallel Dfa differs from sequential");
    let totals = |g: &Guard| {
        let m = g.metrics().expect("metrics attached");
        (
            m.total(Metric::States),
            m.total(Metric::Transitions),
            m.total(Metric::GuardCharges),
        )
    };
    assert_eq!(
        totals(&seq_guard),
        totals(&par_guard),
        "counter totals differ"
    );
}

/// The "n-th symbol from the end is an `a`" NFA — `n + 1` states blowing up
/// to `2^n` subset states, the canonical determinization stressor.
fn nth_from_end_nfa(n: usize) -> Nfa {
    let ab = Alphabet::new(["a", "b"]).expect("two symbols");
    let a = ab.symbol("a").expect("interned");
    let b = ab.symbol("b").expect("interned");
    let mut nfa = Nfa::new(ab);
    let q0 = nfa.add_state(false);
    nfa.set_initial(q0);
    nfa.add_transition(q0, a, q0);
    nfa.add_transition(q0, b, q0);
    let mut prev = q0;
    for i in 0..n {
        let q = nfa.add_state(i == n - 1);
        if prev == q0 {
            nfa.add_transition(q0, a, q);
        } else {
            nfa.add_transition(prev, a, q);
            nfa.add_transition(prev, b, q);
        }
        prev = q;
    }
    nfa
}
