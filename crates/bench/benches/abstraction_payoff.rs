//! E13 — the practical payoff of Corollary 8.4: verifying on the
//! abstraction (+ simplicity check) versus verifying the transported
//! property on the concrete system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_abstraction::{
    abstract_behavior, check_simplicity, compositional_abstract_behavior, Homomorphism,
};
use rl_bench::{farm_observables, server_farm};
use rl_buchi::behaviors_of_ts;
use rl_core::{check_transported_concrete, is_relative_liveness, Property};
use rl_logic::parse;

fn bench_payoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("abstraction_payoff");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1usize, 2] {
        let ts = server_farm(k);
        let keep = farm_observables(k);
        let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
        let h = Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied())
            .expect("observables exist");
        let eta = parse("[]<>result0").expect("parses");

        group.bench_with_input(
            BenchmarkId::new("concrete", ts.state_count()),
            &k,
            |b, _| {
                b.iter(|| {
                    let v = check_transported_concrete(&ts, &h, &eta).expect("checks");
                    assert!(v.holds);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("abstract+simplicity", ts.state_count()),
            &k,
            |b, _| {
                b.iter(|| {
                    let abs = abstract_behavior(&h, &ts);
                    let simple = check_simplicity(&h, &ts.to_nfa())
                        .expect("simplicity")
                        .simple;
                    let verdict = is_relative_liveness(
                        &behaviors_of_ts(&abs),
                        &Property::formula(eta.clone()),
                    )
                    .expect("checks");
                    assert!(simple && verdict.holds);
                })
            },
        );
        // The compositional route never builds the concrete composite.
        let components: Vec<rl_automata::TransitionSystem> =
            (0..k).map(rl_bench::indexed_server).collect();
        let union_names: Vec<String> = components
            .iter()
            .flat_map(|c| c.alphabet().names())
            .collect();
        let union_ab = rl_automata::Alphabet::new(union_names).expect("distinct names");
        let h_union = Homomorphism::new(&union_ab, h.target(), |n| {
            if keep.iter().any(|v| v == n) {
                Some(n.to_owned())
            } else {
                None
            }
        })
        .expect("matching names");
        group.bench_with_input(
            BenchmarkId::new("compositional", ts.state_count()),
            &k,
            |b, _| {
                b.iter(|| {
                    let abs = compositional_abstract_behavior(&components, &h_union)
                        .expect("hidden actions are local");
                    let verdict = is_relative_liveness(
                        &behaviors_of_ts(&abs),
                        &Property::formula(eta.clone()),
                    )
                    .expect("checks");
                    assert!(verdict.holds);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_payoff);
criterion_main!(benches);
