//! E8 — scaling of the relative-liveness decision procedure (Theorem 4.5)
//! across structured system families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_bench::{server_farm, token_ring};
use rl_buchi::behaviors_of_ts;
use rl_core::{is_relative_liveness, Property};
use rl_logic::parse;

fn bench_token_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("relative_liveness/token_ring");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [4usize, 8, 16, 32, 64] {
        let ts = token_ring(n);
        let behaviors = behaviors_of_ts(&ts);
        let p = Property::formula(parse("[]<>pass0").expect("parses"));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let v = is_relative_liveness(&behaviors, &p).expect("checks");
                assert!(v.holds);
            })
        });
    }
    group.finish();
}

fn bench_server_farm(c: &mut Criterion) {
    let mut group = c.benchmark_group("relative_liveness/server_farm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1usize, 2] {
        let ts = server_farm(k);
        let behaviors = behaviors_of_ts(&ts);
        let p = Property::formula(parse("[]<>result0").expect("parses"));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let v = is_relative_liveness(&behaviors, &p).expect("checks");
                assert!(v.holds);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_token_ring, bench_server_farm);
criterion_main!(benches);
