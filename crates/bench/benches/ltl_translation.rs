//! GPVW translation cost as the formula grows — the formula-size dimension
//! of the Theorem 4.5 decision procedures (which translate the property,
//! or its negation, before any automaton work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_automata::Alphabet;
use rl_bench::{fairness_chain, nested_until};
use rl_logic::{formula_to_buchi, r_bar_strict, Labeling};

fn bench_nested_until(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl/nested_until");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ab = Alphabet::new(["a", "b"]).expect("two symbols");
    let lam = Labeling::canonical(&ab);
    for k in [1usize, 2, 3, 4, 5, 6] {
        let f = nested_until(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let aut = formula_to_buchi(&f, &lam);
                assert!(aut.state_count() >= 1);
            })
        });
    }
    group.finish();
}

fn bench_fairness_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl/fairness_chain");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ab = Alphabet::new(["a", "b"]).expect("two symbols");
    let lam = Labeling::canonical(&ab);
    for k in [1usize, 2, 3] {
        let f = fairness_chain(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let aut = formula_to_buchi(&f, &lam);
                assert!(aut.state_count() >= 1);
            })
        });
    }
    group.finish();
}

fn bench_r_bar_blowup(c: &mut Criterion) {
    // The transported R̄(η) formulas are larger; measure their translation
    // under the homomorphism labeling (the concrete side of Corollary 8.4).
    let mut group = c.benchmark_group("ltl/r_bar_transport");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let sigma = Alphabet::new(["a", "b", "tau"]).expect("three symbols");
    let sigma_prime = Alphabet::new(["a", "b"]).expect("two symbols");
    let lam = Labeling::from_fn(&sigma, |s| {
        let name = sigma.name(s);
        if name == "tau" {
            vec![rl_logic::EPSILON_PROP.to_owned()]
        } else {
            vec![name.to_owned()]
        }
    })
    .expect("labeling");
    for k in [1usize, 2, 3] {
        let f = nested_until(k);
        let transported = r_bar_strict(&f, &sigma_prime).expect("sigma-normal");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let aut = formula_to_buchi(&transported, &lam);
                assert!(aut.state_count() >= 1);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nested_until,
    bench_fairness_chain,
    bench_r_bar_blowup
);
criterion_main!(benches);
