//! E14 — the determinization-hardness family: the exponential worst case
//! that the PSPACE-completeness of Theorem 4.5 predicts for the prefix
//! analysis at the heart of the relative-liveness decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_automata::Alphabet;
use rl_bench::nth_from_end_property;
use rl_buchi::Buchi;

fn bench_hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness/nth_from_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ab = Alphabet::new(["a", "b"]).expect("two symbols");
    for n in [2usize, 4, 6, 8, 10] {
        let prop = nth_from_end_property(n);
        let system = Buchi::universal(ab.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let both = system.intersection(&prop).expect("same alphabet").reduce();
                let size = both.prefix_nfa().determinize().state_count();
                assert!(size >= 1 << n.min(16), "expected ≥ 2^{n} subsets");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hardness);
criterion_main!(benches);
