//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * formula-negation vs rank-based complementation when deciding relative
//!   safety for a property available both ways,
//! * reduction before vs after the product in the relative-liveness check,
//! * the cost of the simplicity check relative to the abstract model check
//!   it guards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_abstraction::{abstract_behavior, check_simplicity, Homomorphism};
use rl_bench::{server_farm, token_ring};
use rl_buchi::{behaviors_of_ts, complement, Buchi};
use rl_core::{is_relative_liveness, is_relative_safety, Property};
use rl_logic::{formula_to_buchi, parse, Labeling};

/// Relative safety of the same property, given as a formula (negation is a
/// formula negation) vs as an automaton (negation is rank-based Büchi
/// complementation).
fn bench_negation_vs_complementation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/safety_negation_route");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ts = token_ring(4);
    let behaviors = behaviors_of_ts(&ts);
    let eta = parse("[]<>pass0").expect("parses");
    let lam = Labeling::canonical(ts.alphabet());
    let aut: Buchi = formula_to_buchi(&eta, &lam);

    group.bench_function("formula_negation", |b| {
        let p = Property::formula(eta.clone());
        b.iter(|| {
            let _ = is_relative_safety(&behaviors, &p).expect("checks");
        })
    });
    group.bench_function("rank_based_complement", |b| {
        let p = Property::automaton(aut.clone());
        b.iter(|| {
            let _ = is_relative_safety(&behaviors, &p).expect("checks");
        })
    });
    group.finish();
}

/// The prefix-language route relies on `reduce()`; quantify its cost and
/// the cost of skipping it (trimming inside determinization instead).
fn bench_reduce_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reduce");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16usize, 64] {
        let behaviors = behaviors_of_ts(&token_ring(n));
        let eta = parse("[]<>pass0").expect("parses");
        let lam = Labeling::canonical(behaviors.alphabet());
        let p = formula_to_buchi(&eta, &lam);
        group.bench_with_input(BenchmarkId::new("with_reduce", n), &n, |b, _| {
            b.iter(|| {
                let both = behaviors.intersection(&p).expect("alphabets");
                let reduced = both.reduce();
                let _ = reduced.prefix_nfa().determinize().state_count();
            })
        });
        group.bench_with_input(BenchmarkId::new("reduce_inside_prefix", n), &n, |b, _| {
            b.iter(|| {
                let both = behaviors.intersection(&p).expect("alphabets");
                // prefix_nfa() already reduces internally; measuring the
                // single-pass variant.
                let _ = both.prefix_nfa().determinize().state_count();
            })
        });
    }
    group.finish();
}

/// How much of the abstract route is spent on the simplicity guard?
fn bench_simplicity_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/simplicity_share");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ts = server_farm(2);
    let keep: Vec<String> = rl_bench::farm_observables(2);
    let keep_refs: Vec<&str> = keep.iter().map(String::as_str).collect();
    let h =
        Homomorphism::hiding(ts.alphabet(), keep_refs.iter().copied()).expect("observables exist");
    let eta = parse("[]<>result0").expect("parses");

    group.bench_function("abstract_check_only", |b| {
        b.iter(|| {
            let abs = abstract_behavior(&h, &ts);
            let v = is_relative_liveness(&behaviors_of_ts(&abs), &Property::formula(eta.clone()))
                .expect("checks");
            assert!(v.holds);
        })
    });
    group.bench_function("simplicity_only", |b| {
        b.iter(|| {
            let r = check_simplicity(&h, &ts.to_nfa()).expect("simplicity");
            assert!(r.simple);
        })
    });
    group.finish();
}

/// Rank-based complementation growth (the reason formula properties negate
/// at the formula level).
fn bench_complement_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/complement_growth");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ab = rl_automata::Alphabet::new(["a", "b"]).expect("two symbols");
    let lam = Labeling::canonical(&ab);
    for text in ["[]<>a", "a U b"] {
        let aut = formula_to_buchi(&parse(text).expect("parses"), &lam);
        group.bench_with_input(
            BenchmarkId::new("rank_complement", format!("{text}:{}", aut.state_count())),
            &aut,
            |b, aut| {
                b.iter(|| {
                    let comp = complement(aut);
                    assert!(comp.state_count() >= 1);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("formula_negation", text),
            &text,
            |b, text| {
                b.iter(|| {
                    let neg = parse(text).expect("parses").not();
                    let aut = formula_to_buchi(&neg, &lam);
                    assert!(aut.state_count() >= 1);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_negation_vs_complementation,
    bench_reduce_cost,
    bench_simplicity_share,
    bench_complement_growth
);
criterion_main!(benches);
