//! Core ω-automata operations: product, emptiness, reduction, rank-based
//! complementation — the building blocks of every Theorem 4.5 decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_bench::{random_system, token_ring};
use rl_buchi::{behaviors_of_ts, complement, Buchi};

fn bench_product_emptiness(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/product_emptiness");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [8usize, 16, 32, 64] {
        let x = behaviors_of_ts(&random_system(1, n, 3, 0.25));
        let y = behaviors_of_ts(&random_system(2, n, 3, 0.25));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let prod = x.intersection(&y).expect("same alphabet");
                let _ = prod.is_empty_language();
            })
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("buchi/reduce");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for n in [16usize, 64, 256] {
        let ts = token_ring(n.max(2));
        let m = behaviors_of_ts(&ts);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = m.reduce();
                assert!(r.state_count() > 0);
            })
        });
    }
    group.finish();
}

fn bench_complement(c: &mut Criterion) {
    // Rank-based complementation is exponential: tiny inputs only.
    let mut group = c.benchmark_group("buchi/complement");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let ab = rl_automata::Alphabet::new(["a", "b"]).expect("two symbols");
    let a = ab.symbol("a").expect("interned");
    let b_sym = ab.symbol("b").expect("interned");
    for n in [1usize, 2, 3] {
        // "states 0..n in a cycle on a, accepting at 0; b resets" — a small
        // structured family.
        let mut m = Buchi::new(ab.clone());
        for i in 0..n {
            m.add_state(i == 0);
        }
        m.set_initial(0);
        for i in 0..n {
            m.add_transition(i, a, (i + 1) % n);
            m.add_transition(i, b_sym, 0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                let comp = complement(&m);
                assert!(comp.state_count() >= 1);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_product_emptiness,
    bench_reduce,
    bench_complement
);
criterion_main!(benches);
