//! Differential tests pinning the lazy fused pipeline to the materializing
//! one: on the shipped trajectory fixtures and on random machines, the
//! verdicts of `satisfies`/`is_relative_liveness`/`is_relative_safety`
//! must be identical with `Guard::with_lazy(true)` (the default) and
//! `with_lazy(false)` (the CLI's `--no-lazy`), at jobs 1 and 4, with and
//! without the op cache — and every witness either path produces must be
//! *semantically valid* (witnesses may differ in tie-break between the
//! search orders, so validity, not equality, is what is pinned).

use std::sync::Arc;

use proptest::prelude::*;
use relative_liveness::format::parse_system;
use rl_automata::{
    dfa_included, nfa_included_lazy, Alphabet, Guard, Metric, MetricsRegistry, Nfa, OpCache, Pool,
    Symbol, TransitionSystem, Word,
};
use rl_bench::random_system;
use rl_buchi::{behaviors_of_ts_with, UpWord};
use rl_core::{is_relative_liveness_with, is_relative_safety_with, satisfies_with, Property};
use rl_logic::parse;

const SIGMA2: [&str; 2] = ["a", "b"];

fn alphabet2() -> Alphabet {
    Alphabet::new(SIGMA2).expect("valid alphabet")
}

/// Random NFA over {a, b} with exactly `n` states (the `bitset_equiv`
/// generator).
fn nfa_strategy(n: usize) -> impl Strategy<Value = Nfa> {
    let transitions = proptest::collection::vec((0..n, 0..2usize, 0..n), 0..=(3 * n));
    let accepting = proptest::collection::vec(0..n, 0..=n);
    let initial = proptest::collection::vec(0..n, 1..=2);
    (transitions, accepting, initial).prop_map(move |(ts, acc, init)| {
        Nfa::from_parts(
            alphabet2(),
            n,
            init,
            acc,
            ts.into_iter()
                .map(|(p, s, q)| (p, Symbol::from_index(s), q)),
        )
        .expect("indices in range")
    })
}

proptest! {
    /// The fused antichain search decides exactly the inclusion the
    /// materializing path (determinize both, difference, shortest accepted
    /// word) decides, and its witnesses are shortest words of the
    /// difference language.
    #[test]
    fn lazy_inclusion_agrees_with_eager(a in nfa_strategy(5), b in nfa_strategy(5)) {
        let guard = Guard::unlimited();
        let lazy = nfa_included_lazy(&a, &b, &guard).expect("unlimited guard");
        let eager = dfa_included(&a.determinize(), &b.determinize());
        match (&lazy, &eager) {
            (None, None) => {}
            (Some(lw), Some(ew)) => {
                // Same verdict; witnesses are both shortest, so same length.
                prop_assert_eq!(lw.len(), ew.len());
                prop_assert!(a.accepts(lw), "lazy witness not in L(a): {:?}", lw);
                prop_assert!(!b.accepts(lw), "lazy witness in L(b): {:?}", lw);
            }
            _ => prop_assert!(false, "verdicts differ: lazy {:?}, eager {:?}", lazy, eager),
        }
    }
}

/// One full check (behaviors → classical → rel-live → rel-safe) of a
/// formula against a transition system under a configured guard.
struct Run {
    sat: bool,
    live: bool,
    safe: bool,
    counterexample: Option<UpWord>,
    doomed: Option<Word>,
    escape: Option<UpWord>,
    /// Deterministic totals: (states, transitions, guard charges,
    /// lazy/expanded, lazy/subsumed).
    counters: (u64, u64, u64, u64, u64),
}

fn run_check(ts: &TransitionSystem, formula: &str, lazy: bool, jobs: usize, cache: bool) -> Run {
    let prop = Property::formula(parse(formula).expect("formula parses"));
    let reg = MetricsRegistry::new();
    // Filters off: this suite pins the *exact* pipelines against each
    // other, so the pre-filter ladder must not settle the inclusion first
    // (`filter_equiv` in rl-core pins the ladder itself).
    let mut guard = Guard::unlimited()
        .with_lazy(lazy)
        .with_filters(false)
        .with_metrics(reg.clone());
    if cache {
        guard = guard.with_op_cache(OpCache::new());
    }
    if jobs >= 2 {
        guard = guard.with_pool(Arc::new(Pool::new(jobs)));
    }
    let behaviors = behaviors_of_ts_with(ts, &guard).expect("behaviors");
    let sat = satisfies_with(&behaviors, &prop, &guard).expect("satisfies");
    let live = is_relative_liveness_with(&behaviors, &prop, &guard).expect("rel-live");
    let safe = is_relative_safety_with(&behaviors, &prop, &guard).expect("rel-safe");
    Run {
        sat: sat.holds,
        live: live.holds,
        safe: safe.holds,
        counterexample: sat.counterexample,
        doomed: live.doomed_prefix,
        escape: safe.escaping_behavior,
        counters: (
            reg.total(Metric::States),
            reg.total(Metric::Transitions),
            reg.total(Metric::GuardCharges),
            reg.counter("lazy/expanded").get(),
            reg.counter("lazy/subsumed").get(),
        ),
    }
}

/// Semantic validity of the witnesses a run produced, against the system's
/// behaviors and the property — independent of which pipeline found them.
fn assert_witnesses_valid(ts: &TransitionSystem, formula: &str, run: &Run) {
    let prop = Property::formula(parse(formula).expect("formula parses"));
    let guard = Guard::unlimited();
    let behaviors = behaviors_of_ts_with(ts, &guard).expect("behaviors");
    let p = prop
        .to_buchi(behaviors.alphabet())
        .expect("property to Büchi");
    if let Some(x) = &run.counterexample {
        assert!(behaviors.accepts_upword(x), "counterexample not a behavior");
        assert!(!p.accepts_upword(x), "counterexample satisfies P");
    }
    if let Some(w) = &run.doomed {
        // Lemma 4.3: w ∈ pre(L_ω) but w ∉ pre(L_ω ∩ P).
        let both = behaviors.intersection(&p).expect("intersection");
        assert!(
            behaviors.prefix_nfa().accepts(w),
            "doomed prefix not a prefix of any behavior: {w:?}"
        );
        assert!(
            !both.prefix_nfa().accepts(w),
            "doomed prefix extends into P: {w:?}"
        );
    }
    if let Some(x) = &run.escape {
        assert!(behaviors.accepts_upword(x), "escape not a behavior");
        assert!(!p.accepts_upword(x), "escape satisfies P");
    }
}

/// Compares a lazy run against the eager reference: the three verdict bits
/// must agree, and both runs' witnesses must be valid.
fn assert_equivalent(ts: &TransitionSystem, formula: &str, lazy: &Run, eager: &Run) {
    assert_eq!(lazy.sat, eager.sat, "classical verdict differs ({formula})");
    assert_eq!(
        lazy.live, eager.live,
        "rel-live verdict differs ({formula})"
    );
    assert_eq!(
        lazy.safe, eager.safe,
        "rel-safe verdict differs ({formula})"
    );
    assert_witnesses_valid(ts, formula, lazy);
    assert_witnesses_valid(ts, formula, eager);
}

fn fixture(file: &str) -> TransitionSystem {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text =
        std::fs::read_to_string(format!("{root}/examples/systems/{file}")).expect("fixture reads");
    parse_system(&text).expect("fixture parses")
}

/// The shipped trajectory fixtures (minus needle24, whose eager run is the
/// point of the lazy pipeline — it gets its own test below).
const FIXTURES: [(&str, &str); 4] = [
    ("abp.ts", "[]<>deliver"),
    ("clock.ts", "[]<>tick"),
    ("server.pn", "[]<>result"),
    ("server_err.pn", "[]<>result"),
];

#[test]
fn trajectory_fixtures_agree_across_pipelines() {
    for (file, formula) in FIXTURES {
        let ts = fixture(file);
        let eager = run_check(&ts, formula, false, 1, true);
        for jobs in [1, 4] {
            for cache in [true, false] {
                let lazy = run_check(&ts, formula, true, jobs, cache);
                assert_equivalent(&ts, formula, &lazy, &eager);
            }
        }
    }
}

#[test]
fn lazy_counters_are_thread_count_independent() {
    // PR-4 discipline, extended to the fused search: states, transitions,
    // guard charges, and the lazy/* counters are bit-for-bit identical at
    // any thread count (the needle fixture drives frontier widths past the
    // parallel threshold).
    for (file, formula) in [("abp.ts", "[]<>deliver"), ("needle24.ts", "[]<>a")] {
        let ts = fixture(file);
        let j1 = run_check(&ts, formula, true, 1, true);
        let j4 = run_check(&ts, formula, true, 4, true);
        assert_eq!(j1.counters, j4.counters, "{file}");
        assert_eq!(j1.sat, j4.sat);
        assert_eq!(j1.live, j4.live);
        assert_eq!(j1.safe, j4.safe);
        assert_eq!(j1.doomed, j4.doomed, "lazy witness must be deterministic");
        assert_eq!(j1.escape, j4.escape);
    }
}

#[test]
fn needle24_is_feasible_only_lazily() {
    // The subset construction the eager path cannot avoid needs 2^24
    // states on this fixture; the fused search with retro-pruned antichain
    // subsumption decides it in a few dozen expansions.
    let ts = fixture("needle24.ts");
    let lazy = run_check(&ts, "[]<>a", true, 1, true);
    assert!(lazy.live, "needle24 is relative-live for []<>a");
    assert!(!lazy.sat && !lazy.safe);
    assert_witnesses_valid(&ts, "[]<>a", &lazy);
    let (_, _, _, expanded, subsumed) = lazy.counters;
    assert!(
        expanded < 1000,
        "antichain search must stay tiny, expanded {expanded}"
    );
    assert!(subsumed > 0, "subsumption must fire, subsumed {subsumed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random systems: the full three-decider pipeline agrees between the
    /// lazy and materializing paths, and witnesses stay valid.
    #[test]
    fn random_systems_agree_across_pipelines(
        seed in 0u64..10_000,
        n in 2usize..7,
        density in proptest::sample::select(&[0.2f64, 0.4, 0.7][..]),
        formula in proptest::sample::select(&["[]<>t0", "<>t1", "[]t0", "[]<>t1"][..]),
    ) {
        let ts = random_system(seed, n, 2, density);
        let lazy = run_check(&ts, formula, true, 1, true);
        let eager = run_check(&ts, formula, false, 1, false);
        assert_equivalent(&ts, formula, &lazy, &eager);
        // The pool changes nothing at all; dropping the op cache changes
        // neither verdicts nor witnesses (only the cache-hit accounting).
        let lazy4 = run_check(&ts, formula, true, 4, true);
        prop_assert_eq!(lazy.live, lazy4.live);
        prop_assert_eq!(&lazy.doomed, &lazy4.doomed);
        prop_assert_eq!(lazy.counters, lazy4.counters);
        let uncached = run_check(&ts, formula, true, 1, false);
        prop_assert_eq!(lazy.live, uncached.live);
        prop_assert_eq!(&lazy.doomed, &uncached.doomed);
        prop_assert_eq!(&lazy.escape, &uncached.escape);
    }
}
