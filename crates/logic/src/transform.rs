//! The property transformations of Section 7: Σ-normal form, the `T`
//! mapping of Definition 7.4 (the paper's Figure 5) and its extension `R̄`.
//!
//! # Reconstruction note
//!
//! The PODC '97 extended abstract presents `T` as a table (Figure 5, an
//! image in our source) and states its defining properties in prose and in
//! the proofs of Lemma 7.5 and Theorems 8.2/8.3. We reconstruct the mapping
//! from those requirements:
//!
//! 1. **Alignment** (used by Lemma 7.5): for every `x ∈ Σ^ω` with `h(x)`
//!    defined, `x, λ_hΣΣ' ⊨ R̄(η)  ⇔  h(x), λ_Σ' ⊨ η`. Positions of `x` whose
//!    letter is hidden (`h(a) = ε`, i.e. the proposition [`EPSILON_PROP`]
//!    holds) must be "skipped" when interpreting `η`.
//! 2. **Vacuity on invisible tails** (used in the proof of Theorem 8.3): on
//!    any suffix consisting only of hidden letters, `R̄(η)` must hold for
//!    *every* `η` — a system that has gone permanently silent can no longer
//!    be blamed at the abstract level.
//!
//! The mapping below satisfies both (see the crate's tests, which verify
//! Lemma 7.5 exhaustively on lasso words):
//!
//! ```text
//! T(ξ b̂ ζ)   = T(ξ) b̂ T(ζ)          for boolean connectives b̂ ∈ {∧, ∨}
//! T(O ξ)     = (ε U (¬ε ∧ O T(ξ))) ∨ □ε
//! T(ξ U ζ)   = T(ξ) U T(ζ)
//! T(ξ R ζ)   = T(ξ) R T(ζ)
//! T(literal) = literal
//! R̄(η)       = T(η) with every maximal purely boolean subformula ξ_b
//!              replaced by (ε U (ξ_b ∧ ¬ε)) ∨ □ε
//! ```
//!
//! The `∨ □ε` disjuncts and the `∧ ¬ε` guard are exactly what requirements
//! (1) and (2) force; the abstract's inline text abbreviates the wrapper to
//! `(ε)U(ξ_b)`, which is the same thing on words where `h` is defined and
//! all atoms are positive.

use rl_automata::{Alphabet, AutomataError};

use crate::ast::Formula;
use crate::labeling::EPSILON_PROP;

/// Converts to *Σ-normal form* (Definition 7.2): positive normal form with
/// all atoms drawn from the alphabet `Σ`.
///
/// # Errors
///
/// Returns [`AutomataError::UnknownSymbol`] when an atom is not a symbol
/// name of `sigma`.
pub fn to_sigma_normal_form(f: &Formula, sigma: &Alphabet) -> Result<Formula, AutomataError> {
    let p = f.to_pnf();
    for atom in p.atoms() {
        if sigma.symbol(&atom).is_none() {
            return Err(AutomataError::UnknownSymbol(atom));
        }
    }
    Ok(p)
}

/// Whether `f` is in Σ-normal form for `sigma`.
pub fn is_sigma_normal_form(f: &Formula, sigma: &Alphabet) -> bool {
    f.is_pnf() && f.atoms().iter().all(|a| sigma.symbol(a).is_some())
}

/// The ε atom (`h(a) = ε`, i.e. the current action is hidden).
fn eps() -> Formula {
    Formula::atom(EPSILON_PROP)
}

/// `(ε U (φ ∧ ¬ε)) ∨ □ε` — "at the next visible position, φ" (or no visible
/// position remains).
fn skip_to_visible(phi: Formula) -> Formula {
    eps().until(phi.and(eps().not())).or(eps().always())
}

/// The `T` transformation of Definition 7.4 (Figure 5), without the boolean
/// wrapping of `R̄`.
///
/// Input must be in positive normal form (e.g. Σ'-normal form); use
/// [`r_bar`] for the full property transport.
///
/// # Panics
///
/// Panics when `f` is not in positive normal form.
pub fn transform_t(f: &Formula) -> Formula {
    assert!(f.is_pnf(), "T is defined on positive normal form formulas");
    match f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Not(_) => f.clone(),
        Formula::And(x, y) => transform_t(x).and(transform_t(y)),
        Formula::Or(x, y) => transform_t(x).or(transform_t(y)),
        Formula::Next(x) => eps()
            .until(eps().not().and(transform_t(x).next()))
            .or(eps().always()),
        Formula::Until(x, y) => transform_t(x).until(transform_t(y)),
        Formula::Release(x, y) => transform_t(x).release(transform_t(y)),
        _ => unreachable!("PNF excludes derived operators"),
    }
}

/// The `R̄` mapping of Definition 7.4: transports a property `η` in
/// Σ'-normal form (over the abstract alphabet) to a formula over the
/// concrete alphabet's propositions `Σ' ∪ {ε}`, to be interpreted under the
/// canonical homomorphism labeling `λ_hΣΣ'`.
///
/// # Errors
///
/// Returns [`AutomataError::UnknownSymbol`] when `eta`'s atoms are not
/// symbols of `sigma_prime`.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_logic::{parse, r_bar};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma_prime = Alphabet::new(["result"])?;
/// let eta = parse("<>result")?;
/// let transported = r_bar(&eta, &sigma_prime)?;
/// // ◇result = true U result becomes "skip(true) U skip(result)", where
/// // skip(φ) evaluates φ at the next visible action (or vacuously when the
/// // suffix stays hidden forever):
/// assert_eq!(
///     transported.to_string(),
///     "(ε U (true & !ε) | []ε) U (ε U (result & !ε) | []ε)"
/// );
/// # Ok(())
/// # }
/// ```
pub fn r_bar(eta: &Formula, sigma_prime: &Alphabet) -> Result<Formula, AutomataError> {
    let snf = to_sigma_normal_form(eta, sigma_prime)?;
    Ok(r_bar_node(&snf))
}

/// The *strict* variant of [`r_bar`]: `R̄(η) ∧ □◇¬ε`.
///
/// On a word `x`, the strict transport holds iff `h(x)` is **defined**
/// (infinitely many visible actions — the `□◇¬ε` conjunct) *and*
/// `h(x) ⊨ η`. Under this reading both transfer theorems of Section 8 are
/// sound:
///
/// * Theorem 8.2 (simple `h`): abstract rel-liveness of `η` implies
///   concrete rel-liveness of the strict transport — the constructed
///   witnesses always have defined images.
/// * Theorem 8.3 (converse): a strict concrete witness has a defined image,
///   which *is* the abstract witness.
///
/// With the vacuous reading ([`r_bar`] alone, which is what the extended
/// abstract's Theorem 8.3 proof asserts), the converse direction fails on
/// systems that can go permanently silent: `R̄(◇ false)` degenerates to
/// "eventually always hidden", which a silently-diverging system satisfies
/// relatively even though no abstract behavior satisfies `◇ false`. Our
/// property-based tests exhibit exactly that counterexample; see DESIGN.md
/// ("reconstruction notes").
///
/// # Errors
///
/// Same as [`r_bar`].
pub fn r_bar_strict(eta: &Formula, sigma_prime: &Alphabet) -> Result<Formula, AutomataError> {
    let vacuous = r_bar(eta, sigma_prime)?;
    let infinitely_visible = eps().not().eventually().always();
    Ok(vacuous.and(infinitely_visible))
}

fn r_bar_node(f: &Formula) -> Formula {
    if f.is_boolean() {
        // Maximal purely boolean subformula: evaluate at the next visible
        // position (or vacuously on an invisible tail).
        return skip_to_visible(f.clone());
    }
    match f {
        Formula::And(x, y) => r_bar_node(x).and(r_bar_node(y)),
        Formula::Or(x, y) => r_bar_node(x).or(r_bar_node(y)),
        Formula::Next(x) => {
            // Skip to the current abstract position's visible letter, then
            // one concrete step lands strictly after it; the transformed
            // argument re-aligns itself to the following visible letter.
            eps()
                .until(eps().not().and(r_bar_node(x).next()))
                .or(eps().always())
        }
        Formula::Until(x, y) => r_bar_node(x).until(r_bar_node(y)),
        Formula::Release(x, y) => r_bar_node(x).release(r_bar_node(y)),
        _ => unreachable!("non-boolean PNF node"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::labeling::Labeling;
    use crate::parser::parse;
    use rl_buchi::UpWord;

    #[test]
    fn sigma_normal_form_checks_atoms() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let ok = to_sigma_normal_form(&parse("!(a U b)").unwrap(), &sigma).unwrap();
        assert!(is_sigma_normal_form(&ok, &sigma));
        assert_eq!(ok, parse("!a R !b").unwrap().to_pnf());
        let err = to_sigma_normal_form(&parse("<>zzz").unwrap(), &sigma).unwrap_err();
        assert_eq!(err, AutomataError::UnknownSymbol("zzz".into()));
    }

    #[test]
    fn t_is_homomorphic_on_until() {
        let f = parse("a U b").unwrap();
        // booleans are left to R̄'s wrapper, so T is the identity here.
        assert_eq!(transform_t(&f), f);
    }

    #[test]
    fn r_bar_wraps_maximal_boolean_subformulas() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let out = r_bar(&parse("a U b").unwrap(), &sigma).unwrap();
        let expect =
            skip_to_visible(parse("a").unwrap()).until(skip_to_visible(parse("b").unwrap()));
        assert_eq!(out, expect);
        // A fully boolean formula is wrapped as a whole.
        let out2 = r_bar(&parse("a & b").unwrap(), &sigma).unwrap();
        assert_eq!(out2, skip_to_visible(parse("a & b").unwrap()));
    }

    /// Build the concrete alphabet {a, b, tau}, homomorphism h(tau)=ε,
    /// h(a)=a, h(b)=b, and the labeling λ_hΣΣ'.
    fn hom_setup() -> (
        Alphabet,
        Labeling,
        rl_automata::Symbol,
        rl_automata::Symbol,
        rl_automata::Symbol,
    ) {
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let lam = Labeling::from_fn(&sigma, |s| {
            let name = sigma.name(s);
            if name == "tau" {
                vec![EPSILON_PROP.to_owned()]
            } else {
                vec![name.to_owned()]
            }
        })
        .unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let tau = sigma.symbol("tau").unwrap();
        (sigma, lam, a, b, tau)
    }

    /// h applied to a lasso word: drop tau letters. Returns None when the
    /// period becomes empty (h(x) undefined).
    fn h_apply(
        w: &UpWord,
        tau: rl_automata::Symbol,
        abs: &Alphabet,
        conc: &Alphabet,
    ) -> Option<UpWord> {
        let tr = |s: rl_automata::Symbol| abs.symbol(conc.name(s)).unwrap();
        let prefix: Vec<_> = w
            .prefix()
            .iter()
            .copied()
            .filter(|&s| s != tau)
            .map(tr)
            .collect();
        let period: Vec<_> = w
            .period()
            .iter()
            .copied()
            .filter(|&s| s != tau)
            .map(tr)
            .collect();
        if period.is_empty() {
            None
        } else {
            Some(UpWord::new(prefix, period).unwrap())
        }
    }

    /// Lemma 7.5 alignment, checked exhaustively on a family of lasso words:
    /// x ⊨ R̄(η) under λ_h  ⇔  h(x) ⊨ η under λ_Σ'.
    #[test]
    fn lemma_7_5_alignment_on_samples() {
        let (sigma, lam_h, a, b, tau) = hom_setup();
        let sigma_prime = Alphabet::new(["a", "b"]).unwrap();
        let lam_abs = Labeling::canonical(&sigma_prime);
        let formulas = [
            "a",
            "!a",
            "a & !b",
            "X b",
            "X X a",
            "a U b",
            "b R a",
            "[]<>a",
            "<>[]b",
            "[](a -> X b)",
            "(a U b) | X a",
        ];
        let words = [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![tau, a]).unwrap(),
            UpWord::periodic(vec![a, tau, b]).unwrap(),
            UpWord::new(vec![tau, tau], vec![b, a]).unwrap(),
            UpWord::new(vec![a, tau], vec![tau, b, tau, a]).unwrap(),
            UpWord::new(vec![b], vec![a, tau, tau]).unwrap(),
            UpWord::new(vec![tau, a, tau, b], vec![a, b]).unwrap(),
        ];
        for text in formulas {
            let eta = parse(text).unwrap();
            let transported = r_bar(&eta, &sigma_prime).unwrap();
            for w in &words {
                let hx = h_apply(w, tau, &sigma_prime, &sigma).expect("h defined");
                assert_eq!(
                    evaluate(&transported, w, &lam_h),
                    evaluate(&eta, &hx, &lam_abs),
                    "formula {text}, word {w}"
                );
            }
        }
    }

    /// Theorem 8.3's vacuity requirement: on a word that is eventually all
    /// hidden, R̄(η) holds for every η.
    #[test]
    fn r_bar_vacuous_on_invisible_tails() {
        let (_sigma, lam_h, a, b, tau) = hom_setup();
        let sigma_prime = Alphabet::new(["a", "b"]).unwrap();
        let silent = UpWord::new(vec![a, b], vec![tau]).unwrap();
        let all_silent = UpWord::periodic(vec![tau]).unwrap();
        for text in ["a", "!a", "<>b", "[]a", "a U b", "X X b", "false"] {
            let eta = parse(text).unwrap();
            let transported = r_bar(&eta, &sigma_prime).unwrap();
            assert!(
                evaluate(&transported, &all_silent, &lam_h),
                "formula {text} must hold on the all-silent word"
            );
        }
        // On a word with visible prefix then silence, temporal parts also
        // become vacuous *from the silent point on*.
        let eta = parse("[]<>a").unwrap();
        let transported = r_bar(&eta, &sigma_prime).unwrap();
        assert!(evaluate(&transported, &silent, &lam_h));
    }
}
