//! JSON persistence (via the in-tree `rl-json` crate).
//!
//! Formulas use the externally-tagged encoding: unit variants are bare
//! strings (`"True"`), unary operators single-field objects
//! (`{"Not": ...}`), binary operators objects holding a two-element array
//! (`{"Until": [..., ...]}`).

use rl_json::{FromJson, Json, JsonError, ToJson};

use crate::ast::Formula;

fn unary(tag: &str, operand: &Formula) -> Json {
    Json::Obj(vec![(tag.to_owned(), operand.to_json())])
}

fn binary(tag: &str, left: &Formula, right: &Formula) -> Json {
    Json::Obj(vec![(
        tag.to_owned(),
        Json::Arr(vec![left.to_json(), right.to_json()]),
    )])
}

impl ToJson for Formula {
    fn to_json(&self) -> Json {
        match self {
            Formula::True => Json::Str("True".to_owned()),
            Formula::False => Json::Str("False".to_owned()),
            Formula::Atom(name) => Json::Obj(vec![("Atom".to_owned(), name.to_json())]),
            Formula::Not(f) => unary("Not", f),
            Formula::Next(f) => unary("Next", f),
            Formula::Eventually(f) => unary("Eventually", f),
            Formula::Always(f) => unary("Always", f),
            Formula::And(l, r) => binary("And", l, r),
            Formula::Or(l, r) => binary("Or", l, r),
            Formula::Implies(l, r) => binary("Implies", l, r),
            Formula::Iff(l, r) => binary("Iff", l, r),
            Formula::Until(l, r) => binary("Until", l, r),
            Formula::Release(l, r) => binary("Release", l, r),
            Formula::Before(l, r) => binary("Before", l, r),
            Formula::WeakUntil(l, r) => binary("WeakUntil", l, r),
        }
    }
}

fn unbox(operand: &Json) -> Result<Box<Formula>, JsonError> {
    Formula::from_json(operand).map(Box::new)
}

fn unbox2(operands: &Json) -> Result<(Box<Formula>, Box<Formula>), JsonError> {
    match operands.as_arr()? {
        [l, r] => Ok((unbox(l)?, unbox(r)?)),
        items => Err(JsonError::custom(format!(
            "binary operator expects 2 operands, got {}",
            items.len()
        ))),
    }
}

impl FromJson for Formula {
    fn from_json(value: &Json) -> Result<Formula, JsonError> {
        match value {
            Json::Str(tag) => match tag.as_str() {
                "True" => Ok(Formula::True),
                "False" => Ok(Formula::False),
                other => Err(JsonError::custom(format!("unknown formula `{other}`"))),
            },
            Json::Obj(fields) => {
                let [(tag, operand)] = fields.as_slice() else {
                    return Err(JsonError::custom(
                        "formula object must have exactly one operator key",
                    ));
                };
                match tag.as_str() {
                    "Atom" => Ok(Formula::Atom(String::from_json(operand)?)),
                    "Not" => Ok(Formula::Not(unbox(operand)?)),
                    "Next" => Ok(Formula::Next(unbox(operand)?)),
                    "Eventually" => Ok(Formula::Eventually(unbox(operand)?)),
                    "Always" => Ok(Formula::Always(unbox(operand)?)),
                    "And" => unbox2(operand).map(|(l, r)| Formula::And(l, r)),
                    "Or" => unbox2(operand).map(|(l, r)| Formula::Or(l, r)),
                    "Implies" => unbox2(operand).map(|(l, r)| Formula::Implies(l, r)),
                    "Iff" => unbox2(operand).map(|(l, r)| Formula::Iff(l, r)),
                    "Until" => unbox2(operand).map(|(l, r)| Formula::Until(l, r)),
                    "Release" => unbox2(operand).map(|(l, r)| Formula::Release(l, r)),
                    "Before" => unbox2(operand).map(|(l, r)| Formula::Before(l, r)),
                    "WeakUntil" => unbox2(operand).map(|(l, r)| Formula::WeakUntil(l, r)),
                    other => Err(JsonError::custom(format!("unknown operator `{other}`"))),
                }
            }
            other => Err(JsonError::custom(format!(
                "formula must be a string or single-key object, got {:?}",
                other
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_operators_roundtrip() {
        let a = Formula::atom("a");
        let b = Formula::atom("b");
        let f = Formula::True
            .and(Formula::False)
            .or(a.clone().not())
            .implies(a.clone().next().eventually().always())
            .iff(a.clone().until(b.clone()))
            .and(a.clone().release(b.clone()))
            .and(a.clone().before(b.clone()))
            .and(a.weak_until(b));
        let text = rl_json::to_string(&f).unwrap();
        let back: Formula = rl_json::from_str(&text).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn corrupt_documents_rejected() {
        for doc in [
            r#""Maybe""#,
            r#"{"And":[{"Atom":"a"}]}"#,
            r#"{"Frob":{"Atom":"a"}}"#,
            r#"{"Atom":3}"#,
            r#"{"And":[{"Atom":"a"},{"Atom":"b"}],"Or":[]}"#,
        ] {
            assert!(rl_json::from_str::<Formula>(doc).is_err(), "accepted {doc}");
        }
    }
}
