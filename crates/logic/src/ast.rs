//! Propositional linear temporal logic (PLTL) syntax.
//!
//! The paper's Section 3 defines PLTL with `¬`, `∧`, `O` (next) and `U`
//! (until), plus derived operators `∨`, `⇒`, `⇔`, `◇`, `□` and `B`
//! ("before", `ξ B ζ = ¬((¬ξ) U ζ)`). We keep all of these as first-class
//! constructors plus the *release* operator `R` (`ξ R ζ = ¬((¬ξ) U (¬ζ))`),
//! which positive normal form needs as the dual of `U`.

use std::fmt;

/// A PLTL formula.
///
/// Atomic propositions are named by strings; how names relate to alphabet
/// symbols is decided by a [`crate::Labeling`] at interpretation time
/// (Definition 3.2 of the paper).
///
/// # Example
///
/// ```
/// use rl_logic::Formula;
///
/// // □◇result — "infinitely often result"
/// let f = Formula::atom("result").eventually().always();
/// assert_eq!(f.to_string(), "[]<>result");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Atom(String),
    /// Negation `¬ξ`.
    Not(Box<Formula>),
    /// Conjunction `ξ ∧ ζ`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `ξ ∨ ζ`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `ξ ⇒ ζ`.
    Implies(Box<Formula>, Box<Formula>),
    /// Equivalence `ξ ⇔ ζ`.
    Iff(Box<Formula>, Box<Formula>),
    /// Next `O ξ` (written `X` in ASCII syntax).
    Next(Box<Formula>),
    /// Until `ξ U ζ`.
    Until(Box<Formula>, Box<Formula>),
    /// Release `ξ R ζ` (dual of until).
    Release(Box<Formula>, Box<Formula>),
    /// The paper's "before": `ξ B ζ = ¬((¬ξ) U ζ)`.
    Before(Box<Formula>, Box<Formula>),
    /// Weak until `ξ W ζ = (ξ U ζ) ∨ □ξ` (no obligation that `ζ` ever
    /// happens).
    WeakUntil(Box<Formula>, Box<Formula>),
    /// Eventually `◇ξ = true U ξ` (written `<>` or `F`).
    Eventually(Box<Formula>),
    /// Always `□ξ = ¬◇¬ξ` (written `[]` or `G`).
    Always(Box<Formula>),
}

impl Formula {
    /// An atomic proposition.
    pub fn atom(name: impl Into<String>) -> Formula {
        Formula::Atom(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Equivalence.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// Next.
    pub fn next(self) -> Formula {
        Formula::Next(Box::new(self))
    }

    /// Until.
    pub fn until(self, other: Formula) -> Formula {
        Formula::Until(Box::new(self), Box::new(other))
    }

    /// Release.
    pub fn release(self, other: Formula) -> Formula {
        Formula::Release(Box::new(self), Box::new(other))
    }

    /// Before (`self B other`).
    pub fn before(self, other: Formula) -> Formula {
        Formula::Before(Box::new(self), Box::new(other))
    }

    /// Weak until (`self W other`).
    pub fn weak_until(self, other: Formula) -> Formula {
        Formula::WeakUntil(Box::new(self), Box::new(other))
    }

    /// Eventually.
    pub fn eventually(self) -> Formula {
        Formula::Eventually(Box::new(self))
    }

    /// Always.
    pub fn always(self) -> Formula {
        Formula::Always(Box::new(self))
    }

    /// The set of atomic proposition names occurring in the formula.
    pub fn atoms(&self) -> std::collections::BTreeSet<String> {
        let mut set = std::collections::BTreeSet::new();
        self.collect_atoms(&mut set);
        set
    }

    fn collect_atoms(&self, set: &mut std::collections::BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(p) => {
                set.insert(p.clone());
            }
            Formula::Not(x) | Formula::Next(x) | Formula::Eventually(x) | Formula::Always(x) => {
                x.collect_atoms(set)
            }
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Implies(x, y)
            | Formula::Iff(x, y)
            | Formula::Until(x, y)
            | Formula::Release(x, y)
            | Formula::Before(x, y)
            | Formula::WeakUntil(x, y) => {
                x.collect_atoms(set);
                y.collect_atoms(set);
            }
        }
    }

    /// Syntactic size (number of operators and atoms).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(x) | Formula::Next(x) | Formula::Eventually(x) | Formula::Always(x) => {
                1 + x.size()
            }
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Implies(x, y)
            | Formula::Iff(x, y)
            | Formula::Until(x, y)
            | Formula::Release(x, y)
            | Formula::Before(x, y)
            | Formula::WeakUntil(x, y) => 1 + x.size() + y.size(),
        }
    }

    /// Converts the formula to *positive normal form* (Definition 7.1): the
    /// scope of every negation is a single atomic proposition; the derived
    /// operators `⇒`, `⇔`, `B`, `◇`, `□` are expanded into
    /// `∧/∨/O/U/R`-combinations.
    ///
    /// # Example
    ///
    /// ```
    /// use rl_logic::Formula;
    ///
    /// let f = Formula::atom("a").until(Formula::atom("b")).not();
    /// assert_eq!(f.to_pnf().to_string(), "!a R !b");
    /// ```
    pub fn to_pnf(&self) -> Formula {
        self.pnf(false)
    }

    fn pnf(&self, negated: bool) -> Formula {
        match self {
            Formula::True => {
                if negated {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negated {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom(p) => {
                if negated {
                    Formula::atom(p.clone()).not()
                } else {
                    Formula::atom(p.clone())
                }
            }
            Formula::Not(x) => x.pnf(!negated),
            Formula::And(x, y) => {
                if negated {
                    x.pnf(true).or(y.pnf(true))
                } else {
                    x.pnf(false).and(y.pnf(false))
                }
            }
            Formula::Or(x, y) => {
                if negated {
                    x.pnf(true).and(y.pnf(true))
                } else {
                    x.pnf(false).or(y.pnf(false))
                }
            }
            Formula::Implies(x, y) => {
                // x ⇒ y = ¬x ∨ y
                if negated {
                    x.pnf(false).and(y.pnf(true))
                } else {
                    x.pnf(true).or(y.pnf(false))
                }
            }
            Formula::Iff(x, y) => {
                // x ⇔ y = (x ∧ y) ∨ (¬x ∧ ¬y)
                if negated {
                    // ¬(x ⇔ y) = (x ∧ ¬y) ∨ (¬x ∧ y)
                    (x.pnf(false).and(y.pnf(true))).or(x.pnf(true).and(y.pnf(false)))
                } else {
                    (x.pnf(false).and(y.pnf(false))).or(x.pnf(true).and(y.pnf(true)))
                }
            }
            Formula::Next(x) => x.pnf(negated).next(),
            Formula::Until(x, y) => {
                if negated {
                    x.pnf(true).release(y.pnf(true))
                } else {
                    x.pnf(false).until(y.pnf(false))
                }
            }
            Formula::Release(x, y) => {
                if negated {
                    x.pnf(true).until(y.pnf(true))
                } else {
                    x.pnf(false).release(y.pnf(false))
                }
            }
            Formula::Before(x, y) => {
                // x B y = ¬((¬x) U y) = x R ¬y
                if negated {
                    x.pnf(true).until(y.pnf(false))
                } else {
                    x.pnf(false).release(y.pnf(true))
                }
            }
            Formula::WeakUntil(x, y) => {
                // x W y = y R (y ∨ x); ¬(x W y) = (¬y) U (¬y ∧ ¬x).
                if negated {
                    y.pnf(true).until(y.pnf(true).and(x.pnf(true)))
                } else {
                    y.pnf(false).release(y.pnf(false).or(x.pnf(false)))
                }
            }
            Formula::Eventually(x) => {
                // ◇x = true U x; ¬◇x = false R ¬x = □¬x
                if negated {
                    Formula::False.release(x.pnf(true))
                } else {
                    Formula::True.until(x.pnf(false))
                }
            }
            Formula::Always(x) => {
                if negated {
                    Formula::True.until(x.pnf(true))
                } else {
                    Formula::False.release(x.pnf(false))
                }
            }
        }
    }

    /// Whether the formula is in positive normal form.
    pub fn is_pnf(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::Not(x) => matches!(**x, Formula::Atom(_)),
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Until(x, y)
            | Formula::Release(x, y) => x.is_pnf() && y.is_pnf(),
            Formula::Next(x) => x.is_pnf(),
            Formula::Implies(..)
            | Formula::Iff(..)
            | Formula::Before(..)
            | Formula::WeakUntil(..)
            | Formula::Eventually(..)
            | Formula::Always(..) => false,
        }
    }

    /// Whether the formula is *purely boolean*: no temporal operator occurs.
    ///
    /// The `R̄` extension of Definition 7.4 treats maximal such subformulas
    /// specially.
    pub fn is_boolean(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => true,
            Formula::Not(x) => x.is_boolean(),
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Implies(x, y)
            | Formula::Iff(x, y) => x.is_boolean() && y.is_boolean(),
            Formula::Next(_)
            | Formula::Until(..)
            | Formula::Release(..)
            | Formula::Before(..)
            | Formula::WeakUntil(..)
            | Formula::Eventually(_)
            | Formula::Always(_) => false,
        }
    }
}

/// Operator precedence for printing (higher binds tighter).
fn prec(f: &Formula) -> u8 {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => 6,
        Formula::Not(_) | Formula::Next(_) | Formula::Eventually(_) | Formula::Always(_) => 5,
        Formula::Until(..)
        | Formula::Release(..)
        | Formula::Before(..)
        | Formula::WeakUntil(..) => 4,
        Formula::And(..) => 3,
        Formula::Or(..) => 2,
        Formula::Implies(..) => 1,
        Formula::Iff(..) => 0,
    }
}

impl fmt::Display for Formula {
    /// Prints in the ASCII syntax accepted by [`crate::parse`]:
    /// `! & | -> <-> X U R B [] <>`, with minimal parentheses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn child(f: &mut fmt::Formatter<'_>, parent: u8, c: &Formula, strict: bool) -> fmt::Result {
            let cp = prec(c);
            let need = if strict { cp <= parent } else { cp < parent };
            if need {
                write!(f, "(")?;
                write!(f, "{c}")?;
                write!(f, ")")
            } else {
                write!(f, "{c}")
            }
        }
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(p) => write!(f, "{p}"),
            Formula::Not(x) => {
                write!(f, "!")?;
                child(f, 5, x, false)
            }
            Formula::Next(x) => {
                // The X keyword always takes a space so the lexer never
                // glues it to a following alphabetic token ("X X a", "X a").
                write!(f, "X ")?;
                child(f, 5, x, false)
            }
            Formula::Eventually(x) => {
                write!(f, "<>")?;
                child(f, 5, x, false)
            }
            Formula::Always(x) => {
                write!(f, "[]")?;
                child(f, 5, x, false)
            }
            Formula::Until(x, y) => {
                child(f, 4, x, true)?;
                write!(f, " U ")?;
                // Right-associative: right child at same level needs no parens.
                child(f, 3, y, true)
            }
            Formula::Release(x, y) => {
                child(f, 4, x, true)?;
                write!(f, " R ")?;
                child(f, 3, y, true)
            }
            Formula::Before(x, y) => {
                child(f, 4, x, true)?;
                write!(f, " B ")?;
                child(f, 3, y, true)
            }
            Formula::WeakUntil(x, y) => {
                child(f, 4, x, true)?;
                write!(f, " W ")?;
                child(f, 3, y, true)
            }
            Formula::And(x, y) => {
                child(f, 3, x, false)?;
                write!(f, " & ")?;
                child(f, 3, y, true)
            }
            Formula::Or(x, y) => {
                child(f, 2, x, false)?;
                write!(f, " | ")?;
                child(f, 2, y, true)
            }
            Formula::Implies(x, y) => {
                child(f, 1, x, true)?;
                write!(f, " -> ")?;
                child(f, 1, y, false)
            }
            Formula::Iff(x, y) => {
                child(f, 0, x, true)?;
                write!(f, " <-> ")?;
                child(f, 0, y, true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pnf_pushes_negations() {
        let f = Formula::atom("a").and(Formula::atom("b").next()).not();
        let p = f.to_pnf();
        assert!(p.is_pnf());
        assert_eq!(
            p,
            Formula::atom("a").not().or(Formula::atom("b").not().next())
        );
    }

    #[test]
    fn pnf_of_box_diamond() {
        let f = Formula::atom("result").eventually().always();
        let p = f.to_pnf();
        assert!(p.is_pnf());
        // □◇a = false R (true U a)
        assert_eq!(
            p,
            Formula::False.release(Formula::True.until(Formula::atom("result")))
        );
    }

    #[test]
    fn before_definition_matches_paper() {
        // ξ B ζ = ¬((¬ξ) U ζ); PNF: ξ R ¬ζ
        let f = Formula::atom("a").before(Formula::atom("b"));
        assert_eq!(
            f.to_pnf(),
            Formula::atom("a").release(Formula::atom("b").not())
        );
        // And double negation: ¬(ξ B ζ) = (¬ξ) U ζ.
        assert_eq!(
            f.not().to_pnf(),
            Formula::atom("a").not().until(Formula::atom("b"))
        );
    }

    #[test]
    fn pnf_is_idempotent() {
        let f = Formula::atom("a")
            .implies(Formula::atom("b").eventually())
            .always();
        let p = f.to_pnf();
        assert_eq!(p, p.to_pnf());
    }

    #[test]
    fn atoms_collected() {
        let f = Formula::atom("x").until(Formula::atom("y").and(Formula::atom("x")));
        let atoms = f.atoms();
        assert_eq!(atoms.len(), 2);
        assert!(atoms.contains("x"));
        assert!(atoms.contains("y"));
    }

    #[test]
    fn boolean_detection() {
        assert!(Formula::atom("a")
            .and(Formula::atom("b").not())
            .is_boolean());
        assert!(!Formula::atom("a").next().is_boolean());
        assert!(!Formula::atom("a")
            .and(Formula::atom("b").eventually())
            .is_boolean());
    }

    #[test]
    fn display_uses_minimal_parens() {
        let f = Formula::atom("a")
            .and(Formula::atom("b"))
            .or(Formula::atom("c"));
        assert_eq!(f.to_string(), "a & b | c");
        let g = Formula::atom("a")
            .or(Formula::atom("b"))
            .and(Formula::atom("c"));
        assert_eq!(g.to_string(), "(a | b) & c");
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::atom("a").until(Formula::atom("b")).not();
        assert_eq!(f.size(), 4);
    }
}
