//! Semantics-preserving formula simplification.
//!
//! The `R̄` transport of Definition 7.4 produces syntactically heavy
//! formulas (`(ε U (true ∧ ¬ε)) ∨ □ε …`); this module's local rewrite
//! rules shrink them before translation, which directly shrinks the GPVW
//! tableau. All rules are classical PLTL equivalences; the property tests
//! check `evaluate(f) == evaluate(simplify(f))` on random formula/word
//! pairs.

use crate::ast::Formula;

/// Applies local simplification rules bottom-up until a fixpoint.
///
/// # Example
///
/// ```
/// use rl_logic::{parse, simplify};
///
/// # fn main() -> Result<(), rl_logic::ParseError> {
/// assert_eq!(simplify(&parse("a & true")?), parse("a")?);
/// assert_eq!(simplify(&parse("!!a | false")?), parse("a")?);
/// assert_eq!(simplify(&parse("<> <> a")?), parse("<>a")?);
/// assert_eq!(simplify(&parse("true U a")?), parse("<>a")?);
/// # Ok(())
/// # }
/// ```
pub fn simplify(f: &Formula) -> Formula {
    let mut cur = f.clone();
    // Rules strictly shrink the size, so |f| iterations terminate; cap for
    // safety anyway.
    for _ in 0..=f.size() {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

fn pass(f: &Formula) -> Formula {
    use Formula::*;
    // First simplify children, then the node itself.
    let node = match f {
        True | False | Atom(_) => f.clone(),
        Not(x) => pass(x).not(),
        And(x, y) => pass(x).and(pass(y)),
        Or(x, y) => pass(x).or(pass(y)),
        Implies(x, y) => pass(x).implies(pass(y)),
        Iff(x, y) => pass(x).iff(pass(y)),
        Next(x) => pass(x).next(),
        Until(x, y) => pass(x).until(pass(y)),
        Release(x, y) => pass(x).release(pass(y)),
        Before(x, y) => pass(x).before(pass(y)),
        WeakUntil(x, y) => pass(x).weak_until(pass(y)),
        Eventually(x) => pass(x).eventually(),
        Always(x) => pass(x).always(),
    };
    rewrite(node)
}

fn rewrite(f: Formula) -> Formula {
    use Formula::*;
    match f {
        Not(x) => match *x {
            True => False,
            False => True,
            Not(inner) => *inner,
            other => Not(Box::new(other)),
        },
        And(x, y) => match (*x, *y) {
            (True, other) | (other, True) => other,
            (False, _) | (_, False) => False,
            (a, b) if a == b => a,
            (a, b) => a.and(b),
        },
        Or(x, y) => match (*x, *y) {
            (False, other) | (other, False) => other,
            (True, _) | (_, True) => True,
            (a, b) if a == b => a,
            (a, b) => a.or(b),
        },
        Implies(x, y) => match (*x, *y) {
            (True, other) => other,
            (False, _) => True,
            (_, True) => True,
            (a, False) => rewrite(a.not()),
            (a, b) if a == b => True,
            (a, b) => a.implies(b),
        },
        Iff(x, y) => match (*x, *y) {
            (True, other) | (other, True) => other,
            (False, other) | (other, False) => rewrite(other.not()),
            (a, b) if a == b => True,
            (a, b) => a.iff(b),
        },
        Next(x) => match *x {
            True => True,
            False => False,
            other => other.next(),
        },
        Until(x, y) => match (*x, *y) {
            // ξ U true ≡ true; ξ U false ≡ false.
            (_, True) => True,
            (_, False) => False,
            // false U ζ ≡ ζ (the witness must be immediate).
            (False, z) => z,
            // true U ζ ≡ ◇ζ.
            (True, z) => z.eventually(),
            (a, b) if a == b => a,
            (a, b) => a.until(b),
        },
        Release(x, y) => match (*x, *y) {
            // ξ R true ≡ true; ξ R false ≡ false.
            (_, True) => True,
            (_, False) => False,
            // true R ζ ≡ ζ (released immediately).
            (True, z) => z,
            // false R ζ ≡ □ζ.
            (False, z) => z.always(),
            (a, b) if a == b => a,
            (a, b) => a.release(b),
        },
        WeakUntil(x, y) => match (*x, *y) {
            // ξ W true ≡ true; true W ζ ≡ true (□true branch).
            (_, True) | (True, _) => True,
            // ξ W false ≡ □ξ; false W ζ ≡ ζ.
            (a, False) => rewrite(a.always()),
            (False, z) => z,
            (a, b) if a == b => a,
            (a, b) => a.weak_until(b),
        },
        Before(x, y) => match (*x, *y) {
            // ξ B false ≡ true (nothing to precede).
            (_, False) => True,
            // ξ B true ≡ ¬(¬ξ U true) ≡ false … unless ξ holds now; keep the
            // general rewrite only for the constant-false rhs.
            (a, b) => a.before(b),
        },
        Eventually(x) => match *x {
            True => True,
            False => False,
            Eventually(inner) => (*inner).eventually(),
            other => other.eventually(),
        },
        Always(x) => match *x {
            True => True,
            False => False,
            Always(inner) => (*inner).always(),
            other => other.always(),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::labeling::Labeling;
    use crate::parser::parse;
    use rl_automata::Alphabet;
    use rl_buchi::UpWord;

    #[test]
    fn constant_folding() {
        for (input, expect) in [
            ("a & true", "a"),
            ("false | b", "b"),
            ("!(!a)", "a"),
            ("!true", "false"),
            ("X false", "false"),
            ("true -> a", "a"),
            ("a -> false", "!a"),
            ("a <-> true", "a"),
            ("<> <> a", "<>a"),
            ("[] [] a", "[]a"),
            ("true U a", "<>a"),
            ("false R a", "[]a"),
            ("true R a", "a"),
            ("false U a", "a"),
            ("a U true", "true"),
            ("a R false", "false"),
            ("a & a", "a"),
            ("a | a", "a"),
            ("a -> a", "true"),
        ] {
            assert_eq!(
                simplify(&parse(input).unwrap()),
                parse(expect).unwrap(),
                "{input}"
            );
        }
    }

    #[test]
    fn nested_folding_cascades() {
        // (a & true) | false → a; X(!!b) → X b.
        assert_eq!(
            simplify(&parse("(a & true) | false").unwrap()),
            parse("a").unwrap()
        );
        assert_eq!(simplify(&parse("X !!b").unwrap()), parse("X b").unwrap());
        // □(true U (false | a)) → □◇a
        assert_eq!(
            simplify(&parse("[](true U (false | a))").unwrap()),
            parse("[]<>a").unwrap()
        );
    }

    #[test]
    fn simplification_preserves_semantics_on_samples() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let words = [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::new(vec![a, b], vec![b, a]).unwrap(),
        ];
        for text in [
            "a U (b & true)",
            "(false R a) | X true",
            "!(a & !a)",
            "a B false",
            "((a | a) U (b | false)) & true",
        ] {
            let f = parse(text).unwrap();
            let s = simplify(&f);
            assert!(s.size() <= f.size(), "{text} grew");
            for w in &words {
                assert_eq!(
                    evaluate(&f, w, &lam),
                    evaluate(&s, w, &lam),
                    "{text} on {w}"
                );
            }
        }
    }

    #[test]
    fn shrinks_r_bar_output() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let transported = crate::transform::r_bar(&parse("<>a").unwrap(), &sigma).unwrap();
        let slim = simplify(&transported);
        assert!(
            slim.size() < transported.size(),
            "R̄ output should shrink: {} vs {}",
            slim.size(),
            transported.size()
        );
    }
}
