//! Direct evaluation of PLTL over ultimately periodic words.
//!
//! This is the reference semantics of Section 3, computed exactly on lasso
//! words by fixpoint iteration — used to cross-check the automata-theoretic
//! route ([`crate::formula_to_buchi`]) in tests and to explain
//! counterexamples to users.

use rl_buchi::UpWord;

use crate::ast::Formula;
use crate::labeling::Labeling;

/// Evaluates `x, λ ⊨ η` for an ultimately periodic `x`.
///
/// Until/release (and the derived `◇`, `□`, `B`) are solved as least/greatest
/// fixpoints on the lasso graph of `x`, so the result is exact.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::UpWord;
/// use rl_logic::{evaluate, parse, Labeling};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["work", "rest"])?;
/// let w = ab.symbol("work").unwrap();
/// let r = ab.symbol("rest").unwrap();
/// let lam = Labeling::canonical(&ab);
/// let x = UpWord::new(vec![w], vec![w, r])?; // work (work rest)^ω
/// assert!(evaluate(&parse("[]<>rest")?, &x, &lam));
/// assert!(!evaluate(&parse("<>[]rest")?, &x, &lam));
/// # Ok(())
/// # }
/// ```
pub fn evaluate(formula: &Formula, word: &UpWord, labeling: &Labeling) -> bool {
    truth(formula, word, labeling)[0]
}

/// Evaluates the formula at *every* lasso position (position `i` meaning the
/// suffix `x_(i...)`); index 0 is the whole word.
pub fn truth(formula: &Formula, word: &UpWord, labeling: &Labeling) -> Vec<bool> {
    let len = word.lasso_len();
    match formula {
        Formula::True => vec![true; len],
        Formula::False => vec![false; len],
        Formula::Atom(p) => (0..len)
            .map(|i| labeling.satisfies(word.at(i), p))
            .collect(),
        Formula::Not(x) => truth(x, word, labeling).into_iter().map(|b| !b).collect(),
        Formula::And(x, y) => zip(
            truth(x, word, labeling),
            truth(y, word, labeling),
            |a, b| a && b,
        ),
        Formula::Or(x, y) => zip(
            truth(x, word, labeling),
            truth(y, word, labeling),
            |a, b| a || b,
        ),
        Formula::Implies(x, y) => zip(
            truth(x, word, labeling),
            truth(y, word, labeling),
            |a, b| !a || b,
        ),
        Formula::Iff(x, y) => zip(
            truth(x, word, labeling),
            truth(y, word, labeling),
            |a, b| a == b,
        ),
        Formula::Next(x) => {
            let tx = truth(x, word, labeling);
            (0..len).map(|i| tx[word.lasso_next(i)]).collect()
        }
        Formula::Until(x, y) => {
            least_fixpoint(word, &truth(x, word, labeling), &truth(y, word, labeling))
        }
        Formula::Release(x, y) => {
            greatest_fixpoint(word, &truth(x, word, labeling), &truth(y, word, labeling))
        }
        Formula::Before(x, y) => {
            // ξ B ζ = ¬((¬ξ) U ζ)
            let nx: Vec<bool> = truth(x, word, labeling).into_iter().map(|b| !b).collect();
            let ty = truth(y, word, labeling);
            least_fixpoint(word, &nx, &ty)
                .into_iter()
                .map(|b| !b)
                .collect()
        }
        Formula::WeakUntil(x, y) => {
            // x W y = y R (y ∨ x): greatest fixpoint.
            let tx = truth(x, word, labeling);
            let ty = truth(y, word, labeling);
            let disj: Vec<bool> = tx.iter().zip(&ty).map(|(&a, &b)| a || b).collect();
            greatest_fixpoint(word, &ty, &disj)
        }
        Formula::Eventually(x) => {
            let tx = truth(x, word, labeling);
            least_fixpoint(word, &vec![true; len], &tx)
        }
        Formula::Always(x) => {
            let tx = truth(x, word, labeling);
            greatest_fixpoint(word, &vec![false; len], &tx)
        }
    }
}

fn zip(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

/// Least fixpoint of `v[i] = ty[i] ∨ (tx[i] ∧ v[next(i)])` — until semantics.
fn least_fixpoint(word: &UpWord, tx: &[bool], ty: &[bool]) -> Vec<bool> {
    let len = word.lasso_len();
    let mut v = vec![false; len];
    loop {
        let mut changed = false;
        for i in (0..len).rev() {
            let nv = ty[i] || (tx[i] && v[word.lasso_next(i)]);
            if nv != v[i] {
                v[i] = nv;
                changed = true;
            }
        }
        if !changed {
            return v;
        }
    }
}

/// Greatest fixpoint of `v[i] = ty[i] ∧ (tx[i] ∨ v[next(i)])` — release
/// semantics.
fn greatest_fixpoint(word: &UpWord, tx: &[bool], ty: &[bool]) -> Vec<bool> {
    let len = word.lasso_len();
    let mut v = vec![true; len];
    loop {
        let mut changed = false;
        for i in (0..len).rev() {
            let nv = ty[i] && (tx[i] || v[word.lasso_next(i)]);
            if nv != v[i] {
                v[i] = nv;
                changed = true;
            }
        }
        if !changed {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rl_automata::Alphabet;

    fn setup() -> (Labeling, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        (lam, a, b)
    }

    #[test]
    fn atoms_and_booleans() {
        let (lam, a, b) = setup();
        let w = UpWord::new(vec![a], vec![b]).unwrap();
        assert!(evaluate(&parse("a").unwrap(), &w, &lam));
        assert!(!evaluate(&parse("b").unwrap(), &w, &lam));
        assert!(evaluate(&parse("a & !b").unwrap(), &w, &lam));
        assert!(evaluate(&parse("b | a").unwrap(), &w, &lam));
        assert!(evaluate(&parse("b -> false").unwrap(), &w, &lam));
        assert!(evaluate(&parse("a <-> !b").unwrap(), &w, &lam));
    }

    #[test]
    fn next_steps_once() {
        let (lam, a, b) = setup();
        let w = UpWord::new(vec![a], vec![b]).unwrap();
        assert!(evaluate(&parse("X b").unwrap(), &w, &lam));
        assert!(evaluate(&parse("X X b").unwrap(), &w, &lam));
        assert!(!evaluate(&parse("X a").unwrap(), &w, &lam));
    }

    #[test]
    fn until_and_release() {
        let (lam, a, b) = setup();
        let w = UpWord::new(vec![a, a], vec![b]).unwrap();
        assert!(evaluate(&parse("a U b").unwrap(), &w, &lam));
        assert!(evaluate(&parse("b U a").unwrap(), &w, &lam)); // a holds at 0
                                                               // ζ never holds anywhere ⇒ until is false.
        assert!(!evaluate(&parse("a U (a & b)").unwrap(), &w, &lam));
        // release: b R a means a holds up to and including first b∧a... here
        // a never recurs after b's start: []b fails at 0 but (false R b) from
        // position 2 onwards holds.
        assert!(evaluate(&parse("X X []b").unwrap(), &w, &lam));
        assert!(!evaluate(&parse("[]b").unwrap(), &w, &lam));
    }

    #[test]
    fn fairness_formulas() {
        let (lam, a, b) = setup();
        let alt = UpWord::periodic(vec![a, b]).unwrap();
        assert!(evaluate(&parse("[]<>a").unwrap(), &alt, &lam));
        assert!(evaluate(&parse("[]<>b").unwrap(), &alt, &lam));
        assert!(!evaluate(&parse("<>[]a").unwrap(), &alt, &lam));
        let ev_a = UpWord::new(vec![b, b, b], vec![a]).unwrap();
        assert!(evaluate(&parse("<>[]a").unwrap(), &ev_a, &lam));
        assert!(!evaluate(&parse("[]<>b").unwrap(), &ev_a, &lam));
    }

    #[test]
    fn before_is_negated_until() {
        let (lam, a, b) = setup();
        // a B b = ¬((¬a) U b): "b does not happen strictly before a".
        let w1 = UpWord::new(vec![a, b], vec![a]).unwrap();
        assert!(evaluate(&parse("a B b").unwrap(), &w1, &lam));
        let w2 = UpWord::new(vec![b], vec![a]).unwrap();
        assert!(!evaluate(&parse("a B b").unwrap(), &w2, &lam));
        // No b at all: trivially true.
        let w3 = UpWord::periodic(vec![a]).unwrap();
        assert!(evaluate(&parse("a B b").unwrap(), &w3, &lam));
    }

    #[test]
    fn until_needs_eventual_witness() {
        let (lam, a, b) = setup();
        // a U b on a^ω: false (b never happens).
        let w = UpWord::periodic(vec![a]).unwrap();
        assert!(!evaluate(&parse("a U b").unwrap(), &w, &lam));
        // but a R b fails too (b false at 0); b R a holds (a always, release
        // by b never needed)?  b R a: greatest fixpoint: a[i] && (b[i] ||
        // v[next]) = true everywhere since a always true.
        assert!(evaluate(&parse("b R a").unwrap(), &w, &lam));
        let _ = b;
    }

    #[test]
    fn suffix_truth_positions() {
        let (lam, a, b) = setup();
        let w = UpWord::new(vec![a], vec![b]).unwrap();
        let t = truth(&parse("a").unwrap(), &w, &lam);
        assert_eq!(t, vec![true, false]);
        let t2 = truth(&parse("<>a").unwrap(), &w, &lam);
        assert_eq!(t2, vec![true, false]);
    }
}

#[cfg(test)]
mod weak_until_tests {
    use super::*;
    use crate::parser::parse;
    use rl_automata::Alphabet;

    #[test]
    fn weak_until_semantics() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        // a W b: holds when b eventually arrives with a until then …
        let w1 = UpWord::new(vec![a, a, b], vec![a]).unwrap();
        assert!(evaluate(&parse("a W b").unwrap(), &w1, &lam));
        // … and also when a holds forever without b (unlike strong U).
        let w2 = UpWord::periodic(vec![a]).unwrap();
        assert!(evaluate(&parse("a W b").unwrap(), &w2, &lam));
        assert!(!evaluate(&parse("a U b").unwrap(), &w2, &lam));
        // Fails when a stops before b arrives.
        let w3 = UpWord::new(vec![a, b], vec![a]).unwrap();
        let w4 = UpWord::new(vec![b], vec![b]).unwrap();
        assert!(evaluate(&parse("a W b").unwrap(), &w3, &lam));
        assert!(evaluate(&parse("a W b").unwrap(), &w4, &lam)); // b now
        let w5 = UpWord::periodic(vec![b, a]).unwrap();
        assert!(evaluate(&parse("a W b").unwrap(), &w5, &lam));
        // a then neither a nor b-ish: use w = a then b-free non-a? On a
        // 2-letter alphabet "neither" is impossible; check X-shifted failure:
        // (X a) W b on b a^ω from position 0: b holds at 0 → true.
    }

    #[test]
    fn weak_until_equals_definition() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let words = [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::periodic(vec![a, b]).unwrap(),
            UpWord::new(vec![a, a], vec![b, a]).unwrap(),
        ];
        let w = parse("a W b").unwrap();
        let def = parse("(a U b) | []a").unwrap();
        let pnf = w.to_pnf();
        for x in &words {
            assert_eq!(evaluate(&w, x, &lam), evaluate(&def, x, &lam), "{x}");
            assert_eq!(evaluate(&w, x, &lam), evaluate(&pnf, x, &lam), "pnf {x}");
        }
    }
}
