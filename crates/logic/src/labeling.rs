//! Labeling functions `λ : Σ → 2^AP` (Section 3 and Definitions 7.2/7.3).
//!
//! PLTL formulas speak about atomic propositions; ω-words are sequences of
//! alphabet symbols. A [`Labeling`] bridges the two: it assigns to every
//! symbol the set of propositions that hold when that symbol occurs.

use std::collections::{BTreeMap, BTreeSet};

use rl_automata::{Alphabet, AutomataError, Symbol};

/// The proposition name used for hidden actions by the canonical
/// homomorphism labeling `λ_hΣΣ'` (Definition 7.3): a concrete action `a`
/// with `h(a) = ε` satisfies exactly this proposition.
pub const EPSILON_PROP: &str = "ε";

/// A labeling function `λ : Σ → 2^AP`.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_logic::Labeling;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["request", "result"])?;
/// let lam = Labeling::canonical(&ab);
/// let request = ab.symbol("request").unwrap();
/// assert!(lam.satisfies(request, "request"));
/// assert!(!lam.satisfies(request, "result"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    alphabet: Alphabet,
    props: Vec<String>,
    index: BTreeMap<String, usize>,
    sat: Vec<BTreeSet<usize>>, // per symbol: indices of true propositions
}

impl Labeling {
    /// The canonical `λ_Σ` of Definition 7.2: propositions are the symbol
    /// names themselves and `λ_Σ(a) = {a}`.
    pub fn canonical(alphabet: &Alphabet) -> Labeling {
        let props: Vec<String> = alphabet.names();
        let index = props
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        let sat = (0..alphabet.len()).map(|i| BTreeSet::from([i])).collect();
        Labeling {
            alphabet: alphabet.clone(),
            props,
            index,
            sat,
        }
    }

    /// A general labeling: `assign(a)` lists the proposition names true at
    /// symbol `a`. The proposition set is the union of all assigned names.
    ///
    /// # Errors
    ///
    /// Currently infallible; fallible for future validation uniformity.
    pub fn from_fn(
        alphabet: &Alphabet,
        assign: impl Fn(Symbol) -> Vec<String>,
    ) -> Result<Labeling, AutomataError> {
        let mut props: Vec<String> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut sat: Vec<BTreeSet<usize>> = Vec::new();
        for a in alphabet.symbols() {
            let mut set = BTreeSet::new();
            for name in assign(a) {
                let i = *index.entry(name.clone()).or_insert_with(|| {
                    props.push(name.clone());
                    props.len() - 1
                });
                set.insert(i);
            }
            sat.push(set);
        }
        Ok(Labeling {
            alphabet: alphabet.clone(),
            props,
            index,
            sat,
        })
    }

    /// The alphabet this labeling interprets.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// All proposition names, in interning order.
    pub fn props(&self) -> &[String] {
        &self.props
    }

    /// Whether proposition `prop` holds at symbol `a`. Unknown proposition
    /// names hold nowhere.
    pub fn satisfies(&self, a: Symbol, prop: &str) -> bool {
        match self.index.get(prop) {
            Some(&i) => self.sat[a.index()].contains(&i),
            None => false,
        }
    }

    /// The proposition names true at symbol `a`.
    pub fn props_at(&self, a: Symbol) -> Vec<&str> {
        self.sat[a.index()]
            .iter()
            .map(|&i| self.props[i].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_identity_like() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        assert!(lam.satisfies(a, "a"));
        assert!(!lam.satisfies(a, "b"));
        assert!(lam.satisfies(b, "b"));
        assert!(!lam.satisfies(a, "zzz"));
        assert_eq!(lam.props_at(a), vec!["a"]);
    }

    #[test]
    fn from_fn_builds_homomorphism_style_labelings() {
        // h: lock ↦ ε, request ↦ request.
        let ab = Alphabet::new(["lock", "request"]).unwrap();
        let lam = Labeling::from_fn(&ab, |s| {
            if ab.name(s) == "lock" {
                vec![EPSILON_PROP.to_owned()]
            } else {
                vec![ab.name(s).to_owned()]
            }
        })
        .unwrap();
        let lock = ab.symbol("lock").unwrap();
        let request = ab.symbol("request").unwrap();
        assert!(lam.satisfies(lock, EPSILON_PROP));
        assert!(!lam.satisfies(lock, "lock"));
        assert!(lam.satisfies(request, "request"));
        assert!(!lam.satisfies(request, EPSILON_PROP));
    }

    #[test]
    fn multiple_props_per_symbol() {
        let ab = Alphabet::new(["ra"]).unwrap();
        let lam = Labeling::from_fn(&ab, |_| vec!["r".to_owned(), "a".to_owned()]).unwrap();
        let ra = ab.symbol("ra").unwrap();
        assert!(lam.satisfies(ra, "r"));
        assert!(lam.satisfies(ra, "a"));
        assert_eq!(lam.props().len(), 2);
    }
}
