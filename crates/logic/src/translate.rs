//! PLTL → Büchi translation (GPVW tableau construction).
//!
//! Implements Gerth–Peled–Vardi–Wolper on-the-fly node expansion into a
//! labeled generalized Büchi automaton, followed by counter-based
//! degeneralization. This is the `L_η` of Definition 3.2: given a formula and
//! a labeling `λ : Σ → 2^AP`, the resulting automaton accepts exactly
//! `{ x ∈ Σ^ω | x, λ ⊨ η }`.
//!
//! The translation goes through positive normal form, so all of the paper's
//! operators (including `B`) are supported; properties are *negated at the
//! formula level* when a complement automaton is needed, which keeps the
//! relative-liveness/safety deciders of `rl-core` out of exponential Büchi
//! complementation for formula-given properties.

use std::collections::{BTreeMap, BTreeSet};

use rl_automata::Symbol;
use rl_buchi::{Buchi, GeneralizedBuchi};

use crate::ast::Formula;
use crate::labeling::Labeling;

/// Sentinel "incoming" id for initial tableau nodes.
const INIT: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Tentative {
    id: usize,
    incoming: BTreeSet<usize>,
    new: BTreeSet<Formula>,
    old: BTreeSet<Formula>,
    next: BTreeSet<Formula>,
}

#[derive(Debug, Clone)]
struct Completed {
    incoming: BTreeSet<usize>,
    old: BTreeSet<Formula>,
}

/// Translates `formula` (any PLTL formula; converted to PNF internally) into
/// a Büchi automaton over `labeling.alphabet()` accepting exactly the words
/// satisfying it under `labeling`.
///
/// The returned automaton is reduced (every state lies on some accepting
/// run).
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::UpWord;
/// use rl_logic::{formula_to_buchi, parse, Labeling};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["req", "ack"])?;
/// let req = ab.symbol("req").unwrap();
/// let ack = ab.symbol("ack").unwrap();
/// let lam = Labeling::canonical(&ab);
/// let aut = formula_to_buchi(&parse("[](req -> X ack)")?, &lam);
/// assert!(aut.accepts_upword(&UpWord::periodic(vec![req, ack])?));
/// assert!(!aut.accepts_upword(&UpWord::periodic(vec![req, req, ack])?));
/// # Ok(())
/// # }
/// ```
pub fn formula_to_buchi(formula: &Formula, labeling: &Labeling) -> Buchi {
    let pnf = formula.to_pnf();
    let nodes = expand_graph(&pnf);

    // Acceptance sets: one per Until subformula of the PNF closure.
    let untils = collect_untils(&pnf);
    // Map stored node ids to dense indices.
    let ids: Vec<usize> = nodes.keys().copied().collect();
    let dense: BTreeMap<usize, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let n = ids.len();

    // Generalized acceptance: F_u = {r | u ∉ old(r) ∨ rhs(u) ∈ old(r)}.
    let k = untils.len().max(1);
    let mut fsets: Vec<Vec<bool>> = vec![vec![true; n]; k];
    for (ui, u) in untils.iter().enumerate() {
        let rhs = match u {
            Formula::Until(_, y) => (**y).clone(),
            _ => unreachable!("collect_untils only returns untils"),
        };
        for (&id, node) in &nodes {
            let idx = dense[&id];
            fsets[ui][idx] = !node.old.contains(u) || node.old.contains(&rhs);
        }
    }

    // Edge labels: which symbols satisfy a node's literal constraints.
    let alphabet = labeling.alphabet().clone();
    let sat_symbols: BTreeMap<usize, Vec<Symbol>> = nodes
        .iter()
        .map(|(&id, node)| {
            let syms = alphabet
                .symbols()
                .filter(|&a| literals_hold(&node.old, a, labeling))
                .collect();
            (id, syms)
        })
        .collect();

    // Assemble the labeled generalized Büchi automaton and degeneralize.
    let mut gba = GeneralizedBuchi::new(alphabet);
    for _ in 0..n {
        gba.add_state();
    }
    for (&rid, rnode) in &nodes {
        if rnode.incoming.contains(&INIT) {
            gba.set_initial(dense[&rid]);
        }
        for &qid in &rnode.incoming {
            if qid == INIT {
                continue;
            }
            // Transition q --a--> r for symbols a satisfying old(q).
            for &a in &sat_symbols[&qid] {
                gba.add_transition(dense[&qid], a, dense[&rid]);
            }
        }
    }
    for fset in &fsets {
        gba.add_acceptance_set((0..n).filter(|&i| fset[i]))
            .expect("dense indices are in range");
    }
    gba.degeneralize()
}

fn literals_hold(old: &BTreeSet<Formula>, a: Symbol, labeling: &Labeling) -> bool {
    old.iter().all(|f| match f {
        Formula::Atom(p) => labeling.satisfies(a, p),
        Formula::Not(x) => match &**x {
            Formula::Atom(p) => !labeling.satisfies(a, p),
            _ => true,
        },
        _ => true,
    })
}

fn collect_untils(f: &Formula) -> Vec<Formula> {
    let mut set = BTreeSet::new();
    fn walk(f: &Formula, set: &mut BTreeSet<Formula>) {
        match f {
            Formula::Until(x, y) => {
                set.insert(f.clone());
                walk(x, set);
                walk(y, set);
            }
            Formula::And(x, y) | Formula::Or(x, y) | Formula::Release(x, y) => {
                walk(x, set);
                walk(y, set);
            }
            Formula::Not(x) | Formula::Next(x) => walk(x, set),
            _ => {}
        }
    }
    walk(f, &mut set);
    set.into_iter().collect()
}

/// GPVW node expansion: returns the completed tableau nodes keyed by id.
fn expand_graph(pnf: &Formula) -> BTreeMap<usize, Completed> {
    let mut completed: BTreeMap<usize, Completed> = BTreeMap::new();
    let mut by_key: BTreeMap<(BTreeSet<Formula>, BTreeSet<Formula>), usize> = BTreeMap::new();
    let mut fresh = 0usize;
    let mut next_id = || {
        let id = fresh;
        fresh += 1;
        id
    };

    let mut stack: Vec<Tentative> = vec![Tentative {
        id: next_id(),
        incoming: BTreeSet::from([INIT]),
        new: BTreeSet::from([pnf.clone()]),
        old: BTreeSet::new(),
        next: BTreeSet::new(),
    }];

    while let Some(mut node) = stack.pop() {
        let Some(eta) = node.new.iter().next().cloned() else {
            // Fully expanded: merge or store, then spawn the successor seed.
            let key = (node.old.clone(), node.next.clone());
            if let Some(&existing) = by_key.get(&key) {
                let entry = completed.get_mut(&existing).expect("stored node");
                entry.incoming.extend(node.incoming.iter().copied());
                continue;
            }
            by_key.insert(key, node.id);
            completed.insert(
                node.id,
                Completed {
                    incoming: node.incoming.clone(),
                    old: node.old.clone(),
                },
            );
            stack.push(Tentative {
                id: next_id(),
                incoming: BTreeSet::from([node.id]),
                new: node.next.clone(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            });
            continue;
        };
        node.new.remove(&eta);
        match &eta {
            Formula::True => {
                // Keep `true` in old: the acceptance sets test the rhs of a
                // fulfilled until by membership in `old`, and `… U true`
                // must count as fulfilled.
                node.old.insert(eta);
                stack.push(node);
            }
            Formula::False => {
                // Contradiction: discard this node.
            }
            Formula::Atom(_) | Formula::Not(_) => {
                // Literal (PNF guarantees Not wraps an atom).
                let negation = match &eta {
                    Formula::Atom(p) => Formula::atom(p.clone()).not(),
                    Formula::Not(x) => (**x).clone(),
                    _ => unreachable!(),
                };
                if node.old.contains(&negation) {
                    // Inconsistent: discard.
                } else {
                    node.old.insert(eta);
                    stack.push(node);
                }
            }
            Formula::And(x, y) => {
                for part in [&**x, &**y] {
                    if !node.old.contains(part) {
                        node.new.insert(part.clone());
                    }
                }
                node.old.insert(eta);
                stack.push(node);
            }
            Formula::Or(x, y) => {
                let mut left = node.clone();
                left.old.insert(eta.clone());
                if !left.old.contains(&**x) {
                    left.new.insert((**x).clone());
                }
                let mut right = node;
                right.id = next_id();
                right.old.insert(eta.clone());
                if !right.old.contains(&**y) {
                    right.new.insert((**y).clone());
                }
                stack.push(left);
                stack.push(right);
            }
            Formula::Until(x, y) => {
                // η = x U y: either y now, or x now and η next.
                let mut wait = node.clone();
                wait.old.insert(eta.clone());
                if !wait.old.contains(&**x) {
                    wait.new.insert((**x).clone());
                }
                wait.next.insert(eta.clone());
                let mut done = node;
                done.id = next_id();
                done.old.insert(eta.clone());
                if !done.old.contains(&**y) {
                    done.new.insert((**y).clone());
                }
                stack.push(wait);
                stack.push(done);
            }
            Formula::Release(x, y) => {
                // η = x R y: y now, and (x now or η next).
                let mut cont = node.clone();
                cont.old.insert(eta.clone());
                if !cont.old.contains(&**y) {
                    cont.new.insert((**y).clone());
                }
                cont.next.insert(eta.clone());
                let mut stop = node;
                stop.id = next_id();
                stop.old.insert(eta.clone());
                for part in [&**x, &**y] {
                    if !stop.old.contains(part) {
                        stop.new.insert(part.clone());
                    }
                }
                stack.push(cont);
                stack.push(stop);
            }
            Formula::Next(x) => {
                node.old.insert(eta.clone());
                node.next.insert((**x).clone());
                stack.push(node);
            }
            Formula::Implies(..)
            | Formula::Iff(..)
            | Formula::Before(..)
            | Formula::WeakUntil(..)
            | Formula::Eventually(..)
            | Formula::Always(..) => {
                unreachable!("expand_graph requires positive normal form input")
            }
        }
    }
    completed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse;
    use rl_automata::Alphabet;
    use rl_buchi::UpWord;

    fn setup() -> (Labeling, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let lam = Labeling::canonical(&ab);
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        (lam, a, b)
    }

    fn sample_words(a: rl_automata::Symbol, b: rl_automata::Symbol) -> Vec<UpWord> {
        vec![
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::periodic(vec![a, b]).unwrap(),
            UpWord::periodic(vec![b, a]).unwrap(),
            UpWord::new(vec![a], vec![b]).unwrap(),
            UpWord::new(vec![b], vec![a]).unwrap(),
            UpWord::new(vec![a, a, b], vec![b, a]).unwrap(),
            UpWord::new(vec![b, b], vec![a, a, b]).unwrap(),
        ]
    }

    #[test]
    fn translation_agrees_with_direct_evaluation() {
        let (lam, a, b) = setup();
        let formulas = [
            "a",
            "!a",
            "X b",
            "a U b",
            "a R b",
            "[]<>a",
            "<>[]b",
            "[](a -> X b)",
            "a B b",
            "(a U b) & []<>a",
            "X X a | []b",
            "true U (a & X a)",
            "false",
            "true",
            "[](a <-> !b)",
        ];
        for text in formulas {
            let f = parse(text).unwrap();
            let aut = formula_to_buchi(&f, &lam);
            for w in sample_words(a, b) {
                assert_eq!(
                    aut.accepts_upword(&w),
                    evaluate(&f, &w, &lam),
                    "formula {text}, word {w}"
                );
            }
        }
    }

    #[test]
    fn box_diamond_automaton_shape() {
        let (lam, a, b) = setup();
        let aut = formula_to_buchi(&parse("[]<>a").unwrap(), &lam);
        assert!(aut.accepts_upword(&UpWord::periodic(vec![a, b, b]).unwrap()));
        assert!(!aut.accepts_upword(&UpWord::new(vec![a, a], vec![b]).unwrap()));
    }

    #[test]
    fn unsatisfiable_formula_yields_empty_automaton() {
        let (lam, _, _) = setup();
        let aut = formula_to_buchi(&parse("a & !a").unwrap(), &lam);
        assert!(aut.is_empty_language());
        let aut2 = formula_to_buchi(&parse("<>(a & !a)").unwrap(), &lam);
        assert!(aut2.is_empty_language());
    }

    #[test]
    fn valid_formula_is_universal() {
        let (lam, a, b) = setup();
        let aut = formula_to_buchi(&parse("a | !a").unwrap(), &lam);
        for w in sample_words(a, b) {
            assert!(aut.accepts_upword(&w), "word {w}");
        }
    }

    #[test]
    fn negation_gives_complement_on_samples() {
        let (lam, a, b) = setup();
        for text in ["[]<>a", "a U b", "X a", "a R (b | X a)"] {
            let f = parse(text).unwrap();
            let aut = formula_to_buchi(&f, &lam);
            let neg = formula_to_buchi(&f.clone().not(), &lam);
            for w in sample_words(a, b) {
                assert_ne!(
                    aut.accepts_upword(&w),
                    neg.accepts_upword(&w),
                    "formula {text}, word {w}"
                );
            }
        }
    }
}
