//! A recursive-descent parser for the ASCII PLTL syntax.
//!
//! Grammar, from loosest to tightest binding (matching
//! [`Formula`]'s `Display`):
//!
//! ```text
//! iff    := imp ( "<->" imp )*                (left-assoc)
//! imp    := or ( "->" imp )?                  (right-assoc)
//! or     := and ( "|" and )*
//! and    := until ( "&" until )*
//! until  := unary ( ("U" | "R" | "B" | "W") until )?   (right-assoc)
//! unary  := ("!" | "X" | "F" | "G" | "[]" | "<>") unary
//!         | "true" | "false" | ident | "(" iff ")"
//! ```
//!
//! `F`/`<>` are eventually, `G`/`[]` always. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*` except the keywords.

use std::error::Error;
use std::fmt;

use crate::ast::Formula;

/// Parse error with a character position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Next,
    Until,
    Release,
    Before,
    WeakUntil,
    Eventually,
    Always,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '!' => {
                toks.push((i, Tok::Not));
                i += 1;
            }
            '&' => {
                // accept both & and &&
                toks.push((i, Tok::And));
                i += if input[i..].starts_with("&&") { 2 } else { 1 };
            }
            '|' => {
                toks.push((i, Tok::Or));
                i += if input[i..].starts_with("||") { 2 } else { 1 };
            }
            '-' => {
                if input[i..].starts_with("->") {
                    toks.push((i, Tok::Implies));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                if input[i..].starts_with("<->") {
                    toks.push((i, Tok::Iff));
                    i += 3;
                } else if input[i..].starts_with("<>") {
                    toks.push((i, Tok::Eventually));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '<->' or '<>'".into(),
                    });
                }
            }
            '[' => {
                if input[i..].starts_with("[]") {
                    toks.push((i, Tok::Always));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '[]'".into(),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "U" => Tok::Until,
                    "R" => Tok::Release,
                    "B" => Tok::Before,
                    "W" => Tok::WeakUntil,
                    "X" => Tok::Next,
                    "F" => Tok::Eventually,
                    "G" => Tok::Always,
                    _ => Tok::Ident(word.to_owned()),
                };
                toks.push((start, tok));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |(p, _)| *p)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.imp()?;
        while self.peek() == Some(&Tok::Iff) {
            self.bump();
            let right = self.imp()?;
            left = left.iff(right);
        }
        Ok(left)
    }

    fn imp(&mut self) -> Result<Formula, ParseError> {
        let left = self.or()?;
        if self.peek() == Some(&Tok::Implies) {
            self.bump();
            let right = self.imp()?;
            Ok(left.implies(right))
        } else {
            Ok(left)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let right = self.and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.until()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let right = self.until()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn until(&mut self) -> Result<Formula, ParseError> {
        let left = self.unary()?;
        match self.peek() {
            Some(&Tok::Until) => {
                self.bump();
                let right = self.until()?;
                Ok(left.until(right))
            }
            Some(&Tok::Release) => {
                self.bump();
                let right = self.until()?;
                Ok(left.release(right))
            }
            Some(&Tok::Before) => {
                self.bump();
                let right = self.until()?;
                Ok(left.before(right))
            }
            Some(&Tok::WeakUntil) => {
                self.bump();
                let right = self.until()?;
                Ok(left.weak_until(right))
            }
            _ => Ok(left),
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(&Tok::Not) => {
                self.bump();
                Ok(self.unary()?.not())
            }
            Some(&Tok::Next) => {
                self.bump();
                Ok(self.unary()?.next())
            }
            Some(&Tok::Eventually) => {
                self.bump();
                Ok(self.unary()?.eventually())
            }
            Some(&Tok::Always) => {
                self.bump();
                Ok(self.unary()?.always())
            }
            Some(&Tok::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Some(&Tok::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(_)) => {
                if let Some(Tok::Ident(name)) = self.bump() {
                    Ok(Formula::atom(name))
                } else {
                    unreachable!()
                }
            }
            Some(&Tok::LParen) => {
                self.bump();
                let inner = self.iff()?;
                if self.bump() != Some(Tok::RParen) {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            _ => Err(self.error("expected a formula")),
        }
    }
}

/// Parses a PLTL formula from ASCII syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
///
/// # Example
///
/// ```
/// use rl_logic::{parse, Formula};
///
/// # fn main() -> Result<(), rl_logic::ParseError> {
/// let f = parse("[]<>result")?;
/// assert_eq!(f, Formula::atom("result").eventually().always());
/// let g = parse("a U (b & !c)")?;
/// assert_eq!(g.to_string(), "a U (b & !c)");
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: input.len(),
    };
    let f = p.iff()?;
    if p.pos != p.toks.len() {
        return Err(p.error("trailing input"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_property() {
        assert_eq!(
            parse("[]<>result").unwrap(),
            Formula::atom("result").eventually().always()
        );
        assert_eq!(parse("G F result").unwrap(), parse("[]<>result").unwrap());
    }

    #[test]
    fn precedence_until_tighter_than_and() {
        assert_eq!(
            parse("a & b U c").unwrap(),
            Formula::atom("a").and(Formula::atom("b").until(Formula::atom("c")))
        );
    }

    #[test]
    fn until_is_right_associative() {
        assert_eq!(
            parse("a U b U c").unwrap(),
            Formula::atom("a").until(Formula::atom("b").until(Formula::atom("c")))
        );
    }

    #[test]
    fn implication_is_right_associative() {
        assert_eq!(
            parse("a -> b -> c").unwrap(),
            Formula::atom("a").implies(Formula::atom("b").implies(Formula::atom("c")))
        );
    }

    #[test]
    fn before_operator() {
        assert_eq!(
            parse("a B b").unwrap(),
            Formula::atom("a").before(Formula::atom("b"))
        );
    }

    #[test]
    fn errors_have_positions() {
        let err = parse("a U").unwrap_err();
        assert_eq!(err.position, 3);
        let err = parse("a @ b").unwrap_err();
        assert_eq!(err.position, 2);
        let err = parse("(a").unwrap_err();
        assert!(err.message.contains(")"));
    }

    #[test]
    fn double_ampersand_accepted() {
        assert_eq!(parse("a && b").unwrap(), parse("a & b").unwrap());
        assert_eq!(parse("a || b").unwrap(), parse("a | b").unwrap());
    }

    #[test]
    fn display_parse_roundtrip_samples() {
        for text in [
            "a U b & c",
            "(a U b) & c",
            "!(a | b) -> X c",
            "[](<>a <-> b R c)",
            "a B (b U c)",
            "X(a & b) | false",
        ] {
            let f = parse(text).unwrap();
            let again = parse(&f.to_string()).unwrap();
            assert_eq!(f, again, "round-trip of {text} via {f}");
        }
    }
}
