//! Propositional linear temporal logic (PLTL) for the relative-liveness
//! workspace.
//!
//! Implements Section 3 and Section 7 of Nitsche & Wolper (PODC '97):
//!
//! * [`Formula`] — PLTL syntax with the paper's operators (`O`/`X`, `U`, and
//!   the derived `∨ ⇒ ⇔ ◇ □ B`), plus release `R` for positive normal form,
//! * [`parse`] — an ASCII concrete syntax (`[]<>result`, `a U (b & !c)`, …),
//! * positive normal form (Definition 7.1) and Σ-normal form
//!   (Definition 7.2),
//! * [`Labeling`] — labeling functions `λ : Σ → 2^AP`, including the
//!   canonical `λ_Σ` and support for the homomorphism labeling `λ_hΣΣ'`
//!   (Definition 7.3) via [`EPSILON_PROP`],
//! * [`evaluate`] — exact semantics on ultimately periodic words,
//! * [`formula_to_buchi`] — GPVW tableau translation to Büchi automata,
//! * [`transform_t`] / [`r_bar`] — the property transport of Definition 7.4
//!   (Figure 5), reconstructed and verified against Lemma 7.5.
//!
//! # Example
//!
//! ```
//! use rl_automata::Alphabet;
//! use rl_buchi::UpWord;
//! use rl_logic::{evaluate, formula_to_buchi, parse, Labeling};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ab = Alphabet::new(["request", "result", "reject"])?;
//! let lam = Labeling::canonical(&ab);
//! let eta = parse("[]<>result")?;
//!
//! let request = ab.symbol("request").unwrap();
//! let result = ab.symbol("result").unwrap();
//! let reject = ab.symbol("reject").unwrap();
//!
//! let good = UpWord::periodic(vec![request, result])?;
//! let bad = UpWord::new(vec![request, result], vec![request, reject])?;
//! assert!(evaluate(&eta, &good, &lam));
//! assert!(!evaluate(&eta, &bad, &lam));
//!
//! // The same answers through the automata-theoretic route:
//! let aut = formula_to_buchi(&eta, &lam);
//! assert!(aut.accepts_upword(&good));
//! assert!(!aut.accepts_upword(&bad));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod eval;
mod json;
mod labeling;
mod parser;
mod simplify;
mod transform;
mod translate;

pub use ast::Formula;
pub use eval::{evaluate, truth};
pub use labeling::{Labeling, EPSILON_PROP};
pub use parser::{parse, ParseError};
pub use simplify::simplify;
pub use transform::{is_sigma_normal_form, r_bar, r_bar_strict, to_sigma_normal_form, transform_t};
pub use translate::formula_to_buchi;
