//! Limits of regular languages and behaviors of transition systems.
//!
//! The paper (Section 3) defines `lim(L) = { x ∈ Σ^ω | ∃^∞ w ∈ pre(x): w ∈ L }`
//! and models systems as finite-state transition systems without acceptance,
//! whose ω-behavior is the limit of their prefix-closed finite-word language.

use rl_automata::{AutomataError, Dfa, Guard, Nfa, TransitionSystem};

use crate::buchi::Buchi;

/// The Büchi automaton accepting `lim(L(d))` for a *deterministic* automaton.
///
/// For a DFA the unique run of `x` visits accepting states at exactly the
/// positions whose prefix is in `L`, so `x ∈ lim(L)` iff the run hits
/// acceptance infinitely often — i.e. the same graph read with Büchi
/// semantics. (This correspondence is false for NFAs, which is why
/// [`limit_of_regular`] determinizes first.)
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Nfa};
/// use rl_buchi::{limit_of_dfa, UpWord};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// // L = words ending in a  ⇒  lim(L) = "infinitely many a".
/// let d = Nfa::from_parts(ab, 2, [0], [1], [(0, a, 1), (0, b, 0), (1, a, 1), (1, b, 0)])?
///     .determinize();
/// let lim = limit_of_dfa(&d);
/// assert!(lim.accepts_upword(&UpWord::periodic(vec![a, b])?));
/// assert!(!lim.accepts_upword(&UpWord::new(vec![a], vec![b])?));
/// # Ok(())
/// # }
/// ```
pub fn limit_of_dfa(d: &Dfa) -> Buchi {
    let mut b = Buchi::new(d.alphabet().clone());
    for q in 0..d.state_count() {
        b.add_state(d.is_accepting(q));
    }
    if d.state_count() > 0 {
        b.set_initial(d.initial());
    }
    for (p, a, q) in d.transitions() {
        b.add_transition(p, a, q);
    }
    b
}

/// The Büchi automaton accepting `lim(L(nfa))`, via determinization.
pub fn limit_of_regular(nfa: &Nfa) -> Buchi {
    limit_of_dfa(&nfa.determinize())
}

/// [`limit_of_regular`] under a resource [`Guard`]: the subset construction
/// is charged against the guard's budget.
///
/// # Errors
///
/// Returns a budget error when the guard trips.
pub fn limit_of_regular_with(nfa: &Nfa, guard: &Guard) -> Result<Buchi, AutomataError> {
    let _span = guard.span("limit");
    Ok(limit_of_dfa(&nfa.determinize_with(guard)?))
}

/// The Büchi automaton accepting `lim(L(nfa))` for a prefix-closed NFA
/// with *every state accepting* — no determinization.
///
/// For such an automaton König's lemma closes the gap that makes
/// [`limit_of_regular`] determinize in general: the run tree of an ω-word
/// `x` has a node at depth `n` exactly when `x`'s length-`n` prefix is in
/// `L`, every node's parent is a node (prefixes of prefixes are reachable
/// through the same run), and branching is finite — so *all* prefixes of
/// `x` being in `L` yields an infinite path, i.e. an infinite run. With
/// all states accepting, that run is Büchi-accepting verbatim. Hence
/// `lim(L)` is the same graph read with Büchi semantics, and the
/// exponential subset construction is skipped entirely.
///
/// This is the limit constructor of the lazy fused pipeline
/// ([`Guard::lazy_enabled`]); callers must uphold the all-states-accepting
/// precondition (transition-system NFAs and [`Buchi::prefix_nfa`] outputs
/// do by construction).
pub fn limit_of_prefix_closed(nfa: &Nfa) -> Buchi {
    debug_assert!(
        (0..nfa.state_count()).all(|q| nfa.is_accepting(q)),
        "limit_of_prefix_closed needs an all-accepting (prefix-closed) NFA"
    );
    Buchi::from_nfa_structure(nfa)
}

/// The ω-behavior `lim(L)` of a transition system, where `L` is its
/// prefix-closed finite-word language (Definition 6.2 with `h = id`).
///
/// Every state is accepting, so the behaviors are exactly the infinite runs;
/// deadlocked branches contribute nothing (they admit no infinite run).
/// Transition systems are deterministic-or-not; the limit is taken on the
/// determinized language to stay faithful to the definition.
pub fn behaviors_of_ts(ts: &TransitionSystem) -> Buchi {
    limit_of_regular(&ts.to_nfa())
}

/// [`behaviors_of_ts`] under a resource [`Guard`]: determinizing a
/// nondeterministic transition system can blow up exponentially, so the
/// subset construction is charged against the guard's budget.
///
/// # Errors
///
/// Returns a budget error when the guard trips.
pub fn behaviors_of_ts_with(ts: &TransitionSystem, guard: &Guard) -> Result<Buchi, AutomataError> {
    let _span = guard.span("behaviors");
    let nfa = ts.to_nfa();
    if guard.lazy_enabled() {
        // Lazy pipeline: a transition system's NFA is all-accepting and
        // prefix-closed, so `lim` is the graph itself under Büchi semantics
        // (see `limit_of_prefix_closed`) — the subset construction that
        // dominates worst cases like needle24.ts is skipped. The copied
        // graph is still charged so budgets and counters stay honest.
        let _lim = guard.span("limit");
        for _ in 0..nfa.state_count() {
            guard.charge_state()?;
        }
        for _ in 0..nfa.transition_count() {
            guard.charge_transition()?;
        }
        return Ok(limit_of_prefix_closed(&nfa));
    }
    limit_of_regular_with(&nfa, guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upword::UpWord;
    use rl_automata::Alphabet;

    #[test]
    fn limit_excludes_deadlocked_runs() {
        let ab = Alphabet::new(["go", "stop"]).unwrap();
        let go = ab.symbol("go").unwrap();
        let stop = ab.symbol("stop").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state(); // deadlock after "stop"
        ts.set_initial(s0);
        ts.add_transition(s0, go, s0);
        ts.add_transition(s0, stop, s1);
        let b = behaviors_of_ts(&ts);
        assert!(b.accepts_upword(&UpWord::periodic(vec![go]).unwrap()));
        // "stop" leads to deadlock: no ω-word goes through it.
        assert!(!b.accepts_upword(&UpWord::new(vec![stop], vec![go]).unwrap()));
    }

    #[test]
    fn limit_of_prefix_closed_equals_infinite_runs() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s1);
        ts.add_transition(s1, b, s0);
        let beh = behaviors_of_ts(&ts);
        assert!(beh.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
        assert!(!beh.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(!beh.accepts_upword(&UpWord::periodic(vec![b, a]).unwrap()));
    }

    #[test]
    fn limit_of_finite_language_is_empty() {
        let ab = Alphabet::new(["a"]).unwrap();
        let a = ab.symbol("a").unwrap();
        // L = {ε, a}: finite, so lim(L) = ∅.
        let d = Nfa::from_parts(ab, 2, [0], [0, 1], [(0, a, 1)])
            .unwrap()
            .determinize();
        assert!(limit_of_dfa(&d).is_empty_language());
    }
}
