//! Serde support (behind the `serde` feature).
//!
//! A [`Buchi`] automaton serializes as its underlying NFA structure (same
//! wire shape as [`rl_automata::Nfa`], with `accepting` read as the Büchi
//! acceptance set); an [`UpWord`] as `{prefix, period}` symbol-index lists.

use serde::{Deserialize, Serialize};

use rl_automata::{Nfa, Symbol};

use crate::buchi::Buchi;
use crate::upword::UpWord;

impl Serialize for Buchi {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.to_nfa_structure().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Buchi {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Buchi, D::Error> {
        let nfa = Nfa::deserialize(deserializer)?;
        Ok(Buchi::from_nfa_structure(&nfa))
    }
}

#[derive(Serialize, Deserialize)]
struct UpWordParts {
    prefix: Vec<usize>,
    period: Vec<usize>,
}

impl Serialize for UpWord {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        UpWordParts {
            prefix: self.prefix().iter().map(|s| s.index()).collect(),
            period: self.period().iter().map(|s| s.index()).collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for UpWord {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<UpWord, D::Error> {
        let parts = UpWordParts::deserialize(deserializer)?;
        UpWord::new(
            parts.prefix.into_iter().map(Symbol::from_index).collect(),
            parts.period.into_iter().map(Symbol::from_index).collect(),
        )
        .map_err(|_| serde::de::Error::custom("ω-word period must be non-empty"))
    }
}
