//! Büchi emptiness: SCC analysis, accepting lassos, ultimately-periodic
//! membership.

use std::collections::VecDeque;

use rl_automata::{StateId, Symbol};

use crate::buchi::Buchi;
use crate::upword::UpWord;

/// Iterative Tarjan SCC. Returns `comp[v]` = component id (ids are in
/// reverse topological order of discovery) for all `n` nodes of the graph
/// given by `succ`.
fn tarjan(n: usize, succ: &dyn Fn(usize) -> Vec<usize>) -> Vec<usize> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, iterator position over successors).
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> = vec![(root, succ(root), 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some((v, kids, mut i)) = call.pop() {
            let mut descended = false;
            while i < kids.len() {
                let w = kids[i];
                i += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((v, kids, i));
                    call.push((w, succ(w), 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            // All successors processed: maybe pop an SCC.
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp[w] = next_comp;
                    if w == v {
                        break;
                    }
                }
                next_comp += 1;
            }
            if let Some(&mut (parent, _, _)) = call.last_mut() {
                low[parent] = low[parent].min(low[v]);
            }
        }
    }
    comp
}

/// Marks the states of `b` that lie on an *accepting cycle*: a cycle (within
/// the states marked reachable in `reach`) whose SCC contains an accepting
/// state. These are the recurrence cores of accepting runs.
pub(crate) fn accepting_cycle_states(b: &Buchi, reach: &[bool]) -> Vec<bool> {
    let n = b.state_count();
    let succ = |v: usize| -> Vec<usize> {
        if !reach[v] {
            return Vec::new();
        }
        let mut out = Vec::new();
        for a in b.alphabet().symbols() {
            for q in b.successors(v, a) {
                if reach[q] {
                    out.push(q);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    let comp = tarjan(n, &succ);
    let ncomp = comp
        .iter()
        .filter(|&&c| c != usize::MAX)
        .max()
        .map_or(0, |&m| m + 1);
    // An SCC is "cyclic" when it has an internal edge (covers self-loops and
    // non-trivial SCCs alike).
    let mut cyclic = vec![false; ncomp];
    let mut has_acc = vec![false; ncomp];
    for v in 0..n {
        if !reach[v] {
            continue;
        }
        if b.is_accepting(v) {
            has_acc[comp[v]] = true;
        }
        for w in succ(v) {
            if comp[w] == comp[v] {
                cyclic[comp[v]] = true;
            }
        }
    }
    (0..n)
        .map(|v| reach[v] && cyclic[comp[v]] && has_acc[comp[v]])
        .collect()
}

/// Finds an accepting lasso of `b`: an ultimately periodic word `u·v^ω`
/// accepted by `b`, or `None` when `L(b) = ∅`.
pub(crate) fn accepting_lasso(b: &Buchi) -> Option<UpWord> {
    let n = b.state_count();
    let mut reach = vec![false; n];
    let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut queue: VecDeque<StateId> = VecDeque::new();
    for &q in b.initial() {
        reach[q] = true;
        queue.push_back(q);
    }
    while let Some(p) = queue.pop_front() {
        for a in b.alphabet().symbols() {
            for q in b.successors(p, a) {
                if !reach[q] {
                    reach[q] = true;
                    parent[q] = Some((p, a));
                    queue.push_back(q);
                }
            }
        }
    }
    let core = accepting_cycle_states(b, &reach);
    // Pick an accepting state inside a cyclic accepting SCC (one must exist
    // inside the core: the SCC contains an accepting state by definition).
    let target = (0..n).find(|&q| core[q] && b.is_accepting(q))?;
    // Prefix: initial → target.
    let mut prefix = Vec::new();
    let mut cur = target;
    while let Some((p, a)) = parent[cur] {
        prefix.push(a);
        cur = p;
    }
    prefix.reverse();
    // Cycle: target → target within the core's SCC (stay inside `core`).
    let mut cparent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: VecDeque<StateId> = VecDeque::new();
    // Start from target's successors so that the cycle has length ≥ 1.
    for a in b.alphabet().symbols() {
        for q in b.successors(target, a) {
            if !core[q] {
                continue;
            }
            if q == target {
                return Some(
                    UpWord::new(prefix, vec![a]).expect("period of length 1 is non-empty"),
                );
            }
            if !seen[q] {
                seen[q] = true;
                cparent[q] = Some((target, a));
                queue.push_back(q);
            }
        }
    }
    while let Some(p) = queue.pop_front() {
        for a in b.alphabet().symbols() {
            for q in b.successors(p, a) {
                if !core[q] {
                    continue;
                }
                if q == target {
                    // Reconstruct cycle labels: target → … → p → target.
                    let mut labels = vec![a];
                    let mut cur = p;
                    while let Some((r, c)) = cparent[cur] {
                        labels.push(c);
                        cur = r;
                    }
                    labels.reverse();
                    return Some(UpWord::new(prefix, labels).expect("non-empty cycle"));
                }
                if !seen[q] {
                    seen[q] = true;
                    cparent[q] = Some((p, a));
                    queue.push_back(q);
                }
            }
        }
    }
    // `target` is in a cyclic SCC containing it, so a cycle must exist.
    unreachable!("state in cyclic SCC must lie on a cycle")
}

/// Exact membership of the ultimately periodic word `w` in `L(b)`.
pub(crate) fn accepts_upword(b: &Buchi, w: &UpWord) -> bool {
    // Product of b with the lasso graph of w: nodes (q, i) encoded as
    // q * lasso_len + i.
    let n = b.state_count();
    let len = w.lasso_len();
    let total = n * len;
    let node = |q: StateId, i: usize| q * len + i;
    let succ = |v: usize| -> Vec<usize> {
        let (q, i) = (v / len, v % len);
        let a = w.at(i);
        let j = w.lasso_next(i);
        b.successors(q, a).map(|q2| node(q2, j)).collect()
    };
    // Reachability from initial nodes.
    let mut reach = vec![false; total];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &q in b.initial() {
        let v = node(q, 0);
        if !reach[v] {
            reach[v] = true;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        for u in succ(v) {
            if !reach[u] {
                reach[u] = true;
                queue.push_back(u);
            }
        }
    }
    // A run of b over w exists with infinitely many accepting states iff the
    // product graph has a reachable cycle through an accepting node.
    let succ_reach = |v: usize| -> Vec<usize> {
        if !reach[v] {
            return Vec::new();
        }
        succ(v).into_iter().filter(|&u| reach[u]).collect()
    };
    let comp = tarjan(total, &succ_reach);
    let ncomp = comp
        .iter()
        .filter(|&&c| c != usize::MAX)
        .max()
        .map_or(0, |&m| m + 1);
    let mut cyclic = vec![false; ncomp];
    let mut has_acc = vec![false; ncomp];
    for v in 0..total {
        if !reach[v] {
            continue;
        }
        if b.is_accepting(v / len) {
            has_acc[comp[v]] = true;
        }
        for u in succ_reach(v) {
            if comp[u] == comp[v] {
                cyclic[comp[v]] = true;
            }
        }
    }
    (0..ncomp).any(|c| cyclic[c] && has_acc[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;

    #[test]
    fn tarjan_finds_components() {
        // 0 → 1 → 2 → 0 (one SCC), 3 isolated, 2 → 3.
        let adj: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let comp = tarjan(4, &|v| adj[v].clone());
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn tarjan_handles_self_loop() {
        let adj: Vec<Vec<usize>> = vec![vec![0], vec![]];
        let comp = tarjan(2, &|v| adj[v].clone());
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn lasso_witness_is_accepted() {
        let ab = Alphabet::new(["x", "y"]).unwrap();
        let x = ab.symbol("x").unwrap();
        let y = ab.symbol("y").unwrap();
        // q0 --x--> q1(acc) --y--> q2 --x--> q1
        let b = Buchi::from_parts(ab, 3, [0], [1], [(0, x, 1), (1, y, 2), (2, x, 1)]).unwrap();
        let w = accepting_lasso(&b).expect("nonempty");
        assert!(accepts_upword(&b, &w));
        assert_eq!(w.prefix(), &[x]);
        assert_eq!(w.period().len(), 2);
    }

    #[test]
    fn membership_respects_prefix_positions() {
        let ab = Alphabet::new(["x", "y"]).unwrap();
        let x = ab.symbol("x").unwrap();
        let y = ab.symbol("y").unwrap();
        // Accepts exactly x^ω (single accepting self-loop on x).
        let b = Buchi::from_parts(ab, 1, [0], [0], [(0, x, 0)]).unwrap();
        assert!(accepts_upword(&b, &UpWord::periodic(vec![x]).unwrap()));
        assert!(!accepts_upword(&b, &UpWord::new(vec![y], vec![x]).unwrap()));
        assert!(!accepts_upword(
            &b,
            &UpWord::new(vec![x], vec![x, y]).unwrap()
        ));
    }
}
