//! Büchi complementation (rank-based, Kupferman–Vardi) and the ω-language
//! inclusion/equivalence tests built on it.
//!
//! Complementation is inherently exponential (`2^O(n log n)`); the paper only
//! needs it to decide relative safety for properties given as raw Büchi
//! automata (Theorem 4.5), which in practice are small. Properties given as
//! PLTL formulas avoid this construction entirely — `rl-logic` translates the
//! *negated* formula instead.

use std::collections::VecDeque;
use std::sync::Arc;

use rl_automata::{AutomataError, Guard, Interner, Pool, StateId, StateSet, Symbol};

use crate::buchi::Buchi;
use crate::upword::UpWord;

/// A level ranking: the current subset of `A`-states, each with a rank.
type Ranking = Vec<(StateId, u32)>;
/// Complement state: ranking + the "owing" set of the breakpoint
/// construction.
type CState = (Ranking, Vec<StateId>);

/// Unset entry of the per-state rank-bound table (max_rank ≤ 2n < MAX).
const NO_BOUND: u32 = u32::MAX;

/// Minimum BFS-layer width at which complementation fans layer expansion out
/// across the guard's pool (mirrors the subset-construction threshold in
/// rl-automata). A performance knob only: outputs are identical either way.
const PAR_LAYER_THRESHOLD: usize = 16;

/// Returns a Büchi automaton accepting exactly `Σ^ω \ L(a)`.
///
/// Implements the Kupferman–Vardi rank-based construction: states are level
/// rankings (subset states annotated with ranks `0..=2n`, accepting states
/// even-ranked) plus a breakpoint set `O`; a word is in the complement iff
/// some ranking run exists in which `O` empties infinitely often.
///
/// The result can be exponentially larger than `a` — use only on small
/// automata (the deciders in `rl-core` reserve it for automaton-given
/// properties).
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::{complement, Buchi, UpWord};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// // "infinitely many a"
/// let m = Buchi::from_parts(
///     ab, 2, [0], [1],
///     [(0, b, 0), (0, a, 1), (1, a, 1), (1, b, 0)],
/// )?;
/// let c = complement(&m);
/// // complement = "finitely many a"
/// assert!(c.accepts_upword(&UpWord::new(vec![a, a], vec![b])?));
/// assert!(!c.accepts_upword(&UpWord::periodic(vec![a, b])?));
/// # Ok(())
/// # }
/// ```
pub fn complement(a: &Buchi) -> Buchi {
    complement_with(a, &Guard::unlimited()).expect("an unlimited guard never trips")
}

/// [`complement`] under a resource [`Guard`].
///
/// Every interned ranking state is charged against the guard's state budget
/// and every enumerated ranking candidate against its transition budget (the
/// candidate enumeration, not the interning, is where memory blows up).
/// When the guard carries an `OpCache`, a repeated complementation of a
/// structurally equal automaton is answered from the memo table.
///
/// # Errors
///
/// Returns a budget error when the guard trips.
pub fn complement_with(a: &Buchi, guard: &Guard) -> Result<Buchi, AutomataError> {
    if guard.op_cache().is_none() {
        return complement_inner(a, guard);
    }
    let hash = a.structural_hash();
    let entry = guard.cached::<(Arc<Buchi>, Buchi), AutomataError>(
        "buchi_complement",
        hash,
        |e| *e.0 == *a,
        || Ok((guard.operand(hash, a), complement_inner(a, guard)?)),
    )?;
    Ok(entry.1.clone())
}

/// Expands one `(complement state, symbol)` cell: enumerates every successor
/// ranking within the rank bounds and returns the resulting complement-state
/// keys in enumeration order. Pure except for `on_candidate`, which fires
/// once per enumerated partial ranking — the sequential path charges the
/// guard's transition budget there, pool workers count candidates (and poll
/// the cancellation probe) so the merge can replay exactly that many
/// charges.
fn expand_cell(
    a: &Buchi,
    n: usize,
    f: &Ranking,
    o: &[StateId],
    sym: Symbol,
    mut on_candidate: impl FnMut() -> Result<(), AutomataError>,
) -> Result<Vec<CState>, AutomataError> {
    // Successor subset with per-state rank bounds.
    let mut bound: Vec<u32> = vec![NO_BOUND; n];
    for &(q, r) in f {
        for q2 in a.successors(q, sym) {
            bound[q2] = bound[q2].min(r);
        }
    }
    // δ(O, sym): successors of the owing set.
    let mut o_succ = StateSet::with_universe(n);
    for &q in o {
        for q2 in a.successors(q, sym) {
            o_succ.insert(q2);
        }
    }

    // Enumerate all rankings g within bounds (accepting ⇒ even rank).
    let targets: Vec<(StateId, u32)> = bound
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b != NO_BOUND)
        .map(|(q2, &b)| (q2, b))
        .collect();
    let mut assignments: Vec<Ranking> = vec![Vec::new()];
    for &(q2, b) in &targets {
        let mut next = Vec::new();
        for g in &assignments {
            for r in 0..=b {
                if a.is_accepting(q2) && r % 2 == 1 {
                    continue;
                }
                // Each candidate becomes one complement transition; the
                // callback bounds the pre-interning blow-up.
                on_candidate()?;
                let mut g2 = g.clone();
                g2.push((q2, r));
                next.push(g2);
            }
        }
        assignments = next;
    }

    Ok(assignments
        .into_iter()
        .map(|g| {
            let even: Vec<StateId> = g
                .iter()
                .filter(|&&(_, r)| r % 2 == 0)
                .map(|&(q, _)| q)
                .collect();
            let o2: Vec<StateId> = if o.is_empty() {
                even
            } else {
                even.into_iter().filter(|&q| o_succ.contains(q)).collect()
            };
            (g, o2)
        })
        .collect())
}

fn complement_inner(a: &Buchi, guard: &Guard) -> Result<Buchi, AutomataError> {
    let _span = guard.span("buchi_complement");
    // Restrict to reachable states (language-preserving, shrinks n).
    let a = restrict_reachable(a);
    let n = a.state_count();
    if n == 0 || a.initial().is_empty() {
        return Ok(Buchi::universal(a.alphabet().clone()));
    }
    let max_rank = 2 * n as u32;

    let mut out = Buchi::new(a.alphabet().clone());
    // Interner ids align with `out` state ids: both are assigned
    // sequentially, always in the same order.
    let mut index: Interner<CState> = Interner::new();
    let mut work: VecDeque<StateId> = VecDeque::new();

    let init: CState = (
        a.initial().iter().map(|&q| (q, max_rank)).collect(),
        Vec::new(),
    );
    // Initial ranking must respect parity for accepting states; max_rank is
    // even, so it always does.
    guard.charge_state()?;
    let id = out.add_state(true); // O = ∅
    index.intern(init);
    out.set_initial(id);
    work.push_back(id);

    if let Some(pool) = guard.par_pool() {
        let pool = pool.clone();
        return complement_layered(&a, guard, &pool, index, out, id);
    }

    while let Some(id) = work.pop_front() {
        guard.note_frontier(work.len());
        let (f, o) = index.key(id).clone();
        for sym in a.alphabet().symbols() {
            let keys = expand_cell(&a, n, &f, &o, sym, || guard.charge_transition())?;
            for key in keys {
                let nid = match index.get(&key) {
                    Some(nid) => nid,
                    None => {
                        guard.charge_state()?;
                        let nid = out.add_state(key.1.is_empty());
                        index.intern(key);
                        work.push_back(nid);
                        nid
                    }
                };
                out.add_transition(id, sym, nid);
            }
        }
    }
    Ok(out)
}

/// Layer-synchronous rank-based complementation: the parallel twin of the
/// FIFO loop in [`complement_inner`], bit-for-bit equivalent to it.
///
/// Pool workers run the *pure* part — [`expand_cell`] per `(state, symbol)`,
/// counting the enumerated candidates and polling the guard's probe every
/// 256 of them so one timeout/cancel stops every worker — while a sequential
/// merge replays all effects in FIFO order: exactly one transition charge per
/// counted candidate, then state interning/charging per key. Emitted
/// automata, charge sequences, and budget trip points are identical for
/// every thread count. See `DESIGN.md` §10.
fn complement_layered(
    a: &Buchi,
    guard: &Guard,
    pool: &Arc<Pool>,
    mut index: Interner<CState>,
    mut out: Buchi,
    first: StateId,
) -> Result<Buchi, AutomataError> {
    /// Per-symbol worker output: candidate count, successor keys in order.
    type SymCell = (usize, Vec<CState>);
    type Row = Vec<SymCell>;

    let n = a.state_count();
    let shared = Arc::new(a.clone());
    let probe = guard.probe();
    let symbols: Vec<Symbol> = a.alphabet().symbols().collect();
    let mut layer: Vec<StateId> = vec![first];
    while !layer.is_empty() {
        guard.trace_instant("complement-layer", Some(("width", layer.len() as u64)));
        let items: Arc<Vec<CState>> =
            Arc::new(layer.iter().map(|&id| index.key(id).clone()).collect());
        let expand = {
            let a = shared.clone();
            let probe = probe.clone();
            let symbols = symbols.clone();
            move |i: usize| -> Result<Row, AutomataError> {
                probe.check()?;
                let (f, o) = &items[i];
                let mut row = Vec::with_capacity(symbols.len());
                for &sym in &symbols {
                    let mut candidates = 0usize;
                    let keys = expand_cell(&a, n, f, o, sym, || {
                        candidates += 1;
                        if candidates.is_multiple_of(256) {
                            probe.check()?;
                        }
                        Ok(())
                    })?;
                    row.push((candidates, keys));
                }
                Ok(row)
            }
        };
        let rows: Vec<Result<Row, AutomataError>> = if layer.len() >= PAR_LAYER_THRESHOLD {
            pool.map_indexed(layer.len(), Arc::new(expand))
        } else {
            (0..layer.len()).map(expand).collect()
        };

        // Sequential merge, in FIFO order (cf. the frontier bookkeeping in
        // the sequential loop: rest of this layer + discoveries so far).
        let m = layer.len();
        let mut next_layer: Vec<StateId> = Vec::new();
        for (li, (&id, row)) in layer.iter().zip(rows).enumerate() {
            guard.note_frontier((m - 1 - li) + next_layer.len());
            for (&sym, (candidates, keys)) in symbols.iter().zip(row?) {
                for _ in 0..candidates {
                    guard.charge_transition()?;
                }
                for key in keys {
                    let nid = match index.get(&key) {
                        Some(nid) => nid,
                        None => {
                            guard.charge_state()?;
                            let nid = out.add_state(key.1.is_empty());
                            index.intern(key);
                            next_layer.push(nid);
                            nid
                        }
                    };
                    out.add_transition(id, sym, nid);
                }
            }
        }
        layer = next_layer;
    }
    Ok(out)
}

fn restrict_reachable(a: &Buchi) -> Buchi {
    let nfa = a.to_nfa_structure();
    let reach = nfa.reachable();
    Buchi::from_nfa_structure(&nfa.restrict(&reach))
}

/// Decides ω-language inclusion `L(a) ⊆ L(b)`; on failure returns a witness
/// ultimately periodic word in `L(a) \ L(b)`.
///
/// Built on [`complement`], so exponential in `b` — keep `b` small.
///
/// # Errors
///
/// Returns [`rl_automata::AutomataError::AlphabetMismatch`] when the
/// alphabets differ.
pub fn omega_included(a: &Buchi, b: &Buchi) -> Result<Option<UpWord>, rl_automata::AutomataError> {
    omega_included_with(a, b, &Guard::unlimited())
}

/// [`omega_included`] under a resource [`Guard`]: both the complementation of
/// `b` and the intersection product are charged against the guard's budget.
///
/// # Errors
///
/// Returns [`rl_automata::AutomataError::AlphabetMismatch`] when the
/// alphabets differ, or a budget error when the guard trips.
pub fn omega_included_with(
    a: &Buchi,
    b: &Buchi,
    guard: &Guard,
) -> Result<Option<UpWord>, rl_automata::AutomataError> {
    let _span = guard.span("omega_inclusion");
    let diff = a.intersection_with(&complement_with(b, guard)?, guard)?;
    Ok(diff.accepted_upword())
}

/// Decides ω-language equivalence `L(a) = L(b)`.
///
/// # Errors
///
/// Returns [`rl_automata::AutomataError::AlphabetMismatch`] when the
/// alphabets differ.
pub fn omega_equivalent(a: &Buchi, b: &Buchi) -> Result<bool, rl_automata::AutomataError> {
    Ok(omega_included(a, b)?.is_none() && omega_included(b, a)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;

    fn ab2() -> (Alphabet, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    fn inf_a() -> Buchi {
        let (ab, a, b) = ab2();
        Buchi::from_parts(
            ab,
            2,
            [0],
            [1],
            [(0, b, 0), (0, a, 1), (1, a, 1), (1, b, 0)],
        )
        .unwrap()
    }

    #[test]
    fn complement_flips_membership_on_samples() {
        let (_, a, b) = ab2();
        let m = inf_a();
        let c = complement(&m);
        let words = [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::periodic(vec![a, b]).unwrap(),
            UpWord::new(vec![a, a, a], vec![b]).unwrap(),
            UpWord::new(vec![b, b], vec![a, b, b]).unwrap(),
        ];
        for w in &words {
            assert_ne!(m.accepts_upword(w), c.accepts_upword(w), "word {w}");
        }
    }

    #[test]
    fn complement_of_empty_is_universal() {
        let (ab, a, _) = ab2();
        let empty = Buchi::new(ab.clone());
        let c = complement(&empty);
        assert!(c.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
    }

    #[test]
    fn complement_of_universal_is_empty() {
        let (ab, _, _) = ab2();
        let c = complement(&Buchi::universal(ab));
        assert!(c.is_empty_language());
    }

    #[test]
    fn inclusion_and_equivalence() {
        let (ab, a, b) = ab2();
        let m = inf_a();
        let univ = Buchi::universal(ab.clone());
        assert_eq!(omega_included(&m, &univ).unwrap(), None);
        let w = omega_included(&univ, &m).unwrap().expect("strict");
        // Witness has finitely many a's.
        assert!(!m.accepts_upword(&w));
        assert!(omega_equivalent(&m, &m.clone()).unwrap());
        assert!(!omega_equivalent(&m, &univ).unwrap());
        let _ = (a, b);
    }

    #[test]
    fn parallel_complement_is_bit_for_bit_sequential() {
        use rl_automata::{Budget, Metric, MetricsRegistry};
        let (ab, a, b) = ab2();
        // 4 states → rank bound 8: thousands of ranking states, so the
        // construction crosses PAR_LAYER_THRESHOLD and exercises the pool.
        let m = Buchi::from_parts(
            ab,
            4,
            [0],
            [2],
            [
                (0, a, 1),
                (0, b, 0),
                (1, a, 2),
                (1, b, 0),
                (2, a, 2),
                (2, b, 3),
                (3, a, 0),
                (3, b, 2),
            ],
        )
        .unwrap();
        let run = |pool: Option<Arc<Pool>>| {
            let reg = MetricsRegistry::new();
            let mut guard =
                Guard::new(Budget::unlimited().with_max_states(3_000)).with_metrics(reg.clone());
            if let Some(pool) = pool {
                guard = guard.with_pool(pool);
            }
            let result = complement_with(&m, &guard).map_err(|e| match e {
                AutomataError::BudgetExceeded { spent, partial, .. } => {
                    (spent, partial.states, partial.transitions, partial.frontier)
                }
                other => panic!("unexpected error {other:?}"),
            });
            (
                result,
                reg.total(Metric::States),
                reg.total(Metric::Transitions),
                reg.total(Metric::GuardCharges),
            )
        };
        let seq = run(None);
        for threads in [2, 4] {
            let par = run(Some(Arc::new(Pool::new(threads))));
            assert_eq!(par, seq, "{threads} threads");
        }
    }

    #[test]
    fn complement_handles_dying_runs() {
        let (ab, a, b) = ab2();
        // Accepts only a^ω and dies on b.
        let m = Buchi::from_parts(ab, 1, [0], [0], [(0, a, 0)]).unwrap();
        let c = complement(&m);
        assert!(c.accepts_upword(&UpWord::new(vec![b], vec![a]).unwrap()));
        assert!(c.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
        assert!(!c.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
    }
}
