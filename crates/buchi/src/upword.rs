//! Ultimately periodic ω-words (`u · v^ω`).

use std::fmt;

use rl_automata::{Alphabet, AutomataError, Symbol};

/// An ultimately periodic ω-word `u · v^ω` with finite prefix `u` (the
/// "spoke") and non-empty period `v` (the "loop").
///
/// Every non-empty ω-regular language contains such a word, so these are the
/// counterexample currency of all the deciders in this workspace.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::UpWord;
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// let w = UpWord::new(vec![a], vec![b, a])?;   // a (b a)^ω
/// assert_eq!(w.at(0), a);
/// assert_eq!(w.at(1), b);
/// assert_eq!(w.at(2), a);
/// assert_eq!(w.at(3), b);
/// assert_eq!(w.display(&ab), "a.(b.a)^ω");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpWord {
    prefix: Vec<Symbol>,
    period: Vec<Symbol>,
}

impl UpWord {
    /// Creates `prefix · period^ω`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] when `period` is empty (there
    /// is no ω-word with an empty loop).
    pub fn new(prefix: Vec<Symbol>, period: Vec<Symbol>) -> Result<UpWord, AutomataError> {
        if period.is_empty() {
            return Err(AutomataError::InvalidState(0));
        }
        Ok(UpWord { prefix, period })
    }

    /// A purely periodic word `v^ω`.
    ///
    /// # Errors
    ///
    /// Returns an error when `period` is empty.
    pub fn periodic(period: Vec<Symbol>) -> Result<UpWord, AutomataError> {
        UpWord::new(Vec::new(), period)
    }

    /// The finite prefix `u`.
    pub fn prefix(&self) -> &[Symbol] {
        &self.prefix
    }

    /// The repeated period `v`.
    pub fn period(&self) -> &[Symbol] {
        &self.period
    }

    /// The letter at position `i` (0-based).
    pub fn at(&self, i: usize) -> Symbol {
        if i < self.prefix.len() {
            self.prefix[i]
        } else {
            self.period[(i - self.prefix.len()) % self.period.len()]
        }
    }

    /// Length of one "lasso unrolling": `|u| + |v|`.
    pub fn lasso_len(&self) -> usize {
        self.prefix.len() + self.period.len()
    }

    /// Position index of the successor of position `i` *within the lasso*
    /// (positions `0..lasso_len()`, with the last looping back to `|u|`).
    pub fn lasso_next(&self, i: usize) -> usize {
        if i + 1 < self.lasso_len() {
            i + 1
        } else {
            self.prefix.len()
        }
    }

    /// The suffix ω-word starting at position `n` (the paper's `x_(n...)`),
    /// itself ultimately periodic.
    pub fn suffix(&self, n: usize) -> UpWord {
        if n <= self.prefix.len() {
            UpWord {
                prefix: self.prefix[n..].to_vec(),
                period: self.period.clone(),
            }
        } else {
            let k = (n - self.prefix.len()) % self.period.len();
            let mut period = self.period[k..].to_vec();
            period.extend_from_slice(&self.period[..k]);
            UpWord {
                prefix: Vec::new(),
                period,
            }
        }
    }

    /// Prepends a finite word: `w · self`.
    pub fn prepend(&self, w: &[Symbol]) -> UpWord {
        let mut prefix = w.to_vec();
        prefix.extend_from_slice(&self.prefix);
        UpWord {
            prefix,
            period: self.period.clone(),
        }
    }

    /// The finite unrolling of the first `n` letters.
    pub fn unroll(&self, n: usize) -> Vec<Symbol> {
        (0..n).map(|i| self.at(i)).collect()
    }

    /// A canonical form: the period is rolled to its lexicographically least
    /// rotation and the prefix is shortened while its last letter equals the
    /// last letter of the period. Two `UpWord`s denoting the same ω-word have
    /// equal canonical forms *when their period lengths agree*; combined with
    /// [`UpWord::same_word`] this gives full semantic equality.
    pub fn canonicalize(&self) -> UpWord {
        let mut prefix = self.prefix.clone();
        let mut period = self.period.clone();
        // Shrink the period to its primitive root.
        'outer: for d in 1..=period.len() / 2 {
            if !period.len().is_multiple_of(d) {
                continue;
            }
            for i in d..period.len() {
                if period[i] != period[i - d] {
                    continue 'outer;
                }
            }
            period.truncate(d);
            break;
        }
        // Absorb trailing prefix letters into the rotation.
        while let (Some(&last), Some(&period_last)) = (prefix.last(), period.last()) {
            if last == period_last {
                prefix.pop();
                period.rotate_right(1);
            } else {
                break;
            }
        }
        UpWord { prefix, period }
    }

    /// Semantic equality of the denoted ω-words.
    pub fn same_word(&self, other: &UpWord) -> bool {
        let a = self.canonicalize();
        let b = other.canonicalize();
        a == b
    }

    /// Formats as `u.(v)^ω` using symbol names.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let v = self
            .period
            .iter()
            .map(|&s| alphabet.name(s))
            .collect::<Vec<_>>()
            .join(".");
        if self.prefix.is_empty() {
            format!("({v})^ω")
        } else {
            let u = self
                .prefix
                .iter()
                .map(|&s| alphabet.name(s))
                .collect::<Vec<_>>()
                .join(".");
            format!("{u}.({v})^ω")
        }
    }

    /// The longest common prefix length with another ω-word, or `None` when
    /// the words are equal (common prefix is infinite).
    ///
    /// This is the `common(x, y)` of Definition 4.8.
    pub fn common_prefix_len(&self, other: &UpWord) -> Option<usize> {
        if self.same_word(other) {
            return None;
        }
        // Distinct ultimately periodic words differ within |u1|+|u2|+lcm-ish
        // bounds; p1+p2+2*lcm(q1,q2) is a safe horizon.
        let bound =
            self.prefix.len() + other.prefix.len() + 2 * lcm(self.period.len(), other.period.len());
        for i in 0..=bound {
            if self.at(i) != other.at(i) {
                return Some(i);
            }
        }
        unreachable!("distinct ultimately periodic words must differ within the bound")
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl fmt::Display for UpWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self
            .period
            .iter()
            .map(|s| s.index().to_string())
            .collect::<Vec<_>>()
            .join(".");
        if self.prefix.is_empty() {
            write!(f, "({v})^ω")
        } else {
            let u = self
                .prefix
                .iter()
                .map(|s| s.index().to_string())
                .collect::<Vec<_>>()
                .join(".");
            write!(f, "{u}.({v})^ω")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> (Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    #[test]
    fn rejects_empty_period() {
        let (a, _) = syms();
        assert!(UpWord::new(vec![a], vec![]).is_err());
    }

    #[test]
    fn indexing_wraps() {
        let (a, b) = syms();
        let w = UpWord::new(vec![a, a], vec![b, a]).unwrap();
        let expect = [a, a, b, a, b, a, b, a];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(w.at(i), e, "position {i}");
        }
    }

    #[test]
    fn suffix_inside_prefix_and_period() {
        let (a, b) = syms();
        let w = UpWord::new(vec![a, b], vec![a, a, b]).unwrap();
        let s1 = w.suffix(1);
        assert_eq!(s1.prefix(), &[b]);
        let s4 = w.suffix(4); // inside period at offset 2
        for i in 0..10 {
            assert_eq!(s4.at(i), w.at(4 + i), "position {i}");
        }
    }

    #[test]
    fn canonical_equality() {
        let (a, b) = syms();
        // a (b a)^ω == (a b)^ω
        let w1 = UpWord::new(vec![a], vec![b, a]).unwrap();
        let w2 = UpWord::periodic(vec![a, b]).unwrap();
        assert!(w1.same_word(&w2));
        // (a b a b)^ω == (a b)^ω (primitive root)
        let w3 = UpWord::periodic(vec![a, b, a, b]).unwrap();
        assert!(w3.same_word(&w2));
        let w4 = UpWord::periodic(vec![b, a]).unwrap();
        assert!(!w4.same_word(&UpWord::periodic(vec![a]).unwrap()));
        // rotations: (ab)^ω != (ba)^ω (they differ at position 0)
        assert!(!w2.same_word(&w4));
    }

    #[test]
    fn common_prefix_len_matches_manual() {
        let (a, b) = syms();
        let w1 = UpWord::periodic(vec![a, b]).unwrap();
        let w2 = UpWord::periodic(vec![a, a]).unwrap();
        assert_eq!(w1.common_prefix_len(&w2), Some(1));
        let w3 = UpWord::new(vec![a], vec![b, a]).unwrap();
        assert_eq!(w1.common_prefix_len(&w3), None);
    }

    #[test]
    fn display_format() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let (a, b) = (ab.symbol("a").unwrap(), ab.symbol("b").unwrap());
        let w = UpWord::new(vec![a], vec![b]).unwrap();
        assert_eq!(w.display(&ab), "a.(b)^ω");
        assert_eq!(UpWord::periodic(vec![a]).unwrap().display(&ab), "(a)^ω");
    }

    #[test]
    fn prepend_shifts_positions() {
        let (a, b) = syms();
        let w = UpWord::periodic(vec![b]).unwrap().prepend(&[a, a]);
        assert_eq!(w.at(0), a);
        assert_eq!(w.at(1), a);
        assert_eq!(w.at(2), b);
    }

    #[test]
    fn unroll_prefix() {
        let (a, b) = syms();
        let w = UpWord::new(vec![a], vec![b]).unwrap();
        assert_eq!(w.unroll(4), vec![a, b, b, b]);
    }
}
