//! JSON persistence (via the in-tree `rl-json` crate).
//!
//! A [`Buchi`] automaton serializes as its underlying NFA structure (same
//! wire shape as [`rl_automata::Nfa`], with `accepting` read as the Büchi
//! acceptance set); an [`UpWord`] as `{prefix, period}` symbol-index lists.

use rl_json::{FromJson, Json, JsonError, ObjBuilder, ToJson};

use rl_automata::{Nfa, Symbol};

use crate::buchi::Buchi;
use crate::upword::UpWord;

impl ToJson for Buchi {
    fn to_json(&self) -> Json {
        self.to_nfa_structure().to_json()
    }
}

impl FromJson for Buchi {
    fn from_json(value: &Json) -> Result<Buchi, JsonError> {
        let nfa = Nfa::from_json(value)?;
        Ok(Buchi::from_nfa_structure(&nfa))
    }
}

impl ToJson for UpWord {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field(
                "prefix",
                self.prefix().iter().map(|s| s.index()).collect::<Vec<_>>(),
            )
            .field(
                "period",
                self.period().iter().map(|s| s.index()).collect::<Vec<_>>(),
            )
            .build()
    }
}

impl FromJson for UpWord {
    fn from_json(value: &Json) -> Result<UpWord, JsonError> {
        let prefix = Vec::<usize>::from_json(value.field("prefix")?)?;
        let period = Vec::<usize>::from_json(value.field("period")?)?;
        UpWord::new(
            prefix.into_iter().map(Symbol::from_index).collect(),
            period.into_iter().map(Symbol::from_index).collect(),
        )
        .map_err(|_| JsonError::custom("ω-word period must be non-empty"))
    }
}
