//! Generalized Büchi automata (multiple acceptance sets) and counter-based
//! degeneralization.
//!
//! The GPVW tableau of `rl-logic` naturally produces one acceptance set per
//! Until subformula; this type holds that intermediate object and converts
//! it to an ordinary [`Buchi`] automaton via the standard counter
//! construction (one copy of the state space per acceptance set).

use std::collections::{BTreeMap, BTreeSet};

use rl_automata::{Alphabet, AutomataError, StateId, Symbol};

use crate::buchi::Buchi;

/// A nondeterministic generalized Büchi automaton: a run is accepting when
/// it visits **every** acceptance set infinitely often.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::{GeneralizedBuchi, UpWord};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// // One state, two acceptance sets tracked on edges-into-state… encoded
/// // with two states: visiting s_a means "just read a", s_b "just read b".
/// let mut g = GeneralizedBuchi::new(ab);
/// let sa = g.add_state();
/// let sb = g.add_state();
/// g.set_initial(sa);
/// g.set_initial(sb);
/// for (p, q, sym) in [(sa, sa, a), (sa, sb, b), (sb, sa, a), (sb, sb, b)] {
///     g.add_transition(p, sym, q);
/// }
/// g.add_acceptance_set([sa])?; // infinitely many a
/// g.add_acceptance_set([sb])?; // infinitely many b
/// let m = g.degeneralize();
/// assert!(m.accepts_upword(&UpWord::periodic(vec![a, b])?));
/// assert!(!m.accepts_upword(&UpWord::periodic(vec![a])?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizedBuchi {
    alphabet: Alphabet,
    initial: BTreeSet<StateId>,
    state_count: usize,
    transitions: Vec<(StateId, Symbol, StateId)>,
    acceptance: Vec<BTreeSet<StateId>>,
}

impl GeneralizedBuchi {
    /// Creates an empty automaton over `alphabet`.
    pub fn new(alphabet: Alphabet) -> GeneralizedBuchi {
        GeneralizedBuchi {
            alphabet,
            initial: BTreeSet::new(),
            state_count: 0,
            transitions: Vec::new(),
            acceptance: Vec::new(),
        }
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self) -> StateId {
        self.state_count += 1;
        self.state_count - 1
    }

    /// Adds `q` to the initial set.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.state_count, "invalid state {q}");
        self.initial.insert(q);
    }

    /// Adds the transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(from < self.state_count, "invalid state {from}");
        assert!(to < self.state_count, "invalid state {to}");
        self.transitions.push((from, symbol, to));
    }

    /// Appends an acceptance set.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] for out-of-range members.
    pub fn add_acceptance_set(
        &mut self,
        states: impl IntoIterator<Item = StateId>,
    ) -> Result<(), AutomataError> {
        let set: BTreeSet<StateId> = states.into_iter().collect();
        if let Some(&bad) = set.iter().find(|&&q| q >= self.state_count) {
            return Err(AutomataError::InvalidState(bad));
        }
        self.acceptance.push(set);
        Ok(())
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Number of acceptance sets.
    pub fn acceptance_count(&self) -> usize {
        self.acceptance.len()
    }

    /// Counter-based degeneralization into an ordinary Büchi automaton.
    ///
    /// With `k` acceptance sets the result has up to `k·n` states: a counter
    /// tracks which set is currently awaited, advancing when the run passes
    /// through it; the Büchi acceptance marks completion of a full round.
    /// With zero acceptance sets every infinite run accepts (the counter
    /// degenerates to a single always-accepting copy). The result is
    /// [`Buchi::reduce`]d.
    pub fn degeneralize(&self) -> Buchi {
        let k = self.acceptance.len().max(1);
        let in_set = |i: usize, q: StateId| -> bool {
            self.acceptance.get(i).is_none_or(|s| s.contains(&q))
        };
        let mut out = Buchi::new(self.alphabet.clone());
        let mut index: BTreeMap<(StateId, usize), StateId> = BTreeMap::new();
        for q in 0..self.state_count {
            for c in 0..k {
                let acc = c == k - 1 && in_set(k - 1, q);
                let id = out.add_state(acc);
                index.insert((q, c), id);
            }
        }
        for &q in &self.initial {
            out.set_initial(index[&(q, 0)]);
        }
        for &(p, a, q) in &self.transitions {
            for c in 0..k {
                let c2 = if in_set(c, p) { (c + 1) % k } else { c };
                out.add_transition(index[&(p, c)], a, index[&(q, c2)]);
            }
        }
        out.reduce()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upword::UpWord;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    /// Two-state tracker: state records the letter just read.
    fn tracker() -> (GeneralizedBuchi, StateId, StateId) {
        let (ab, a, b) = ab2();
        let mut g = GeneralizedBuchi::new(ab);
        let sa = g.add_state();
        let sb = g.add_state();
        g.set_initial(sa);
        g.set_initial(sb);
        for (p, q, sym) in [(sa, sa, a), (sb, sa, a), (sa, sb, b), (sb, sb, b)] {
            g.add_transition(p, sym, q);
        }
        (g, sa, sb)
    }

    #[test]
    fn two_sets_mean_both_infinitely_often() {
        let (_, a, b) = ab2();
        let (mut g, sa, sb) = tracker();
        g.add_acceptance_set([sa]).unwrap();
        g.add_acceptance_set([sb]).unwrap();
        let m = g.degeneralize();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
        assert!(m.accepts_upword(&UpWord::new(vec![a, a], vec![b, a, a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::new(vec![b, a], vec![b]).unwrap()));
    }

    #[test]
    fn zero_sets_accept_all_infinite_runs() {
        let (_, a, b) = ab2();
        let (g, _, _) = tracker();
        let m = g.degeneralize();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![b, a]).unwrap()));
    }

    #[test]
    fn one_set_is_plain_buchi() {
        let (_, a, b) = ab2();
        let (mut g, sa, _) = tracker();
        g.add_acceptance_set([sa]).unwrap();
        let m = g.degeneralize();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
    }

    #[test]
    fn invalid_acceptance_member_rejected() {
        let (ab, _, _) = ab2();
        let mut g = GeneralizedBuchi::new(ab);
        let _ = g.add_state();
        assert!(g.add_acceptance_set([7]).is_err());
    }
}
