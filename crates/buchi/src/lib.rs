//! ω-automata (Büchi automata) for the relative-liveness workspace.
//!
//! The constructions of Nitsche & Wolper (PODC '97) live in the ω-regular
//! world: system behaviors are `lim(L)` of prefix-closed regular languages,
//! properties are ω-regular sets, and the decision procedures of Theorem 4.5
//! reduce relative liveness/safety to Büchi-automaton operations. This crate
//! provides that substrate:
//!
//! * [`Buchi`] — nondeterministic Büchi automata,
//! * intersection products and unions,
//! * SCC-based emptiness with ultimately-periodic counterexamples
//!   ([`UpWord`]),
//! * *reduction* (trimming states that admit no accepting run — the
//!   "reduced Büchi automaton" of Theorem 5.1),
//! * `pre(·)` — the NFA of finite prefixes of accepted ω-words,
//! * `lim(·)` — the Büchi automaton accepting the limit of a DFA's language,
//! * rank-based (Kupferman–Vardi) complementation, ω-language inclusion and
//!   equivalence,
//! * membership of ultimately periodic words.
//!
//! # Example
//!
//! ```
//! use rl_automata::Alphabet;
//! use rl_buchi::{Buchi, UpWord};
//!
//! # fn main() -> Result<(), rl_automata::AutomataError> {
//! let ab = Alphabet::new(["a", "b"])?;
//! let a = ab.symbol("a").unwrap();
//! let b = ab.symbol("b").unwrap();
//! // L = "infinitely many a's"
//! let mut m = Buchi::new(ab);
//! let q0 = m.add_state(false);
//! let q1 = m.add_state(true);
//! m.set_initial(q0);
//! m.add_transition(q0, b, q0);
//! m.add_transition(q0, a, q1);
//! m.add_transition(q1, b, q0);
//! m.add_transition(q1, a, q1);
//!
//! assert!(m.accepts_upword(&UpWord::new(vec![], vec![a])?));
//! assert!(m.accepts_upword(&UpWord::new(vec![b], vec![a, b])?));
//! assert!(!m.accepts_upword(&UpWord::new(vec![a], vec![b])?));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buchi;
mod complement;
mod emptiness;
mod generalized;
mod json;
mod limits;
mod omega_regex;
mod upword;

pub use buchi::Buchi;
pub use complement::{
    complement, complement_with, omega_equivalent, omega_included, omega_included_with,
};
pub use generalized::GeneralizedBuchi;
pub use limits::{
    behaviors_of_ts, behaviors_of_ts_with, limit_of_dfa, limit_of_prefix_closed, limit_of_regular,
    limit_of_regular_with,
};
pub use omega_regex::OmegaRegex;
pub use upword::UpWord;
