//! ω-regular expressions: finite unions of `U · V^ω` with `U`, `V` regular.
//!
//! Every ω-regular language has this form (Büchi's theorem); these
//! expressions are the most convenient way to state properties and systems
//! compactly in tests and examples.

use rl_automata::{Alphabet, AutomataError, Nfa, Regex};

use crate::buchi::Buchi;

/// An ω-regular expression `Σᵢ Uᵢ · Vᵢ^ω`.
///
/// # Example
///
/// ```
/// use rl_automata::{Alphabet, Regex};
/// use rl_buchi::{OmegaRegex, UpWord};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// // (a+b)* a^ω — "finitely many b".
/// let expr = OmegaRegex::new(&ab, vec![(
///     Regex::parse(&ab, "(a + b)*")?,
///     Regex::parse(&ab, "a")?,
/// )]);
/// let m = expr.to_buchi()?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// assert!(m.accepts_upword(&UpWord::new(vec![b, b], vec![a])?));
/// assert!(!m.accepts_upword(&UpWord::periodic(vec![a, b])?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaRegex {
    alphabet: Alphabet,
    parts: Vec<(Regex, Regex)>,
}

impl OmegaRegex {
    /// Builds an expression over `alphabet` from `(Uᵢ, Vᵢ)` pairs.
    pub fn new(alphabet: &Alphabet, parts: Vec<(Regex, Regex)>) -> OmegaRegex {
        OmegaRegex {
            alphabet: alphabet.clone(),
            parts,
        }
    }

    /// Parses `"U ; V"` (one pair) over `alphabet` — `U` and `V` in the
    /// [`Regex`] syntax. Multiple pairs can be joined by `"||"`.
    ///
    /// # Errors
    ///
    /// Propagates [`Regex::parse`] failures; a missing `;` is reported as
    /// [`AutomataError::UnknownSymbol`].
    pub fn parse(alphabet: &Alphabet, text: &str) -> Result<OmegaRegex, AutomataError> {
        let mut parts = Vec::new();
        for chunk in text.split("||") {
            let Some((u, v)) = chunk.split_once(';') else {
                return Err(AutomataError::UnknownSymbol(
                    "omega-regex needs 'U ; V' with a semicolon".into(),
                ));
            };
            parts.push((Regex::parse(alphabet, u)?, Regex::parse(alphabet, v)?));
        }
        Ok(OmegaRegex::new(alphabet, parts))
    }

    /// The component pairs.
    pub fn parts(&self) -> &[(Regex, Regex)] {
        &self.parts
    }

    /// Compiles to a Büchi automaton accepting `⋃ᵢ Uᵢ·Vᵢ^ω`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] when some `Vᵢ` accepts the
    /// empty word (ε^ω is not an ω-word; rewrite `V` without ε, e.g. use
    /// `a a*` instead of `a*`).
    pub fn to_buchi(&self) -> Result<Buchi, AutomataError> {
        let mut acc: Option<Buchi> = None;
        for (u, v) in &self.parts {
            let part = omega_iteration(
                &u.to_nfa_over(&self.alphabet)?,
                &v.to_nfa_over(&self.alphabet)?,
            )?;
            acc = Some(match acc {
                None => part,
                Some(b) => b.union(&part)?,
            });
        }
        acc.ok_or(AutomataError::EmptyAlphabet)
    }
}

/// Büchi automaton for `L(u_nfa) · L(v_nfa)^ω`.
fn omega_iteration(u_nfa: &Nfa, v_nfa: &Nfa) -> Result<Buchi, AutomataError> {
    u_nfa.alphabet().check_compatible(v_nfa.alphabet())?;
    if v_nfa.accepts(&[]) {
        return Err(AutomataError::InvalidState(0));
    }
    let u = u_nfa.trim();
    let v = v_nfa.trim();
    let alphabet = u_nfa.alphabet().clone();
    // Layout: [U states][V states][hub]; hub is the sole accepting state,
    // entered at every completed V-iteration.
    let nu = u.state_count();
    let nv = v.state_count();
    let hub = nu + nv;
    let mut b = Buchi::new(alphabet);
    for _ in 0..nu + nv {
        b.add_state(false);
    }
    b.add_state(true); // hub
    for &q in u.initial() {
        b.set_initial(q);
    }
    // ε ∈ L(U): the word may start iterating V immediately.
    if u.accepts(&[]) {
        b.set_initial(hub);
    }
    // U transitions; entering a U-accepting state may also jump to hub
    // (the U-part ends here).
    for (p, a, q) in u.transitions() {
        b.add_transition(p, a, q);
        if u.is_accepting(q) {
            b.add_transition(p, a, hub);
        }
    }
    // V transitions (offset); completing a V word jumps to hub.
    for (p, a, q) in v.transitions() {
        b.add_transition(nu + p, a, nu + q);
        if v.is_accepting(q) {
            b.add_transition(nu + p, a, hub);
        }
    }
    // hub behaves like V's initial states.
    for &init in v.initial() {
        for a in v.alphabet().clone().symbols() {
            for q in v.successors(init, a).collect::<Vec<_>>() {
                b.add_transition(hub, a, nu + q);
                if v.is_accepting(q) {
                    b.add_transition(hub, a, hub);
                }
            }
        }
    }
    Ok(b.reduce())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complement::omega_included;
    use crate::upword::UpWord;
    use rl_automata::Symbol;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    #[test]
    fn alternating_word() {
        let (ab, a, b) = ab2();
        let expr = OmegaRegex::parse(&ab, "ε ; a b").unwrap();
        let m = expr.to_buchi().unwrap();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![b, a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
    }

    #[test]
    fn finitely_many_b_matches_formula_automaton() {
        let (ab, a, b) = ab2();
        let expr = OmegaRegex::parse(&ab, "(a + b)* ; a").unwrap();
        let m = expr.to_buchi().unwrap();
        // Same language as "eventually always a". Full ω-equivalence would
        // rank-complement `m` (exponential), so check the cheap direction
        // exactly (complementing only the tiny 2-state reference) and the
        // other direction on a word sample.
        let reference = rl_logic_stub(&ab);
        assert_eq!(omega_included(&m, &reference).unwrap(), None);
        for w in [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::new(vec![b, b, a, b], vec![a]).unwrap(),
            UpWord::new(vec![a, b], vec![a, a]).unwrap(),
        ] {
            assert!(reference.accepts_upword(&w));
            assert!(m.accepts_upword(&w), "missing member {w}");
        }
        for w in [
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::periodic(vec![a, b]).unwrap(),
        ] {
            assert!(!m.accepts_upword(&w), "spurious member {w}");
        }
    }

    /// "eventually always a" automaton, built by hand (keeping rl-buchi free
    /// of an rl-logic dependency).
    fn rl_logic_stub(ab: &Alphabet) -> Buchi {
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        Buchi::from_parts(
            ab.clone(),
            2,
            [0],
            [1],
            [(0, a, 0), (0, b, 0), (0, a, 1), (1, a, 1)],
        )
        .unwrap()
    }

    #[test]
    fn union_of_parts() {
        let (ab, a, b) = ab2();
        let expr = OmegaRegex::parse(&ab, "ε ; a || ε ; b").unwrap();
        let m = expr.to_buchi().unwrap();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
    }

    #[test]
    fn epsilon_period_rejected() {
        let (ab, _, _) = ab2();
        let expr = OmegaRegex::parse(&ab, "a ; b*").unwrap();
        assert!(expr.to_buchi().is_err());
    }

    #[test]
    fn prefix_is_respected() {
        let (ab, a, b) = ab2();
        let expr = OmegaRegex::parse(&ab, "b b ; a").unwrap();
        let m = expr.to_buchi().unwrap();
        assert!(m.accepts_upword(&UpWord::new(vec![b, b], vec![a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::new(vec![b], vec![a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
    }
}
