//! Nondeterministic Büchi automata.

use std::collections::{BTreeSet, VecDeque};
use std::hash::Hasher;
use std::sync::Arc;

use rl_automata::{
    Alphabet, AutomataError, FxHasher, Guard, Interner, MemFootprint, Nfa, StateId, Symbol,
};

use crate::emptiness;
use crate::upword::UpWord;

/// A nondeterministic Büchi automaton over an [`Alphabet`].
///
/// An ω-word is accepted when some infinite run from an initial state visits
/// an accepting state infinitely often.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::{Buchi, UpWord};
///
/// # fn main() -> Result<(), rl_automata::AutomataError> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// // "eventually always a"
/// let mut m = Buchi::new(ab);
/// let q0 = m.add_state(false);
/// let q1 = m.add_state(true);
/// m.set_initial(q0);
/// m.add_transition(q0, a, q0);
/// m.add_transition(q0, b, q0);
/// m.add_transition(q0, a, q1);
/// m.add_transition(q1, a, q1);
/// assert!(m.accepts_upword(&UpWord::new(vec![b, b], vec![a])?));
/// assert!(!m.accepts_upword(&UpWord::periodic(vec![a, b])?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buchi {
    alphabet: Alphabet,
    initial: BTreeSet<StateId>,
    accepting: Vec<bool>,
    /// `delta[q][a.index()]` = sorted, deduplicated successors of `q` on `a`.
    delta: Vec<Vec<Vec<StateId>>>,
}

impl MemFootprint for Buchi {
    fn heap_bytes(&self) -> usize {
        // The alphabet weighs as a pointer (interned per system, charged at
        // its creation site).
        self.initial.heap_bytes() + self.accepting.heap_bytes() + self.delta.heap_bytes()
    }
}

impl Buchi {
    /// Creates an empty automaton over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Buchi {
        Buchi {
            alphabet,
            initial: BTreeSet::new(),
            accepting: Vec::new(),
            delta: Vec::new(),
        }
    }

    /// Builds a Büchi automaton from raw parts, validating all indices.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::InvalidState`] for an out-of-range state.
    pub fn from_parts(
        alphabet: Alphabet,
        state_count: usize,
        initial: impl IntoIterator<Item = StateId>,
        accepting: impl IntoIterator<Item = StateId>,
        transitions: impl IntoIterator<Item = (StateId, Symbol, StateId)>,
    ) -> Result<Buchi, AutomataError> {
        let nfa = Nfa::from_parts(alphabet, state_count, initial, accepting, transitions)?;
        Ok(Buchi::from_nfa_structure(&nfa))
    }

    /// Reinterprets an NFA's graph as a Büchi automaton (same states,
    /// transitions, initial and accepting sets — but now read with Büchi
    /// semantics over ω-words).
    pub fn from_nfa_structure(nfa: &Nfa) -> Buchi {
        let mut b = Buchi::new(nfa.alphabet().clone());
        for q in 0..nfa.state_count() {
            b.add_state(nfa.is_accepting(q));
        }
        for &q in nfa.initial() {
            b.initial.insert(q);
        }
        for (p, a, q) in nfa.transitions() {
            b.add_transition(p, a, q);
        }
        b
    }

    /// Reinterprets the automaton's graph as an NFA over finite words.
    pub fn to_nfa_structure(&self) -> Nfa {
        let mut n = Nfa::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            n.add_state(self.accepting[q]);
        }
        for &q in &self.initial {
            n.set_initial(q);
        }
        for (p, a, q) in self.transitions() {
            n.add_transition(p, a, q);
        }
        n
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.accepting.push(accepting);
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        self.accepting.len() - 1
    }

    /// Adds `q` to the initial set.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_initial(&mut self, q: StateId) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.initial.insert(q);
    }

    /// Sets whether `q` is accepting.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) {
        assert!(q < self.state_count(), "invalid state {q}");
        self.accepting[q] = accepting;
    }

    /// Adds the transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(from < self.state_count(), "invalid state {from}");
        assert!(to < self.state_count(), "invalid state {to}");
        let row = &mut self.delta[from][symbol.index()];
        if let Err(pos) = row.binary_search(&to) {
            row.insert(pos, to);
        }
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// The set of initial states.
    pub fn initial(&self) -> &BTreeSet<StateId> {
        &self.initial
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q]
    }

    /// Successors of `q` on `symbol`, in ascending order.
    pub fn successors(&self, q: StateId, symbol: Symbol) -> impl Iterator<Item = StateId> + '_ {
        self.delta[q][symbol.index()].iter().copied()
    }

    /// Sorted successor list of `q` on `symbol`, as a slice.
    fn successor_slice(&self, q: StateId, symbol: Symbol) -> &[StateId] {
        &self.delta[q][symbol.index()]
    }

    /// Iterates over all transitions in sorted order.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .flat_map(move |(ai, tos)| tos.iter().map(move |&q| (p, Symbol::from_index(ai), q)))
        })
    }

    /// A deterministic structural hash of the automaton (alphabet names,
    /// state count, initial/accepting sets, and the full transition table).
    ///
    /// Structurally equal automata hash equal; collisions are possible, so
    /// callers must re-check equality on cache hits.
    pub fn structural_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(self.state_count());
        for (_, name) in self.alphabet.iter() {
            h.write(name.as_bytes());
        }
        for &q in &self.initial {
            h.write_usize(q);
        }
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                h.write_usize(q);
            }
        }
        for (p, a, q) in self.transitions() {
            h.write_usize(p);
            h.write_usize(a.index());
            h.write_usize(q);
        }
        h.finish()
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions().count()
    }

    /// Whether the accepted ω-language is empty.
    pub fn is_empty_language(&self) -> bool {
        emptiness::accepting_lasso(self).is_none()
    }

    /// An accepted ultimately periodic word, when the language is non-empty.
    pub fn accepted_upword(&self) -> Option<UpWord> {
        emptiness::accepting_lasso(self)
    }

    /// Whether the automaton accepts the ultimately periodic word `w`.
    ///
    /// Decided exactly, by intersecting with the one-word lasso automaton and
    /// checking emptiness of the product graph.
    pub fn accepts_upword(&self, w: &UpWord) -> bool {
        emptiness::accepts_upword(self, w)
    }

    /// *Reduction* in the sense of Theorem 5.1: removes every state from
    /// which no accepting run departs (and every unreachable state). The
    /// ω-language is unchanged.
    pub fn reduce(&self) -> Buchi {
        let live = self.live_states();
        let mut map: Vec<Option<StateId>> = vec![None; self.state_count()];
        let mut out = Buchi::new(self.alphabet.clone());
        for q in 0..self.state_count() {
            if live[q] {
                map[q] = Some(out.add_state(self.accepting[q]));
            }
        }
        for &q in &self.initial {
            if let Some(nq) = map[q] {
                out.initial.insert(nq);
            }
        }
        for (p, a, q) in self.transitions() {
            if let (Some(np), Some(nq)) = (map[p], map[q]) {
                out.add_transition(np, a, nq);
            }
        }
        out
    }

    /// Marks states that are reachable from the initial set *and* from which
    /// an accepting cycle is reachable ("live" states: some accepting run
    /// passes through them).
    pub fn live_states(&self) -> Vec<bool> {
        let n = self.state_count();
        // Forward reachability.
        let mut reach = vec![false; n];
        let mut queue: VecDeque<StateId> = self.initial.iter().copied().collect();
        for &q in &self.initial {
            reach[q] = true;
        }
        while let Some(p) = queue.pop_front() {
            for tos in &self.delta[p] {
                for &q in tos {
                    if !reach[q] {
                        reach[q] = true;
                        queue.push_back(q);
                    }
                }
            }
        }
        // States inside accepting cycles (within the reachable part).
        let core = emptiness::accepting_cycle_states(self, &reach);
        // Backward reachability from the core.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (p, _, q) in self.transitions() {
            rev[q].push(p);
        }
        let mut live = vec![false; n];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for q in 0..n {
            if core[q] {
                live[q] = true;
                queue.push_back(q);
            }
        }
        while let Some(p) = queue.pop_front() {
            for &r in &rev[p] {
                if !live[r] {
                    live[r] = true;
                    queue.push_back(r);
                }
            }
        }
        for q in 0..n {
            live[q] &= reach[q];
        }
        live
    }

    /// Intersection product: accepts `L(self) ∩ L(other)`.
    ///
    /// Uses the classical two-phase construction (a flag tracks whether we
    /// are waiting for an accepting state of `self` or of `other`).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn intersection(&self, other: &Buchi) -> Result<Buchi, AutomataError> {
        self.intersection_with(other, &Guard::unlimited())
    }

    /// [`Buchi::intersection`] under a resource [`Guard`].
    ///
    /// Every interned product state is charged against the guard's state
    /// budget and every product transition against its transition budget.
    /// When the guard carries an `OpCache`, a repeated intersection of
    /// structurally equal operands is answered from the memo table.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ,
    /// or a budget error when the guard trips.
    pub fn intersection_with(&self, other: &Buchi, guard: &Guard) -> Result<Buchi, AutomataError> {
        if guard.op_cache().is_none() {
            return self.intersection_inner(other, guard);
        }
        let (self_hash, other_hash) = (self.structural_hash(), other.structural_hash());
        let mut h = FxHasher::default();
        h.write_u64(self_hash);
        h.write_u64(other_hash);
        let entry = guard.cached::<(Arc<Buchi>, Arc<Buchi>, Buchi), AutomataError>(
            "buchi_intersection",
            h.finish(),
            |e| *e.0 == *self && *e.1 == *other,
            || {
                let product = self.intersection_inner(other, guard)?;
                Ok((
                    guard.operand(self_hash, self),
                    guard.operand(other_hash, other),
                    product,
                ))
            },
        )?;
        Ok(entry.2.clone())
    }

    fn intersection_inner(&self, other: &Buchi, guard: &Guard) -> Result<Buchi, AutomataError> {
        let _span = guard.span("buchi_intersection");
        self.alphabet.check_compatible(&other.alphabet)?;
        // Classical two-copy product: in copy 1 we wait for `self` to accept,
        // in copy 2 for `other`; acceptance = copy-1 states whose left
        // component accepts (visited infinitely often iff both sides accept
        // infinitely often).
        let mut index: Interner<(StateId, StateId, u8)> = Interner::new();
        let mut out = Buchi::new(self.alphabet.clone());
        let mut work: VecDeque<(StateId, StateId, u8)> = VecDeque::new();
        fn intern(
            key: (StateId, StateId, u8),
            left_acc: bool,
            index: &mut Interner<(StateId, StateId, u8)>,
            out: &mut Buchi,
            work: &mut VecDeque<(StateId, StateId, u8)>,
            guard: &Guard,
        ) -> Result<StateId, AutomataError> {
            match index.get(&key) {
                Some(id) => Ok(id),
                None => {
                    guard.charge_state()?;
                    let id = out.add_state(key.2 == 1 && left_acc);
                    index.intern(key);
                    work.push_back(key);
                    Ok(id)
                }
            }
        }
        let mut initials = Vec::new();
        for &p in &self.initial {
            for &q in &other.initial {
                let id = intern(
                    (p, q, 1),
                    self.accepting[p],
                    &mut index,
                    &mut out,
                    &mut work,
                    guard,
                )?;
                initials.push(id);
            }
        }
        for id in initials {
            out.initial.insert(id);
        }
        while let Some((p, q, copy)) = work.pop_front() {
            guard.note_frontier(work.len());
            let id = match index.get(&(p, q, copy)) {
                Some(id) => id,
                // Unreachable: every key on the worklist was interned first.
                None => continue,
            };
            for a in self.alphabet.symbols() {
                for &p2 in self.successor_slice(p, a) {
                    for &q2 in other.successor_slice(q, a) {
                        let copy2 = match copy {
                            1 if self.accepting[p] => 2,
                            2 if other.accepting[q] => 1,
                            c => c,
                        };
                        let nid = intern(
                            (p2, q2, copy2),
                            self.accepting[p2],
                            &mut index,
                            &mut out,
                            &mut work,
                            guard,
                        )?;
                        guard.charge_transition()?;
                        out.add_transition(id, a, nid);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Disjoint union: accepts `L(self) ∪ L(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::AlphabetMismatch`] when the alphabets differ.
    pub fn union(&self, other: &Buchi) -> Result<Buchi, AutomataError> {
        self.alphabet.check_compatible(&other.alphabet)?;
        let mut out = self.clone();
        let offset = out.state_count();
        for q in 0..other.state_count() {
            out.add_state(other.accepting[q]);
        }
        for &q in &other.initial {
            out.initial.insert(q + offset);
        }
        for (p, a, q) in other.transitions() {
            out.add_transition(p + offset, a, q + offset);
        }
        Ok(out)
    }

    /// The NFA of finite prefixes `pre(L(self))` of accepted ω-words.
    ///
    /// After reduction, every remaining state lies on some accepting run, so
    /// every finite run prefix is the prefix of an accepted ω-word: the
    /// prefix NFA is the reduced graph with *all* states accepting.
    pub fn prefix_nfa(&self) -> Nfa {
        let reduced = self.reduce();
        let mut n = Nfa::new(reduced.alphabet.clone());
        for _ in 0..reduced.state_count() {
            n.add_state(true);
        }
        for &q in &reduced.initial {
            n.set_initial(q);
        }
        for (p, a, q) in reduced.transitions() {
            n.add_transition(p, a, q);
        }
        // When the ω-language is empty there are no prefixes at all — not
        // even ε — so return an automaton of the empty language.
        if reduced.state_count() == 0 || reduced.initial.is_empty() {
            return Nfa::new(reduced.alphabet.clone());
        }
        n
    }

    /// A universal Büchi automaton accepting all of `Σ^ω`.
    pub fn universal(alphabet: Alphabet) -> Buchi {
        let mut b = Buchi::new(alphabet.clone());
        let q = b.add_state(true);
        b.set_initial(q);
        for a in alphabet.symbols() {
            b.add_transition(q, a, q);
        }
        b
    }

    /// Renders the automaton in Graphviz DOT syntax.
    pub fn to_dot(&self, name: &str) -> String {
        self.to_nfa_structure().to_dot(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab2() -> (Alphabet, Symbol, Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    /// "infinitely many a" over {a,b}.
    fn inf_a() -> Buchi {
        let (ab, a, b) = ab2();
        Buchi::from_parts(
            ab,
            2,
            [0],
            [1],
            [(0, b, 0), (0, a, 1), (1, a, 1), (1, b, 0)],
        )
        .unwrap()
    }

    /// "finitely many a" (eventually always b).
    fn fin_a() -> Buchi {
        let (ab, a, b) = ab2();
        Buchi::from_parts(
            ab,
            2,
            [0],
            [1],
            [(0, a, 0), (0, b, 0), (0, b, 1), (1, b, 1)],
        )
        .unwrap()
    }

    #[test]
    fn membership_basic() {
        let (_, a, b) = ab2();
        let m = inf_a();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b, b]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::new(vec![a, a], vec![b]).unwrap()));
    }

    #[test]
    fn emptiness_and_witness() {
        let (ab, a, _) = ab2();
        let m = inf_a();
        assert!(!m.is_empty_language());
        let w = m.accepted_upword().unwrap();
        assert!(m.accepts_upword(&w));

        // An automaton whose accepting state is not on a cycle: empty.
        let dead = Buchi::from_parts(ab, 2, [0], [1], [(0, a, 1)]).unwrap();
        assert!(dead.is_empty_language());
        assert_eq!(dead.accepted_upword(), None);
    }

    #[test]
    fn intersection_of_inf_and_fin_is_empty() {
        let m = inf_a().intersection(&fin_a()).unwrap();
        assert!(m.is_empty_language());
    }

    #[test]
    fn intersection_agrees_with_memberships() {
        let (_, a, b) = ab2();
        // inf-a ∩ inf-b = words with infinitely many of both.
        let (ab, _, _) = ab2();
        let inf_b = Buchi::from_parts(
            ab,
            2,
            [0],
            [1],
            [(0, a, 0), (0, b, 1), (1, b, 1), (1, a, 0)],
        )
        .unwrap();
        let m = inf_a().intersection(&inf_b).unwrap();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(!m.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
        assert!(m.accepts_upword(&UpWord::new(vec![b, b], vec![b, a]).unwrap()));
    }

    #[test]
    fn union_accepts_either() {
        let (_, a, b) = ab2();
        let m = inf_a().union(&fin_a()).unwrap();
        assert!(m.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
        assert!(m.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
    }

    #[test]
    fn reduce_removes_dead_states() {
        let (ab, a, _) = ab2();
        // q0 -a-> q1(acc, self-loop), q0 -a-> q2 (dead end).
        let m = Buchi::from_parts(ab, 3, [0], [1], [(0, a, 1), (1, a, 1), (0, a, 2)]).unwrap();
        let r = m.reduce();
        assert_eq!(r.state_count(), 2);
        assert!(r.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
    }

    #[test]
    fn prefix_nfa_is_prefix_closed() {
        let (_, a, b) = ab2();
        let m = inf_a();
        let pre = m.prefix_nfa();
        assert!(pre.accepts(&[]));
        assert!(pre.accepts(&[b, b, a]));
        assert!(pre.is_prefix_closed());
        // For inf_a every finite word is a prefix.
        assert!(pre.accepts(&[a, a, b, b, a]));
    }

    #[test]
    fn prefix_nfa_of_empty_language_is_empty() {
        let (ab, a, _) = ab2();
        let dead = Buchi::from_parts(ab, 2, [0], [1], [(0, a, 1)]).unwrap();
        let pre = dead.prefix_nfa();
        assert!(pre.is_empty_language());
        assert!(!pre.accepts(&[]));
    }

    #[test]
    fn universal_accepts_everything() {
        let (ab, a, b) = ab2();
        let u = Buchi::universal(ab);
        assert!(u.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        assert!(u.accepts_upword(&UpWord::new(vec![a, b, a], vec![b, b, a]).unwrap()));
    }

    #[test]
    fn nfa_structure_roundtrip() {
        let m = inf_a();
        let back = Buchi::from_nfa_structure(&m.to_nfa_structure());
        assert_eq!(m, back);
    }
}
