//! The relative liveness and relative safety deciders (Section 4).
//!
//! * Relative liveness is decided through Lemma 4.3:
//!   `P` rel-live for `L_ω` ⇔ `pre(L_ω) = pre(L_ω ∩ P)`.
//! * Relative safety through Lemma 4.4:
//!   `P` rel-safe for `L_ω` ⇔ `L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P`.
//!
//! Both are effective for ω-regular data (Theorem 4.5); the procedures
//! below additionally extract counterexamples: a non-extendable prefix for
//! liveness, a limit behavior escaping `P` for safety.

use rl_automata::{
    dfa_included, dfa_included_with, nfa_included_lazy, Dfa, Guard, TransitionSystem, Word,
};
use rl_buchi::{
    behaviors_of_ts, behaviors_of_ts_with, limit_of_dfa, limit_of_prefix_closed, Buchi, UpWord,
};

use crate::property::{CoreError, Property};

/// Verdict of a relative-liveness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeLivenessVerdict {
    /// Whether `P` is a relative liveness property of the system.
    pub holds: bool,
    /// When it does not hold: a prefix `w ∈ pre(L_ω)` that no continuation
    /// inside the system can extend into `P` (e.g. `lock` for Figure 3).
    pub doomed_prefix: Option<Word>,
}

/// Verdict of a relative-safety check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelativeSafetyVerdict {
    /// Whether `P` is a relative safety property of the system.
    pub holds: bool,
    /// When it does not hold: a behavior `x ∈ L_ω \ P` all of whose
    /// prefixes can be extended into `L_ω ∩ P`.
    pub escaping_behavior: Option<UpWord>,
}

/// Verdict of classical satisfaction `L_ω ⊆ P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfactionVerdict {
    /// Whether every behavior satisfies the property.
    pub holds: bool,
    /// When not: a behavior violating `P`.
    pub counterexample: Option<UpWord>,
}

/// Decides whether `property` is a **relative liveness** property of the
/// ω-language of `system` (Definition 4.1, via Lemma 4.3).
///
/// # Errors
///
/// Propagates alphabet mismatches between system and property.
///
/// # Example — the paper's Section 2 claims
///
/// ```
/// use rl_core::{is_relative_liveness, Property};
/// use rl_buchi::behaviors_of_ts;
/// use rl_logic::parse;
/// use rl_petri::examples::{server_behaviors, server_err_behaviors};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Property::formula(parse("[]<>result")?);
/// // Figure 2: □◇result IS a relative liveness property …
/// let good = behaviors_of_ts(&server_behaviors());
/// assert!(is_relative_liveness(&good, &p)?.holds);
/// // … Figure 3: it is NOT (no fairness can save it).
/// let bad = behaviors_of_ts(&server_err_behaviors());
/// let verdict = is_relative_liveness(&bad, &p)?;
/// assert!(!verdict.holds);
/// # Ok(())
/// # }
/// ```
pub fn is_relative_liveness(
    system: &Buchi,
    property: &Property,
) -> Result<RelativeLivenessVerdict, CoreError> {
    is_relative_liveness_with(system, property, &Guard::unlimited())
}

/// [`is_relative_liveness`] under a resource [`Guard`].
///
/// Unless [`Guard::with_filters`] turned them off, the Lemma 4.3 inclusion
/// first passes through the semidecision pre-filter ladder
/// ([`crate::prefilter_inclusion`]): sound near-linear abstractions —
/// letter-count refutation, counts-mod-k refutation, simulation
/// fast-accept — that settle many instances without any exponential work,
/// falling through to the exact decider only on `Unknown`.
///
/// By default ([`Guard::lazy_enabled`]) the Lemma 4.3 inclusion
/// `pre(L_ω) ⊆ pre(L_ω ∩ P)` runs as a fused on-the-fly search
/// ([`nfa_included_lazy`]): no prefix automaton is determinized, frontier
/// nodes dominated under antichain subsumption are pruned, and the search
/// exits on the first doomed prefix. `Guard::with_lazy(false)` (the CLI's
/// `--no-lazy`) restores the materializing pipeline: Büchi intersection,
/// both prefix-automaton subset constructions, then the inclusion product.
/// Either way every expansion is charged against the guard's budget; on
/// exhaustion the decider returns a budget error with partial diagnostics
/// instead of hanging.
///
/// # Errors
///
/// As [`is_relative_liveness`], plus a budget error when the guard trips.
pub fn is_relative_liveness_with(
    system: &Buchi,
    property: &Property,
    guard: &Guard,
) -> Result<RelativeLivenessVerdict, CoreError> {
    let _span = guard.span("relative_liveness");
    let p = property.to_buchi(system.alphabet())?;
    let both = system.intersection_with(&p, guard)?;
    let pre_l = system.prefix_nfa();
    let pre_lp = both.prefix_nfa();
    // The semidecision ladder first: sound near-linear abstractions that
    // prove or refute the inclusion on many inputs; only `Unknown` falls
    // through to the exact decider.
    let decided = if guard.filters_enabled() {
        match crate::filters::prefilter_inclusion(&pre_l, &pre_lp, guard)? {
            crate::filters::FilterOutcome::Proved => Some(None),
            crate::filters::FilterOutcome::Refuted(w) => Some(Some(w)),
            crate::filters::FilterOutcome::Unknown => None,
        }
    } else {
        None
    };
    let doomed = match decided {
        Some(doomed) => doomed,
        None if guard.lazy_enabled() => {
            // Both prefix NFAs are all-accepting (prefix-closed) by
            // construction, so acceptance along the lazy product is simply
            // run-set non-emptiness and the antichain search decides the
            // inclusion without a single subset construction.
            nfa_included_lazy(&pre_l, &pre_lp, guard)?
        }
        None => {
            let pre_l_dfa = pre_l.determinize_with(guard)?;
            let pre_lp_dfa = pre_lp.determinize_with(guard)?;
            // Lemma 4.3: equality; pre(L∩P) ⊆ pre(L) always holds, so only
            // the forward inclusion can fail.
            debug_assert!(
                dfa_included(&pre_lp_dfa, &pre_l_dfa).is_none(),
                "pre(L ∩ P) ⊈ pre(L): construction bug"
            );
            dfa_included_with(&pre_l_dfa, &pre_lp_dfa, guard)?
        }
    };
    Ok(RelativeLivenessVerdict {
        holds: doomed.is_none(),
        doomed_prefix: doomed,
    })
}

/// Decides whether `property` is a **relative safety** property of the
/// ω-language of `system` (Definition 4.2, via Lemma 4.4).
///
/// # Errors
///
/// Propagates alphabet mismatches between system and property.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::Buchi;
/// use rl_core::{is_relative_safety, Property};
/// use rl_logic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let sys = Buchi::universal(ab);
/// // Over Σ^ω, relative safety = classical safety (Remark 1):
/// assert!(is_relative_safety(&sys, &Property::formula(parse("[]a")?))?.holds);
/// assert!(!is_relative_safety(&sys, &Property::formula(parse("[]<>a")?))?.holds);
/// # Ok(())
/// # }
/// ```
pub fn is_relative_safety(
    system: &Buchi,
    property: &Property,
) -> Result<RelativeSafetyVerdict, CoreError> {
    is_relative_safety_with(system, property, &Guard::unlimited())
}

/// [`is_relative_safety`] under a resource [`Guard`].
///
/// By default ([`Guard::lazy_enabled`]) `lim(pre(L_ω ∩ P))` is taken
/// directly on the nondeterministic prefix automaton
/// ([`limit_of_prefix_closed`]): the prefix NFA is all-accepting and
/// prefix-closed, so by König's lemma its limit is the same graph read
/// with Büchi semantics and the subset construction is skipped — the whole
/// decider becomes polynomial-size products plus one emptiness check.
/// `Guard::with_lazy(false)` restores the determinizing pipeline. Either
/// way the property complementation (for automaton-given properties) and
/// all intersection products are charged against the guard's budget.
///
/// # Errors
///
/// As [`is_relative_safety`], plus a budget error when the guard trips.
pub fn is_relative_safety_with(
    system: &Buchi,
    property: &Property,
    guard: &Guard,
) -> Result<RelativeSafetyVerdict, CoreError> {
    let _span = guard.span("relative_safety");
    let p = property.to_buchi(system.alphabet())?;
    let both = system.intersection_with(&p, guard)?;
    let lim = if guard.lazy_enabled() {
        limit_of_prefix_closed(&both.prefix_nfa())
    } else {
        // lim(pre(L ∩ P)) via the determinized prefix automaton.
        let pre_lp: Dfa = both.prefix_nfa().determinize_with(guard)?;
        limit_of_dfa(&pre_lp)
    };
    // Violation: x ∈ L ∩ lim(pre(L∩P)) with x ∉ P.
    let neg = property.negation_to_buchi_with(system.alphabet(), guard)?;
    let bad = system
        .intersection_with(&lim, guard)?
        .intersection_with(&neg, guard)?;
    let escape = bad.accepted_upword();
    Ok(RelativeSafetyVerdict {
        holds: escape.is_none(),
        escaping_behavior: escape,
    })
}

/// Classical satisfaction `L_ω ⊆ P` (Definition 3.2), with counterexample.
///
/// By Theorem 4.7 this holds exactly when `property` is both a relative
/// safety and a relative liveness property of the system — the property
/// tests cross-check that equivalence.
///
/// # Errors
///
/// Propagates alphabet mismatches between system and property.
pub fn satisfies(system: &Buchi, property: &Property) -> Result<SatisfactionVerdict, CoreError> {
    satisfies_with(system, property, &Guard::unlimited())
}

/// [`satisfies`] under a resource [`Guard`].
///
/// The property complementation (for automaton-given properties) and the
/// intersection product are charged against the guard's budget.
///
/// # Errors
///
/// As [`satisfies`], plus a budget error when the guard trips.
pub fn satisfies_with(
    system: &Buchi,
    property: &Property,
    guard: &Guard,
) -> Result<SatisfactionVerdict, CoreError> {
    let _span = guard.span("classical");
    let neg = property.negation_to_buchi_with(system.alphabet(), guard)?;
    let bad = system.intersection_with(&neg, guard)?;
    let cex = bad.accepted_upword();
    Ok(SatisfactionVerdict {
        holds: cex.is_none(),
        counterexample: cex,
    })
}

/// Classical **liveness** in the sense of Alpern–Schneider: `P` is a
/// liveness property iff every finite word extends to a word in `P` — the
/// special case `L_ω = Σ^ω` of relative liveness (Remark 1).
///
/// # Errors
///
/// Propagates property translation failures.
pub fn is_liveness_property(
    property: &Property,
    alphabet: &rl_automata::Alphabet,
) -> Result<bool, CoreError> {
    let sigma_omega = Buchi::universal(alphabet.clone());
    Ok(is_relative_liveness(&sigma_omega, property)?.holds)
}

/// Classical **safety** (Alpern–Schneider): the special case `L_ω = Σ^ω` of
/// relative safety (Remark 1) — equivalently, `P` is limit closed.
///
/// # Errors
///
/// Propagates property translation failures.
pub fn is_safety_property(
    property: &Property,
    alphabet: &rl_automata::Alphabet,
) -> Result<bool, CoreError> {
    let sigma_omega = Buchi::universal(alphabet.clone());
    Ok(is_relative_safety(&sigma_omega, property)?.holds)
}

/// Machine closure (Definition 4.6): `(L_ω, Λ)` is machine closed iff
/// `pre(L_ω) ⊆ pre(Λ)`.
///
/// The paper observes `P` is rel-live for `L_ω` iff `(L_ω, P ∩ L_ω)` is a
/// machine-closed live structure; [`is_relative_liveness`] is implemented
/// through exactly this check.
///
/// # Errors
///
/// Returns an alphabet mismatch when the two languages disagree.
pub fn is_machine_closed(l_omega: &Buchi, lambda: &Buchi) -> Result<bool, CoreError> {
    l_omega.alphabet().check_compatible(lambda.alphabet())?;
    let pre_l = l_omega.prefix_nfa().determinize();
    let pre_lam = lambda.prefix_nfa().determinize();
    Ok(dfa_included(&pre_l, &pre_lam).is_none())
}

/// Finds a behavior of `system` that extends `prefix` and satisfies
/// `property` — the existential witness in Definition 4.1 (and, via Lemma
/// 4.9, a density witness in the Cantor topology).
///
/// Returns `None` when the prefix is doomed (no such extension), which for a
/// relative liveness property can only happen when `prefix ∉ pre(L_ω)`.
///
/// # Errors
///
/// Propagates alphabet mismatches.
pub fn extension_witness(
    system: &Buchi,
    property: &Property,
    prefix: &[rl_automata::Symbol],
) -> Result<Option<UpWord>, CoreError> {
    let p = property.to_buchi(system.alphabet())?;
    let both = system.intersection(&p)?.reduce();
    // Simulate the prefix through the product, then look for any accepting
    // lasso from the reached frontier.
    let mut frontier: Vec<usize> = both.initial().iter().copied().collect();
    for &a in prefix {
        let mut next: Vec<usize> = Vec::new();
        for &q in &frontier {
            for t in both.successors(q, a) {
                if !next.contains(&t) {
                    next.push(t);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            return Ok(None);
        }
    }
    // Re-root the automaton at the frontier.
    let mut rerooted = Buchi::new(both.alphabet().clone());
    for q in 0..both.state_count() {
        rerooted.add_state(both.is_accepting(q));
    }
    for (pq, a, q) in both.transitions() {
        rerooted.add_transition(pq, a, q);
    }
    for &q in &frontier {
        rerooted.set_initial(q);
    }
    Ok(rerooted.accepted_upword().map(|w| w.prepend(prefix)))
}

/// Convenience: the behaviors `lim(L)` of a transition system together with
/// a relative-liveness check (the common entry point for Petri-net systems).
///
/// # Errors
///
/// Propagates alphabet mismatches between system and property.
pub fn is_relative_liveness_of_ts(
    ts: &TransitionSystem,
    property: &Property,
) -> Result<RelativeLivenessVerdict, CoreError> {
    is_relative_liveness(&behaviors_of_ts(ts), property)
}

/// [`is_relative_liveness_of_ts`] under a resource [`Guard`].
///
/// # Errors
///
/// As [`is_relative_liveness_of_ts`], plus a budget error when the guard
/// trips.
pub fn is_relative_liveness_of_ts_with(
    ts: &TransitionSystem,
    property: &Property,
    guard: &Guard,
) -> Result<RelativeLivenessVerdict, CoreError> {
    is_relative_liveness_with(&behaviors_of_ts_with(ts, guard)?, property, guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_logic::parse;

    fn ab2() -> (Alphabet, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        (ab.clone(), ab.symbol("a").unwrap(), ab.symbol("b").unwrap())
    }

    #[test]
    fn remark_1_relative_equals_classical_on_sigma_omega() {
        let (ab, _, _) = ab2();
        // □◇a is a classical liveness property; □a a safety property; their
        // conjunction neither.
        assert!(is_liveness_property(&Property::formula(parse("[]<>a").unwrap()), &ab).unwrap());
        assert!(!is_safety_property(&Property::formula(parse("[]<>a").unwrap()), &ab).unwrap());
        assert!(is_safety_property(&Property::formula(parse("[]a").unwrap()), &ab).unwrap());
        assert!(!is_liveness_property(&Property::formula(parse("[]a").unwrap()), &ab).unwrap());
        // "starts with a AND infinitely many b" is neither safety nor
        // liveness (note: []a & []<>b would be the *empty* property, which
        // counts as safety — closed — so it is not a good mixed example).
        let mixed = Property::formula(parse("a & []<>b").unwrap());
        assert!(!is_liveness_property(&mixed, &ab).unwrap());
        assert!(!is_safety_property(&mixed, &ab).unwrap());
        // The empty property: safety but not liveness.
        let empty = Property::formula(parse("[]a & []<>b").unwrap());
        assert!(is_safety_property(&empty, &ab).unwrap());
        assert!(!is_liveness_property(&empty, &ab).unwrap());
    }

    #[test]
    fn paper_example_diamond_a_next_a() {
        // Section 5's example: ◇(a ∧ O a) is a relative liveness property of
        // {a,b}^ω.
        let (ab, _, _) = ab2();
        let sys = Buchi::universal(ab);
        let p = Property::formula(parse("<>(a & X a)").unwrap());
        assert!(is_relative_liveness(&sys, &p).unwrap().holds);
    }

    #[test]
    fn doomed_prefix_is_reported() {
        let (ab, a, b) = ab2();
        // System: a^ω + b^ω (choice at the start); P = "contains an a".
        let sys = Buchi::from_parts(ab, 2, [0, 1], [0, 1], [(0, a, 0), (1, b, 1)]).unwrap();
        let p = Property::formula(parse("<>a").unwrap());
        let verdict = is_relative_liveness(&sys, &p).unwrap();
        assert!(!verdict.holds);
        assert_eq!(verdict.doomed_prefix, Some(vec![b]));
    }

    #[test]
    fn thm_4_7_satisfaction_iff_rel_live_and_rel_safe() {
        let (ab, a, b) = ab2();
        // System: (ab)^ω ∪ a^ω.
        let sys =
            Buchi::from_parts(ab, 3, [0, 2], [0, 2], [(0, a, 1), (1, b, 0), (2, a, 2)]).unwrap();
        for text in ["[]<>a", "[]<>b", "<>b", "[]a", "X a", "a U b"] {
            let p = Property::formula(parse(text).unwrap());
            let sat = satisfies(&sys, &p).unwrap().holds;
            let rl = is_relative_liveness(&sys, &p).unwrap().holds;
            let rs = is_relative_safety(&sys, &p).unwrap().holds;
            assert_eq!(sat, rl && rs, "property {text}: sat={sat} rl={rl} rs={rs}");
        }
    }

    #[test]
    fn relative_safety_escape_witness() {
        let (ab, a, b) = ab2();
        let sys = Buchi::universal(ab);
        let p = Property::formula(parse("[]<>a").unwrap());
        let verdict = is_relative_safety(&sys, &p).unwrap();
        assert!(!verdict.holds);
        let x = verdict.escaping_behavior.unwrap();
        // The escape has finitely many a's.
        assert!(x.period().iter().all(|&s| s == b));
        let _ = a;
    }

    #[test]
    fn machine_closure_matches_relative_liveness() {
        let (ab, _, _) = ab2();
        let sys = Buchi::universal(ab.clone());
        let p = Property::formula(parse("[]<>a").unwrap());
        let p_aut = p.to_buchi(&ab).unwrap();
        let lam = sys.intersection(&p_aut).unwrap();
        assert!(is_machine_closed(&sys, &lam).unwrap());
        let q = Property::formula(parse("[]a").unwrap());
        let q_aut = q.to_buchi(&ab).unwrap();
        let lam_q = sys.intersection(&q_aut).unwrap();
        assert_eq!(
            is_machine_closed(&sys, &lam_q).unwrap(),
            is_relative_liveness(&sys, &q).unwrap().holds
        );
    }

    #[test]
    fn extension_witness_extends_prefix() {
        let (ab, a, b) = ab2();
        let sys = Buchi::universal(ab.clone());
        let p = Property::formula(parse("[]<>a").unwrap());
        let w = extension_witness(&sys, &p, &[b, b, b]).unwrap().unwrap();
        assert_eq!(&w.prefix()[..3], &[b, b, b]);
        // The witness satisfies the property.
        let lam = rl_logic::Labeling::canonical(&ab);
        assert!(rl_logic::evaluate(&parse("[]<>a").unwrap(), &w, &lam));
        let _ = a;
    }

    #[test]
    fn extension_witness_none_outside_language() {
        let (ab, a, b) = ab2();
        // System: a^ω only.
        let sys = Buchi::from_parts(ab, 1, [0], [0], [(0, a, 0)]).unwrap();
        let p = Property::formula(parse("true").unwrap());
        assert!(extension_witness(&sys, &p, &[b]).unwrap().is_none());
        assert!(extension_witness(&sys, &p, &[a]).unwrap().is_some());
    }
}
