//! The `∀□∃◇` fragment — the branching-time cousin of relative liveness.
//!
//! The paper's conclusion points to a related preservation result for the
//! `∀□∃◇`-fragment of CTL* (Nitsche [18, 19]). For an action `a`, the
//! formula `∀□∃◇⟨a⟩` reads: *from every reachable state, a state with an
//! enabled `a`-action remains reachable*. On finite transition systems this
//! fragment is decidable by plain graph reachability, and it is tightly
//! related to relative liveness of the linear-time recurrence `□◇a`:
//!
//! * For **deterministic** systems whose states all lie on infinite runs,
//!   `□◇a` is a relative liveness property of `lim(L)` **iff** every
//!   reachable state can reach a *cycle containing an `a`-transition*
//!   (`∀□∃◇`-style, strengthened from "an `a` is reachable" to "recurrently
//!   reachable"). The equivalence is property-tested in this crate.
//! * For nondeterministic systems the linear-time notion is weaker: a
//!   prefix may be extendable through *one* of the states it can reach,
//!   while another reachable state is doomed.

use std::collections::VecDeque;

use rl_automata::{StateId, Symbol, TransitionSystem};

/// States lying on some infinite run (non-doomed states): reachable states
/// from which an infinite path exists.
fn live_states(ts: &TransitionSystem) -> Vec<bool> {
    let n = ts.state_count();
    // A state has an infinite path iff it can reach a cycle. Iteratively
    // strip states with no outgoing edges into surviving states.
    let mut alive = vec![true; n];
    loop {
        let mut changed = false;
        for q in 0..n {
            if alive[q] && !ts.enabled(q).iter().any(|&(_, t)| alive[t]) {
                alive[q] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Restrict to reachable.
    let mut reach = vec![false; n];
    let mut queue = VecDeque::from([ts.initial()]);
    reach[ts.initial()] = true;
    while let Some(p) = queue.pop_front() {
        for (_, t) in ts.enabled(p) {
            if !reach[t] {
                reach[t] = true;
                queue.push_back(t);
            }
        }
    }
    (0..n).map(|q| alive[q] && reach[q]).collect()
}

/// `∀□∃◇⟨action⟩`: from every reachable non-doomed state, some state with an
/// enabled `action` (leading to a non-doomed state) is reachable.
///
/// Returns the verdict together with a witness state violating it, if any.
///
/// # Example
///
/// ```
/// use rl_core::forall_always_exists_eventually;
/// use rl_petri::examples::{server_behaviors, server_err_behaviors};
///
/// let result = server_behaviors().alphabet().symbol("result").unwrap();
/// // Figure 2: a result is always still reachable …
/// assert!(forall_always_exists_eventually(&server_behaviors(), result).is_none());
/// // … Figure 3: after lock, it is not (a violating state is returned).
/// let result_err = server_err_behaviors().alphabet().symbol("result").unwrap();
/// assert!(forall_always_exists_eventually(&server_err_behaviors(), result_err).is_some());
/// ```
pub fn forall_always_exists_eventually(ts: &TransitionSystem, action: Symbol) -> Option<StateId> {
    let alive = live_states(ts);
    let n = ts.state_count();
    // Backward reachability from states with an enabled live `action` edge.
    let mut can = vec![false; n];
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    let mut queue: VecDeque<StateId> = VecDeque::new();
    for q in 0..n {
        if !alive[q] {
            continue;
        }
        for (a, t) in ts.enabled(q) {
            if alive[t] {
                rev[t].push(q);
                if a == action && !can[q] {
                    can[q] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    while let Some(p) = queue.pop_front() {
        for &r in rev[p].clone().iter() {
            if !can[r] {
                can[r] = true;
                queue.push_back(r);
            }
        }
    }
    (0..n).find(|&q| alive[q] && !can[q])
}

/// The recurrence-strengthened variant: from every reachable non-doomed
/// state, a **cycle containing an `action`-transition** is reachable. For
/// deterministic systems this coincides with relative liveness of `□◇action`
/// (see the property tests).
pub fn forall_always_recurrently(ts: &TransitionSystem, action: Symbol) -> Option<StateId> {
    let alive = live_states(ts);
    let n = ts.state_count();
    // A state q is "recurrently good" iff it can reach a state s that has an
    // `action` edge to t, with q →* s, t →* s-with-action again — i.e. s
    // lies on a cycle through its own action edge: t →* s.
    // Compute: for each action edge (s, action, t) with alive endpoints,
    // check t →* s; collect the sources s of such recurrent edges; then
    // backward-close.
    let reachable_from = |start: StateId| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(p) = queue.pop_front() {
            for (_, t2) in ts.enabled(p) {
                if alive[t2] && !seen[t2] {
                    seen[t2] = true;
                    queue.push_back(t2);
                }
            }
        }
        seen
    };
    let mut recurrent_sources: Vec<StateId> = Vec::new();
    for (s, a, t) in ts.transitions() {
        if a == action && alive[s] && alive[t] {
            let from_t = reachable_from(t);
            if from_t[s] {
                recurrent_sources.push(s);
            }
        }
    }
    // Backward closure.
    let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for (p, _, q) in ts.transitions() {
        if alive[p] && alive[q] {
            rev[q].push(p);
        }
    }
    let mut good = vec![false; n];
    let mut queue: VecDeque<StateId> = VecDeque::new();
    for &s in &recurrent_sources {
        if !good[s] {
            good[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(p) = queue.pop_front() {
        for &r in &rev[p] {
            if !good[r] {
                good[r] = true;
                queue.push_back(r);
            }
        }
    }
    (0..n).find(|&q| alive[q] && !good[q])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::Property;
    use crate::relative::is_relative_liveness_of_ts;
    use rl_automata::Alphabet;
    use rl_logic::Formula;

    #[test]
    fn fig2_vs_fig3() {
        use rl_petri::examples::{server_behaviors, server_err_behaviors};
        let good = server_behaviors();
        let result = good.alphabet().symbol("result").unwrap();
        assert_eq!(forall_always_exists_eventually(&good, result), None);
        assert_eq!(forall_always_recurrently(&good, result), None);

        let bad = server_err_behaviors();
        let result_b = bad.alphabet().symbol("result").unwrap();
        assert!(forall_always_exists_eventually(&bad, result_b).is_some());
        assert!(forall_always_recurrently(&bad, result_b).is_some());
    }

    /// On a deterministic system, the recurrence variant coincides with
    /// relative liveness of □◇a.
    #[test]
    fn deterministic_equivalence_sample() {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        let s2 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s1);
        ts.add_transition(s1, b, s0);
        ts.add_transition(s1, a, s2); // deterministic per (state, action)
        ts.add_transition(s2, b, s2); // b-only sink: a is gone
        let rl = is_relative_liveness_of_ts(
            &ts,
            &Property::formula(Formula::atom("a").eventually().always()),
        )
        .unwrap()
        .holds;
        let ctl = forall_always_recurrently(&ts, a).is_none();
        assert_eq!(rl, ctl);
        assert!(!rl);
    }

    #[test]
    fn doomed_states_are_ignored() {
        // A deadlocked branch must not make ∀□∃◇ fail: the quantifier runs
        // over states on infinite runs only.
        let ab = Alphabet::new(["a", "stop"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let stop = ab.symbol("stop").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s0 = ts.add_state();
        let dead = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s0);
        ts.add_transition(s0, stop, dead);
        assert_eq!(forall_always_exists_eventually(&ts, a), None);
        assert_eq!(forall_always_recurrently(&ts, a), None);
    }
}
