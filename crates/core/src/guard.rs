//! Resource governance for the decision procedures.
//!
//! Every worst-case-exponential construction in the workspace (subset
//! construction, Büchi products, rank-based complementation, the simplicity
//! search) has a `_with` variant taking a [`Guard`], which enforces a
//! [`Budget`] of states, transitions, and wall-clock time and observes a
//! [`CancelToken`]. This module re-exports those primitives from
//! `rl-automata` and adds [`CheckError`], the presentation-level error
//! taxonomy used by front ends (the `rlcheck` CLI maps its variants onto
//! exit codes).

use std::error::Error;
use std::fmt;

use rl_abstraction::AbstractionError;
use rl_automata::AutomataError;
pub use rl_automata::{
    chrome_trace_json, folded_stacks, render_jsonl, Counter, Metric, MetricsRegistry, ObsReport,
    RegistrySnapshot, Span, SpanRecord, TraceEvent, TracePhase, Tracer,
};
pub use rl_automata::{
    resolve_jobs, Budget, CancelToken, Guard, GuardProbe, Pool, PoolCounters, Progress, Resource,
};

use crate::property::CoreError;

/// Top-level failure taxonomy for a checking run.
///
/// Collapses the layered workspace errors ([`AutomataError`],
/// [`AbstractionError`], [`CoreError`]) into the four outcomes a caller
/// actually dispatches on: resource exhaustion, cancellation, bad input, and
/// everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// A construction exhausted its resource [`Budget`].
    BudgetExceeded {
        /// Which limit was hit.
        resource: Resource,
        /// Amount consumed when the limit tripped (milliseconds for
        /// [`Resource::WallClock`], counts otherwise).
        spent: u64,
        /// The configured limit.
        limit: u64,
        /// Partial diagnostics: work done up to the interruption.
        partial: Progress,
    },
    /// The run was stopped through a [`CancelToken`].
    Cancelled {
        /// Partial diagnostics: work done up to the interruption.
        partial: Progress,
    },
    /// The input could not be parsed or validated; the message says why.
    Parse(String),
    /// Any other failure of the decision procedures.
    Internal(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => write!(
                f,
                "BudgetExceeded: {spent} {resource} used, limit {limit}; partial: {partial}"
            ),
            CheckError::Cancelled { partial } => write!(f, "cancelled; partial: {partial}"),
            CheckError::Parse(m) => write!(f, "parse error: {m}"),
            CheckError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for CheckError {}

impl From<AutomataError> for CheckError {
    fn from(e: AutomataError) -> CheckError {
        match e {
            AutomataError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            } => CheckError::BudgetExceeded {
                resource,
                spent,
                limit,
                partial,
            },
            AutomataError::Cancelled(partial) => CheckError::Cancelled { partial },
            other => CheckError::Internal(other.to_string()),
        }
    }
}

impl From<AbstractionError> for CheckError {
    fn from(e: AbstractionError) -> CheckError {
        match e {
            AbstractionError::Automata(inner) => CheckError::from(inner),
            other => CheckError::Internal(other.to_string()),
        }
    }
}

impl From<CoreError> for CheckError {
    fn from(e: CoreError) -> CheckError {
        match e {
            CoreError::Automata(inner) => CheckError::from(inner),
            CoreError::Abstraction(inner) => CheckError::from(inner),
            other => CheckError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn progress() -> Progress {
        Progress {
            states: 7,
            transitions: 12,
            frontier: 3,
            elapsed: Duration::from_millis(5),
            phase: None,
        }
    }

    #[test]
    fn budget_errors_survive_the_layer_collapse() {
        let automata = AutomataError::BudgetExceeded {
            resource: Resource::States,
            spent: 11,
            limit: 10,
            partial: progress(),
        };
        let core = CoreError::Automata(automata.clone());
        let via_core = CheckError::from(core);
        let via_abstraction =
            CheckError::from(CoreError::Abstraction(AbstractionError::Automata(automata)));
        for e in [via_core, via_abstraction] {
            match e {
                CheckError::BudgetExceeded {
                    resource,
                    spent,
                    limit,
                    partial,
                } => {
                    assert_eq!(resource, Resource::States);
                    assert_eq!((spent, limit), (11, 10));
                    assert_eq!(partial, progress());
                }
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancellation_survives_the_layer_collapse() {
        let e = CheckError::from(CoreError::Automata(AutomataError::Cancelled(progress())));
        assert_eq!(
            e,
            CheckError::Cancelled {
                partial: progress()
            }
        );
    }

    #[test]
    fn other_errors_become_internal() {
        let e = CheckError::from(CoreError::Precondition("side condition".into()));
        assert!(matches!(e, CheckError::Internal(m) if m.contains("side condition")));
    }

    #[test]
    fn display_names_the_budget_report() {
        let e = CheckError::BudgetExceeded {
            resource: Resource::States,
            spent: 11,
            limit: 10,
            partial: progress(),
        };
        let text = e.to_string();
        assert!(text.contains("BudgetExceeded"), "{text}");
        assert!(text.contains("11 states"), "{text}");
        assert!(text.contains("limit 10"), "{text}");
    }
}
