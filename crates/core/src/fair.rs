//! Fair-implementation synthesis (Theorem 5.1).
//!
//! If `P` is a relative liveness property of a limit-closed finite-state
//! behavior set `L_ω`, then there is a finite-state system `𝒜` accepting
//! exactly `L_ω` whose *strongly fair* computations all satisfy `P`: take a
//! reduced Büchi automaton for `L_ω ∩ P` and drop its acceptance condition.
//! The extra states are the "state information added in a noninterfering
//! way" the paper speaks of; `rl-exec`'s aging scheduler realizes strong
//! transition fairness on the result.

use rl_automata::{dfa_equivalent, TransitionSystem};
use rl_buchi::behaviors_of_ts;

use crate::property::{CoreError, Property};
use crate::relative::is_relative_liveness;

/// The synthesized implementation of Theorem 5.1.
#[derive(Debug, Clone)]
pub struct FairImplementation {
    /// The finite-state system `𝒜` (no acceptance condition); its behaviors
    /// are exactly the original `L_ω`.
    pub system: TransitionSystem,
    /// Per state of `system`: whether it was accepting in the reduced Büchi
    /// automaton for `L_ω ∩ P`. Every strongly fair run visits marked
    /// states infinitely often — and hence satisfies `P`.
    pub recurrent: Vec<bool>,
}

/// Synthesizes the Theorem 5.1 implementation for a transition system `ts`
/// (whose behaviors `lim(L)` are limit closed by construction) and a
/// relative liveness property.
///
/// # Errors
///
/// * [`CoreError::Precondition`] when `property` is *not* a relative
///   liveness property of `lim(L)` (the theorem's hypothesis), with the
///   doomed prefix in the message;
/// * alphabet mismatches from the property translation.
///
/// # Example
///
/// ```
/// use rl_core::{synthesize_fair_implementation, Property};
/// use rl_logic::parse;
/// use rl_petri::examples::server_behaviors;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = server_behaviors(); // Figure 2
/// let p = Property::formula(parse("[]<>result")?);
/// let imp = synthesize_fair_implementation(&ts, &p)?;
/// // Same behaviors, plus a recurrence marking for the scheduler.
/// assert!(imp.recurrent.iter().any(|&r| r));
/// # Ok(())
/// # }
/// ```
pub fn synthesize_fair_implementation(
    ts: &TransitionSystem,
    property: &Property,
) -> Result<FairImplementation, CoreError> {
    let l_omega = behaviors_of_ts(ts);
    let verdict = is_relative_liveness(&l_omega, property)?;
    if !verdict.holds {
        let prefix = verdict
            .doomed_prefix
            .map(|w| rl_automata::format_word(ts.alphabet(), &w))
            .unwrap_or_default();
        return Err(CoreError::Precondition(format!(
            "property is not a relative liveness property of the system \
             (doomed prefix: {prefix})"
        )));
    }
    let p = property.to_buchi(ts.alphabet())?;
    // Reduced Büchi automaton A for L_ω ∩ P …
    let reduced = l_omega.intersection(&p)?.reduce();
    // … with the acceptance condition removed (Theorem 5.1's 𝒜).
    let mut system = TransitionSystem::new(ts.alphabet().clone());
    for _ in 0..reduced.state_count() {
        system.add_state();
    }
    // `reduce()` keeps all initial states; a TransitionSystem has one
    // initial state, so add a fresh root when the product has several.
    let initials: Vec<usize> = reduced.initial().iter().copied().collect();
    match initials.as_slice() {
        [] => {
            return Err(CoreError::Precondition(
                "system has no behaviors (empty ω-language)".to_owned(),
            ))
        }
        [single] => system.set_initial(*single),
        several => {
            let root = system.add_state();
            system.set_initial(root);
            for &init in several {
                for (p0, a, q0) in reduced.transitions() {
                    if p0 == init {
                        system.add_transition(root, a, q0);
                    }
                }
            }
        }
    }
    for (p0, a, q0) in reduced.transitions() {
        system.add_transition(p0, a, q0);
    }
    let mut recurrent: Vec<bool> = (0..reduced.state_count())
        .map(|q| reduced.is_accepting(q))
        .collect();
    recurrent.resize(system.state_count(), false);

    debug_assert!(
        implementation_faithful(ts, &system),
        "synthesized system changed the behavior set"
    );
    Ok(FairImplementation { system, recurrent })
}

/// Checks that the synthesized system has exactly the original behaviors:
/// for limit-closed behavior sets this reduces to equality of the prefix
/// languages (`lim` is determined by `pre` — equation (1) in the proof of
/// Theorem 5.1).
pub fn implementation_faithful(
    original: &TransitionSystem,
    implementation: &TransitionSystem,
) -> bool {
    let pre_orig = behaviors_of_ts(original).prefix_nfa().determinize();
    let pre_impl = behaviors_of_ts(implementation).prefix_nfa().determinize();
    dfa_equivalent(&pre_orig, &pre_impl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_buchi::{Buchi, UpWord};
    use rl_logic::parse;

    /// {a,b}^ω as a one-state transition system.
    fn full_ts() -> (TransitionSystem, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(ab);
        let s = ts.add_state();
        ts.set_initial(s);
        ts.add_transition(s, a, s);
        ts.add_transition(s, b, s);
        (ts, a, b)
    }

    #[test]
    fn synthesis_preserves_behaviors() {
        let (ts, a, b) = full_ts();
        let p = Property::formula(parse("<>(a & X a)").unwrap());
        let imp = synthesize_fair_implementation(&ts, &p).unwrap();
        assert!(implementation_faithful(&ts, &imp.system));
        // The paper's Section 5 point: the implementation has *more states*
        // than the minimal automaton for {a,b}^ω.
        assert!(imp.system.state_count() > ts.state_count());
        let beh = behaviors_of_ts(&imp.system);
        assert!(beh.accepts_upword(&UpWord::periodic(vec![b]).unwrap()));
        assert!(beh.accepts_upword(&UpWord::periodic(vec![a, b]).unwrap()));
    }

    #[test]
    fn synthesis_rejects_non_relative_liveness() {
        let (ts, _, _) = full_ts();
        let p = Property::formula(parse("[]a").unwrap());
        let err = synthesize_fair_implementation(&ts, &p).unwrap_err();
        match err {
            CoreError::Precondition(msg) => assert!(msg.contains("doomed prefix")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn recurrent_states_characterize_property() {
        // Visiting `recurrent` infinitely often must imply P: every lasso of
        // the synthesized system that cycles through a recurrent state
        // satisfies the property.
        let (ts, a, _) = full_ts();
        let p = Property::formula(parse("[]<>a").unwrap());
        let imp = synthesize_fair_implementation(&ts, &p).unwrap();
        // Interpret the implementation as a Büchi automaton with the
        // recurrent marking: it must accept exactly L ∩ P.
        let mut marked = Buchi::new(imp.system.alphabet().clone());
        for q in 0..imp.system.state_count() {
            marked.add_state(imp.recurrent[q]);
        }
        marked.set_initial(imp.system.initial());
        for (p0, sym, q0) in imp.system.transitions() {
            marked.add_transition(p0, sym, q0);
        }
        assert!(marked.accepts_upword(&UpWord::periodic(vec![a]).unwrap()));
        let lam = rl_logic::Labeling::canonical(imp.system.alphabet());
        let w = marked.accepted_upword().unwrap();
        assert!(rl_logic::evaluate(&parse("[]<>a").unwrap(), &w, &lam));
    }
}
