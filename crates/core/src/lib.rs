//! Relative liveness and behavior abstraction — the core contribution of
//! Nitsche & Wolper, *Relative Liveness and Behavior Abstraction* (PODC '97).
//!
//! A property `P` is a **relative liveness** property of a behavior set
//! `L_ω` when every prefix of a behavior can be extended, *within the
//! system*, to a behavior satisfying `P` (Definition 4.1) — the abstraction
//! of "true under some fairness assumption" that this crate makes
//! executable:
//!
//! * [`is_relative_liveness`] / [`is_relative_safety`] — the Theorem 4.5
//!   decision procedures (via Lemmas 4.3/4.4), with counterexamples,
//! * [`satisfies`] — classical model checking, for the Theorem 4.7
//!   decomposition `L ⊆ P ⇔ rel-live ∧ rel-safe`,
//! * [`is_liveness_property`] / [`is_safety_property`] — the classical
//!   Alpern–Schneider notions as the `Σ^ω` special case (Remark 1),
//! * [`is_machine_closed`] — Definition 4.6,
//! * [`synthesize_fair_implementation`] — Theorem 5.1: a finite-state
//!   implementation whose strongly fair runs all satisfy the property,
//! * [`cantor_distance`] / [`dense_witness`] — the topological reading
//!   (Definition 4.8, Lemma 4.9),
//! * [`verify_via_abstraction`] — the full Section 8 pipeline: abstract,
//!   check simplicity, decide on the abstraction, transfer via `R̄`
//!   (Theorems 8.2/8.3, Corollary 8.4),
//! * the `_with` variants ([`is_relative_liveness_with`],
//!   [`verify_via_abstraction_with`], …) — the same deciders under a
//!   resource [`Guard`], returning [`CheckError`]-convertible budget errors
//!   instead of hanging on pathological inputs,
//! * [`forall_always_exists_eventually`] / [`forall_always_recurrently`] —
//!   the `∀□∃◇` CTL* fragment the conclusion relates to (refs [18, 19]).
//!
//! # Quickstart — the paper's Section 2 example
//!
//! ```
//! use rl_buchi::behaviors_of_ts;
//! use rl_core::{is_relative_liveness, Property};
//! use rl_logic::parse;
//! use rl_petri::examples::server_behaviors;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The server of Figure 1/2: □◇result fails classically (an unfair
//! // scheduler can starve the client) but holds *relatively* — fairness
//! // is all that is missing.
//! let behaviors = behaviors_of_ts(&server_behaviors());
//! let eta = Property::formula(parse("[]<>result")?);
//!
//! let classical = rl_core::satisfies(&behaviors, &eta)?;
//! assert!(!classical.holds);
//!
//! let relative = is_relative_liveness(&behaviors, &eta)?;
//! assert!(relative.holds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctl;
mod fair;
mod filters;
mod guard;
mod pipeline;
mod property;
mod relative;
mod topology;

pub use ctl::{forall_always_exists_eventually, forall_always_recurrently};
pub use fair::{implementation_faithful, synthesize_fair_implementation, FairImplementation};
pub use filters::{modk_moduli, parse_moduli, prefilter_inclusion, FilterOutcome};
pub use guard::{
    chrome_trace_json, folded_stacks, render_jsonl, Counter, Metric, MetricsRegistry, ObsReport,
    RegistrySnapshot, Span, SpanRecord, TraceEvent, TracePhase, Tracer,
};
pub use guard::{
    resolve_jobs, Budget, CancelToken, CheckError, Guard, GuardProbe, Pool, PoolCounters, Progress,
    Resource,
};
pub use pipeline::{
    check_transported_concrete, labeling_for_homomorphism, verify_via_abstraction,
    verify_via_abstraction_with, AbstractionAnalysis, TransferConclusion,
};
pub use property::{CoreError, Property};
pub use relative::{
    extension_witness, is_liveness_property, is_machine_closed, is_relative_liveness,
    is_relative_liveness_of_ts, is_relative_liveness_of_ts_with, is_relative_liveness_with,
    is_relative_safety, is_relative_safety_with, is_safety_property, satisfies, satisfies_with,
    RelativeLivenessVerdict, RelativeSafetyVerdict, SatisfactionVerdict,
};
pub use topology::{cantor_distance, certify_density, dense_witness};
