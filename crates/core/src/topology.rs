//! The Cantor-topology view of relative liveness and safety
//! (Definition 4.8, Lemmas 4.9/4.10).
//!
//! `Σ^ω` carries the metric `d(x, y) = 1 / (|common(x, y)| + 1)`; a property
//! is rel-live for `L_ω` iff `L_ω ∩ P` is *dense* in `L_ω`, rel-safe iff it
//! is *closed* in `L_ω`. These functions make the topological reading
//! executable: exact distances on lasso words and dense-approximation
//! witnesses at any requested radius.

use rl_buchi::{Buchi, UpWord};

use crate::property::{CoreError, Property};
use crate::relative::extension_witness;

/// The Cantor metric `d(x, y)` of Definition 4.8, exactly, for ultimately
/// periodic words: `1 / (|common(x,y)| + 1)`, and `0` for equal words.
///
/// # Example
///
/// ```
/// use rl_automata::Alphabet;
/// use rl_buchi::UpWord;
/// use rl_core::cantor_distance;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ab = Alphabet::new(["a", "b"])?;
/// let a = ab.symbol("a").unwrap();
/// let b = ab.symbol("b").unwrap();
/// let x = UpWord::periodic(vec![a])?;
/// let y = UpWord::new(vec![a, a], vec![b])?;     // agrees for 2 letters
/// assert_eq!(cantor_distance(&x, &y), 1.0 / 3.0);
/// assert_eq!(cantor_distance(&x, &x.clone()), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn cantor_distance(x: &UpWord, y: &UpWord) -> f64 {
    match x.common_prefix_len(y) {
        None => 0.0,
        Some(n) => 1.0 / (n as f64 + 1.0),
    }
}

/// A density witness (Lemma 4.9): given `x ∈ L_ω` and a radius `1/(n+1)`,
/// finds `y ∈ L_ω ∩ P` with `d(x, y) ≤ 1/(n+1)` — i.e. agreeing with `x`
/// on at least `n` letters. Exists for every `x` and `n` exactly when `P`
/// is a relative liveness property of `L_ω`.
///
/// # Errors
///
/// Propagates alphabet mismatches.
pub fn dense_witness(
    system: &Buchi,
    property: &Property,
    x: &UpWord,
    n: usize,
) -> Result<Option<UpWord>, CoreError> {
    let prefix = x.unroll(n);
    extension_witness(system, property, &prefix)
}

/// Empirically certifies density on a finite family: for each behavior in
/// `samples` and each radius index up to `depth`, a witness in `L_ω ∩ P`
/// within the radius must exist. Returns the first failure.
///
/// This is the Lemma 4.9 reading of a relative-liveness verdict; the exact
/// decision procedure is [`crate::is_relative_liveness`].
///
/// # Errors
///
/// Propagates alphabet mismatches.
pub fn certify_density(
    system: &Buchi,
    property: &Property,
    samples: &[UpWord],
    depth: usize,
) -> Result<Option<(UpWord, usize)>, CoreError> {
    for x in samples {
        for n in 0..=depth {
            if dense_witness(system, property, x, n)?.is_none() {
                return Ok(Some((x.clone(), n)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_logic::parse;

    fn setup() -> (Buchi, rl_automata::Symbol, rl_automata::Symbol) {
        let ab = Alphabet::new(["a", "b"]).unwrap();
        let a = ab.symbol("a").unwrap();
        let b = ab.symbol("b").unwrap();
        (Buchi::universal(ab), a, b)
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let (_, a, b) = setup();
        let words = [
            UpWord::periodic(vec![a]).unwrap(),
            UpWord::periodic(vec![b]).unwrap(),
            UpWord::periodic(vec![a, b]).unwrap(),
            UpWord::new(vec![a], vec![b]).unwrap(),
        ];
        for x in &words {
            assert_eq!(cantor_distance(x, x), 0.0);
            for y in &words {
                assert_eq!(cantor_distance(x, y), cantor_distance(y, x));
                for z in &words {
                    // Ultrametric triangle inequality.
                    let dxz = cantor_distance(x, z);
                    let bound = cantor_distance(x, y).max(cantor_distance(y, z));
                    assert!(dxz <= bound + 1e-12, "ultrametric violated");
                }
            }
        }
    }

    #[test]
    fn density_witnesses_for_relative_liveness() {
        let (sys, a, b) = setup();
        let p = Property::formula(parse("[]<>a").unwrap());
        // b^ω violates P, but P-satisfying behaviors exist arbitrarily close.
        let x = UpWord::periodic(vec![b]).unwrap();
        for n in 0..6 {
            let y = dense_witness(&sys, &p, &x, n).unwrap().unwrap();
            assert!(cantor_distance(&x, &y) <= 1.0 / (n as f64 + 1.0));
        }
        let _ = a;
    }

    #[test]
    fn density_fails_for_non_relative_liveness() {
        let (_, a, b) = setup();
        let ab = Alphabet::new(["a", "b"]).unwrap();
        // System b^ω ∪ a^ω; property ◇a is not rel-live (b^ω dooms it).
        let sys = Buchi::from_parts(ab, 2, [0, 1], [0, 1], [(0, a, 0), (1, b, 1)]).unwrap();
        let p = Property::formula(parse("<>a").unwrap());
        let x = UpWord::periodic(vec![b]).unwrap();
        let fail = certify_density(&sys, &p, &[x], 4).unwrap();
        assert!(fail.is_some());
        // The failure happens at radius index 1 (prefix "b" is doomed).
        assert_eq!(fail.unwrap().1, 1);
    }
}
