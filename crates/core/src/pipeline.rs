//! The verification-by-abstraction pipeline (Section 8, Corollary 8.4).
//!
//! Given a concrete system `S` (behaviors `lim(L)`), an abstracting
//! homomorphism `h`, and a property `η` in Σ'-normal form over the abstract
//! alphabet:
//!
//! 1. compute the abstract system generating `lim(h(L))`,
//! 2. check the side condition that `h(L)` has no maximal words,
//! 3. decide relative liveness of `η` on the *abstract* system,
//! 4. check simplicity of `h` on `L` (Definition 6.3),
//! 5. conclude about `lim(L) ⊨_RL R̄(η)`:
//!    * abstract **holds** + `h` simple ⇒ concrete holds (Theorem 8.2),
//!    * abstract **fails** ⇒ concrete fails (Theorem 8.3, contrapositive —
//!      no simplicity needed),
//!    * abstract holds but `h` not simple ⇒ inconclusive (the paper's
//!      Figure 3 trap: the abstraction looks fine, the system is broken).

use rl_abstraction::{
    abstract_behavior_with, check_simplicity_with, has_maximal_words_with, image_nfa, Homomorphism,
};
use rl_automata::{Guard, TransitionSystem, Word};
use rl_buchi::{behaviors_of_ts, behaviors_of_ts_with};
use rl_logic::{r_bar_strict, simplify, Formula, Labeling, EPSILON_PROP};

use crate::property::{CoreError, Property};
use crate::relative::{is_relative_liveness, is_relative_liveness_with, RelativeLivenessVerdict};

/// What the abstraction run lets us conclude about the concrete system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferConclusion {
    /// `η` is rel-live on the abstraction and `h` is simple:
    /// `lim(L) ⊨_RL R̄(η)` (Theorem 8.2 / Corollary 8.4).
    ConcreteHolds,
    /// `η` is *not* rel-live on the abstraction: by Theorem 8.3
    /// (contrapositive) the concrete system cannot satisfy `R̄(η)` relatively
    /// either. Carries the doomed abstract prefix.
    ConcreteFails {
        /// A prefix of the abstract behavior that cannot be extended into
        /// `η` within the abstraction.
        doomed_abstract_prefix: Word,
    },
    /// The abstract check succeeded but `h` is not simple — exactly the
    /// situation of the paper's Figure 3, where the abstraction hides the
    /// defect. Carries the simplicity violation.
    InconclusiveNotSimple {
        /// A concrete word at which Definition 6.3 fails.
        violation: Word,
    },
    /// `h(L)` contains maximal words, violating the side condition of
    /// Theorems 8.2/8.3; apply `rl_abstraction::extend_with_hash` first.
    InconclusiveMaximalWords,
}

/// Full evidence record of a verification-by-abstraction run.
#[derive(Debug, Clone)]
pub struct AbstractionAnalysis {
    /// The abstract system (minimized generator of `h(L)` — Figure 4).
    pub abstract_system: TransitionSystem,
    /// Whether `h(L)` contains maximal words (side condition).
    pub maximal_words: bool,
    /// The abstract relative-liveness verdict for `η`.
    pub abstract_verdict: RelativeLivenessVerdict,
    /// Whether `h` is simple on `L`, with a violation witness when not.
    pub simplicity: rl_abstraction::SimplicityReport,
    /// The transported property over `Σ' ∪ {ε}`: the *strict* reading
    /// `R̄(η) ∧ □◇¬ε` of Definition 7.4 (see [`rl_logic::r_bar_strict`] for
    /// why the strict conjunct is needed for a sound Theorem 8.3).
    pub transported_formula: Formula,
    /// The conclusion licensed by Theorems 8.2/8.3.
    pub conclusion: TransferConclusion,
}

/// Runs the full Corollary 8.4 pipeline.
///
/// # Errors
///
/// * alphabet mismatches between `ts` and `h`,
/// * `η` not expressible in Σ'-normal form over `h`'s target alphabet,
/// * propagated construction failures.
///
/// # Example — the paper's Section 2, end to end
///
/// ```
/// use rl_abstraction::Homomorphism;
/// use rl_core::{verify_via_abstraction, TransferConclusion};
/// use rl_logic::parse;
/// use rl_petri::examples::{server_behaviors, server_err_behaviors};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let keep = ["request", "result", "reject"];
/// let eta = parse("[]<>result")?;
///
/// // Figure 2: abstraction says yes, h is simple ⇒ the concrete system
/// // relatively satisfies □◇result.
/// let good = server_behaviors();
/// let h = Homomorphism::hiding(good.alphabet(), keep)?;
/// let run = verify_via_abstraction(&good, &h, &eta)?;
/// assert_eq!(run.conclusion, TransferConclusion::ConcreteHolds);
///
/// // Figure 3: the abstraction looks identical, but h is not simple ⇒ no
/// // conclusion may be drawn (and indeed the concrete system is broken).
/// let bad = server_err_behaviors();
/// let h_bad = Homomorphism::hiding(bad.alphabet(), keep)?;
/// let run_bad = verify_via_abstraction(&bad, &h_bad, &eta)?;
/// assert!(matches!(
///     run_bad.conclusion,
///     TransferConclusion::InconclusiveNotSimple { .. }
/// ));
/// # Ok(())
/// # }
/// ```
pub fn verify_via_abstraction(
    ts: &TransitionSystem,
    h: &Homomorphism,
    eta: &Formula,
) -> Result<AbstractionAnalysis, CoreError> {
    verify_via_abstraction_with(ts, h, eta, &Guard::unlimited())
}

/// [`verify_via_abstraction`] under a resource [`Guard`].
///
/// The abstract-system construction, the abstract relative-liveness
/// decision, and the simplicity check are all charged against the same
/// guard, so a single budget bounds the whole pipeline.
///
/// # Errors
///
/// As [`verify_via_abstraction`], plus a budget error when the guard trips.
pub fn verify_via_abstraction_with(
    ts: &TransitionSystem,
    h: &Homomorphism,
    eta: &Formula,
    guard: &Guard,
) -> Result<AbstractionAnalysis, CoreError> {
    let _span = guard.span("abstraction_pipeline");
    h.source().check_compatible(ts.alphabet())?;
    let language = ts.to_nfa();

    let image = image_nfa(h, &language);
    let maximal_words = has_maximal_words_with(&image, guard)?;

    let abstract_system = abstract_behavior_with(h, ts, guard)?;
    let abstract_behaviors = behaviors_of_ts_with(&abstract_system, guard)?;
    let abstract_verdict =
        is_relative_liveness_with(&abstract_behaviors, &Property::formula(eta.clone()), guard)?;

    let simplicity = check_simplicity_with(h, &language, guard)?;
    // The strict transport R̄(η) ∧ □◇¬ε — the reading under which both
    // transfer theorems are sound (see rl_logic::r_bar_strict).
    let transported_formula =
        simplify(&r_bar_strict(eta, h.target()).map_err(CoreError::Automata)?);

    let conclusion = if maximal_words {
        TransferConclusion::InconclusiveMaximalWords
    } else if !abstract_verdict.holds {
        TransferConclusion::ConcreteFails {
            doomed_abstract_prefix: abstract_verdict.doomed_prefix.clone().unwrap_or_default(),
        }
    } else if simplicity.simple {
        TransferConclusion::ConcreteHolds
    } else {
        TransferConclusion::InconclusiveNotSimple {
            violation: simplicity.violation.clone().unwrap_or_default(),
        }
    };

    Ok(AbstractionAnalysis {
        abstract_system,
        maximal_words,
        abstract_verdict,
        simplicity,
        transported_formula,
        conclusion,
    })
}

/// The canonical homomorphism labeling `λ_hΣΣ'` of Definition 7.3 over the
/// *concrete* alphabet: a visible action satisfies its abstract name, a
/// hidden action satisfies the proposition [`EPSILON_PROP`].
pub fn labeling_for_homomorphism(h: &Homomorphism) -> Labeling {
    Labeling::from_fn(h.source(), |a| match h.apply(a) {
        Some(t) => vec![h.target().name(t).to_owned()],
        None => vec![EPSILON_PROP.to_owned()],
    })
    .expect("labeling construction is infallible")
}

/// Directly decides `lim(L), λ_hΣΣ' ⊨_RL R̄(η)` on the *concrete* system —
/// the right-hand side of Corollary 8.4, used to cross-validate the
/// transfer theorems.
///
/// # Errors
///
/// Propagates alphabet mismatches and Σ'-normal-form failures.
pub fn check_transported_concrete(
    ts: &TransitionSystem,
    h: &Homomorphism,
    eta: &Formula,
) -> Result<RelativeLivenessVerdict, CoreError> {
    h.source().check_compatible(ts.alphabet())?;
    let transported = simplify(&r_bar_strict(eta, h.target()).map_err(CoreError::Automata)?);
    let lam = labeling_for_homomorphism(h);
    let prop = Property::labeled(transported, lam);
    is_relative_liveness(&behaviors_of_ts(ts), &prop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_automata::Alphabet;
    use rl_logic::parse;
    use rl_petri::examples::{server_behaviors, server_err_behaviors};

    #[test]
    fn figure_2_transfers() {
        let ts = server_behaviors();
        let h = Homomorphism::hiding(ts.alphabet(), ["request", "result", "reject"]).unwrap();
        let eta = parse("[]<>result").unwrap();
        let run = verify_via_abstraction(&ts, &h, &eta).unwrap();
        assert_eq!(run.abstract_system.state_count(), 2); // Figure 4
        assert!(!run.maximal_words);
        assert!(run.abstract_verdict.holds);
        assert!(run.simplicity.simple);
        assert_eq!(run.conclusion, TransferConclusion::ConcreteHolds);
        // Cross-check Theorem 8.2: the transported property really is
        // rel-live on the concrete system.
        assert!(check_transported_concrete(&ts, &h, &eta).unwrap().holds);
    }

    #[test]
    fn figure_3_is_inconclusive_and_actually_broken() {
        let ts = server_err_behaviors();
        let h = Homomorphism::hiding(ts.alphabet(), ["request", "result", "reject"]).unwrap();
        let eta = parse("[]<>result").unwrap();
        let run = verify_via_abstraction(&ts, &h, &eta).unwrap();
        // Abstractly fine (same Figure 4!), but not simple.
        assert!(run.abstract_verdict.holds);
        assert!(matches!(
            run.conclusion,
            TransferConclusion::InconclusiveNotSimple { .. }
        ));
        // And the concrete transported check indeed fails — confirming that
        // simplicity was the only thing standing between us and a wrong
        // conclusion.
        assert!(!check_transported_concrete(&ts, &h, &eta).unwrap().holds);
    }

    #[test]
    fn abstract_failure_transfers_to_concrete_failure() {
        // System: a^ω ∪ ab^ω (visible), property ◇(always a)… choose an
        // abstract property that fails abstractly: []<>b on a system that
        // can commit to a-only.
        let sigma = Alphabet::new(["a", "b", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s0);
        ts.add_transition(s0, b, s1);
        ts.add_transition(s1, a, s1);
        let h = Homomorphism::hiding(&sigma, ["a", "b"]).unwrap();
        let eta = parse("[]<>b").unwrap();
        let run = verify_via_abstraction(&ts, &h, &eta).unwrap();
        assert!(matches!(
            run.conclusion,
            TransferConclusion::ConcreteFails { .. }
        ));
        // Theorem 8.3 contrapositive confirmed concretely:
        assert!(!check_transported_concrete(&ts, &h, &eta).unwrap().holds);
    }

    #[test]
    fn maximal_words_flagged() {
        // A system that deadlocks after one visible action: h(L) = {ε, a}
        // has the maximal word "a".
        let sigma = Alphabet::new(["a", "tau"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let mut ts = TransitionSystem::new(sigma.clone());
        let s0 = ts.add_state();
        let s1 = ts.add_state();
        ts.set_initial(s0);
        ts.add_transition(s0, a, s1);
        let h = Homomorphism::hiding(&sigma, ["a"]).unwrap();
        let run = verify_via_abstraction(&ts, &h, &parse("<>a").unwrap()).unwrap();
        assert!(run.maximal_words);
        assert_eq!(run.conclusion, TransferConclusion::InconclusiveMaximalWords);
    }

    #[test]
    fn homomorphism_labeling_marks_hidden_actions() {
        let ts = server_behaviors();
        let h = Homomorphism::hiding(ts.alphabet(), ["request", "result", "reject"]).unwrap();
        let lam = labeling_for_homomorphism(&h);
        let lock = ts.alphabet().symbol("lock").unwrap();
        let request = ts.alphabet().symbol("request").unwrap();
        assert!(lam.satisfies(lock, EPSILON_PROP));
        assert!(lam.satisfies(request, "request"));
        assert!(!lam.satisfies(request, EPSILON_PROP));
    }
}
